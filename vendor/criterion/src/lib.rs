//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal benchmarking harness with the same spelling as the real
//! crate: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis or HTML report: each benchmark warms
//! up briefly, then runs a timed batch sized to a fixed measurement window
//! and prints the mean time per iteration. That is enough to track the
//! paper's Section 5.2 decision-overhead magnitudes release to release.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How per-iteration inputs produced by `iter_batched` setup are grouped.
/// Accepted for API compatibility; this harness always times the routine
/// per call and excludes the setup either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { measured: None }
    }

    /// Times `routine`, excluding nothing: the whole closure body is the
    /// measured unit.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), target));
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut routine_time = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            routine_time += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (routine_time.as_secs_f64() / warm_iters as f64).max(1e-9);
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.measured = Some((total, target));
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        match b.measured {
            Some((elapsed, iters)) => {
                let ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
                let (value, unit) = if ns < 1_000.0 {
                    (ns, "ns")
                } else if ns < 1_000_000.0 {
                    (ns / 1_000.0, "µs")
                } else {
                    (ns / 1_000_000.0, "ms")
                };
                println!("{id:<40} {value:>10.2} {unit}/iter  ({iters} iters)");
            }
            None => println!("{id:<40} (no measurement: bencher never invoked)"),
        }
        self
    }
}

/// Groups benchmark functions (`fn(&mut Criterion)`) under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
