//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the trait surface it needs instead of the real crate: the
//! [`RngCore`] / [`SeedableRng`] core traits, the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and the [`distributions::Standard`]
//! uniform distribution for primitives. Generators themselves live in
//! `hcloud-sim` (`SimRng` is a full xoshiro256**); this crate only supplies
//! the trait vocabulary so that code written against `rand` 0.8 compiles
//! unchanged.
//!
//! Conversions match rand 0.8 where it matters for statistics:
//! `gen::<f64>()` is the standard 53-bit uniform in `[0, 1)`, integer
//! ranges are unbiased to within `2^-64`, and `seed_from_u64` uses the
//! SplitMix64 expansion.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations. The deterministic generators in
/// this workspace never fail, so this is a placeholder that satisfies the
/// `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw uniform words and bytes.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with uniform bytes, reporting failure (never fails for
    /// deterministic generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// SplitMix64: the seed-expansion step recommended by the xoshiro authors,
/// used by `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into the seed bytes
    /// via SplitMix64 (little-endian words, as rand 0.8 does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions over primitives. Only [`Standard`] (uniform
    //! over a type's natural domain; `[0, 1)` for floats) is provided.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution: full range for integers,
    /// fair coin for `bool`, 53-bit (24-bit) uniform `[0, 1)` for `f64`
    /// (`f32`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }

    standard_int! {
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    }

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() >> 31 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits scaled into [0, 1), exactly rand 0.8's
            // Standard conversion.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if the range is
    /// empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = rng.next_u64() as u128 % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`]: typed draws and ranges.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! The traits, for glob import.
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Counter(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_bounds() {
        let mut rng = Counter(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let x = rng.gen_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct ByteRng([u8; 8]);
        impl SeedableRng for ByteRng {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                ByteRng(seed)
            }
        }
        assert_eq!(ByteRng::seed_from_u64(42).0, ByteRng::seed_from_u64(42).0);
        assert_ne!(ByteRng::seed_from_u64(42).0, ByteRng::seed_from_u64(43).0);
    }
}
