//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal property-testing harness with the same spelling as the real
//! crate: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`Strategy`] (numeric ranges, tuples, `prop::collection::vec`,
//! `prop::array::uniform10`, `any::<T>()`, `proptest::bool::ANY`, simple
//! `[a-z]{m,n}` string patterns, `prop_map`), and [`ProptestConfig`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * no shrinking — a failing case reports its case number and (where the
//!   assertion message includes them) the offending values, not a minimal
//!   counterexample;
//! * the case stream is deterministic per test name, so failures are
//!   stable across runs and machines.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

pub mod test_runner {
    //! The failure type [`prop_assert!`] returns.

    use std::fmt;

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Per-test configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so each property sees a
    /// stable, independent case stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF29CE484222325;
        for &b in name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)` with 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator. Unlike the real crate there is no shrink tree; a
/// strategy is just a deterministic function of the [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = rng.next_u64() as u128 % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.next_f64() * (end - start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// String pattern strategy. Supports the `[a-z]{m,n}` shape (a single
/// character class with a repetition count) — the only regex form the
/// workspace's tests use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo_ch, hi_ch, min_len, max_len) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (want `[x-y]{{m,n}}`)"));
        let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                let span = hi_ch as u64 - lo_ch as u64 + 1;
                char::from_u32(lo_ch as u32 + rng.below(span) as u32).unwrap()
            })
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    let (min_len, max_len) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
    if min_len > max_len {
        return None;
    }
    Some((lo, hi, min_len, max_len))
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: arbitrary bit patterns would mostly be
        // astronomically large magnitudes or NaNs, which no property here
        // wants.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary + fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary + fmt::Debug>() -> Any<T> {
    Any(PhantomData)
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{Strategy, TestRng};

    /// The fair-coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`prop::array::uniform10`).

    use super::{Strategy, TestRng};

    /// The strategy returned by [`uniform10`].
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy10<S>(S);

    impl<S: Strategy> Strategy for ArrayStrategy10<S> {
        type Value = [S::Value; 10];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 10] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `[T; 10]` with every element drawn from `element`.
    pub fn uniform10<S: Strategy>(element: S) -> ArrayStrategy10<S> {
        ArrayStrategy10(element)
    }
}

pub mod prop {
    //! The `prop::` namespace the prelude exposes.
    pub use super::{array, bool, collection};
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use super::prop;
    pub use super::test_runner::TestCaseError;
    pub use super::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]`-able function running `config.cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the current case (with
/// the formatted message, if given) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let mut rng = TestRng::deterministic("string_pattern_parses");
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..=2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn arrays_and_maps_compose(a in prop::array::uniform10(0.0f64..=1.0).prop_map(|xs| xs[0])) {
            prop_assert!((0.0..=1.0).contains(&a));
        }

        #[test]
        fn tuples_and_any(t in (any::<u64>(), prop::bool::ANY), n in 1usize..4) {
            let (x, _b) = t;
            prop_assert_eq!(x, x);
            prop_assert!((1..4).contains(&n));
        }
    }
}
