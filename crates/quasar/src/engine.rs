//! The Quasar classification engine.
//!
//! Section 3.3: "When a job is submitted, it is first profiled on two
//! instance types, while injecting interference in two shared resources,
//! e.g., last level cache and network bandwidth. This signal is used by a
//! set of classification techniques which find similarities between the
//! new and previously-scheduled jobs."
//!
//! [`QuasarEngine`] reproduces that pipeline:
//!
//! 1. a **corpus** of previously-scheduled jobs (drawn from the workload
//!    app classes) is factorized into low-rank latent factors;
//! 2. **profiling** a new job yields four noisy measurements of its true
//!    sensitivity vector (2 instance types × 2 interference sources);
//!    profiling on small, shared instances yields noisier measurements;
//! 3. **classification** folds the sparse signal into the latent space and
//!    reconstructs the full sensitivity vector, the scalar quality
//!    requirement `Q`, and the resource amount (core count) the job needs.

use hcloud_cloud::instance_type::VALID_SIZES;
use hcloud_interference::{resource_quality, Resource, ResourceVector, NUM_RESOURCES};
use hcloud_sim::dist::{Normal, Sample};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::SimDuration;
use hcloud_workloads::{AppClass, JobSpec};

use crate::matrix::{Matrix, MatrixFactorization};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasarConfig {
    /// Number of previously-scheduled jobs in the training corpus.
    pub corpus_size: usize,
    /// Factorization rank.
    pub rank: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD L2 regularization.
    pub regularization: f64,
    /// Ridge strength for fold-in.
    pub ridge: f64,
    /// The resources observed during profiling (2 instance types × 2
    /// injected interference sources = 4 measurements).
    pub profiled_resources: [Resource; 4],
    /// Wall-clock cost of profiling a job the first time it is submitted
    /// ("5-10 sec", Section 5.2).
    pub profiling_time: SimDuration,
    /// Wall-clock cost of classification ("20 msec on average").
    pub classification_time: SimDuration,
}

impl Default for QuasarConfig {
    fn default() -> Self {
        QuasarConfig {
            corpus_size: 240,
            rank: 4,
            epochs: 120,
            learning_rate: 0.05,
            regularization: 0.01,
            ridge: 0.05,
            profiled_resources: [
                Resource::CacheLlc,
                Resource::NetBandwidth,
                Resource::Cpu,
                Resource::MemBandwidth,
            ],
            profiling_time: SimDuration::from_millis(7_500),
            classification_time: SimDuration::from_millis(20),
        }
    }
}

/// Where profiling runs, which determines measurement noise.
///
/// Profiling on dedicated or large instances is clean; on small shared
/// instances, external interference corrupts the signal — the mechanism
/// behind OdM's "lower accuracy" provisioning decisions (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingEnvironment {
    /// Std-dev of measurement noise added to each profiled sensitivity.
    pub noise_sigma: f64,
}

impl ProfilingEnvironment {
    /// Profiling on reserved or full-server instances.
    pub fn clean() -> Self {
        ProfilingEnvironment { noise_sigma: 0.03 }
    }

    /// Profiling on small shared instances under external load.
    pub fn noisy() -> Self {
        ProfilingEnvironment { noise_sigma: 0.12 }
    }
}

/// The sparse signal profiling produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSignal {
    /// `(resource index, measured sensitivity)` pairs.
    pub observations: Vec<(usize, f64)>,
    /// Noisy observation of the job's parallelism/size needs.
    pub cores_hint: u32,
}

/// What classification estimates about a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEstimate {
    /// Reconstructed sensitivity vector.
    pub sensitivity: ResourceVector,
    /// The resource quality requirement `Q ∈ [0, 1]` derived from the
    /// reconstruction (what the mapping policies consume as `QT`).
    pub quality: f64,
    /// Estimated cores needed to meet QoS.
    pub cores: u32,
}

/// The profiling + classification engine.
#[derive(Debug, Clone)]
pub struct QuasarEngine {
    config: QuasarConfig,
    factorization: MatrixFactorization,
    profile_rng: SimRng,
}

impl QuasarEngine {
    /// Builds the corpus, trains the factorization, and returns a ready
    /// engine. Deterministic in `factory`.
    pub fn new(config: QuasarConfig, factory: &RngFactory) -> QuasarEngine {
        assert!(config.corpus_size >= NUM_RESOURCES, "corpus too small");
        let mut corpus_rng = factory.stream("quasar.corpus");
        let mut r = Matrix::zeros(config.corpus_size, NUM_RESOURCES);
        for i in 0..config.corpus_size {
            let class = AppClass::ALL[i % AppClass::ALL.len()];
            let s = class.sample_sensitivity(&mut corpus_rng);
            for (j, &v) in s.as_array().iter().enumerate() {
                r.set(i, j, v);
            }
        }
        let mut train_rng = factory.stream("quasar.train");
        let factorization = MatrixFactorization::train(
            &r,
            config.rank,
            config.epochs,
            config.learning_rate,
            config.regularization,
            &mut train_rng,
        );
        QuasarEngine {
            config,
            factorization,
            profile_rng: factory.stream("quasar.profile"),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &QuasarConfig {
        &self.config
    }

    /// Time the profiling run occupies (charged on first submission only).
    pub fn profiling_time(&self) -> SimDuration {
        self.config.profiling_time
    }

    /// Time classification takes.
    pub fn classification_time(&self) -> SimDuration {
        self.config.classification_time
    }

    /// Profiles `job` in `env`, producing the sparse noisy signal.
    pub fn profile(&mut self, job: &JobSpec, env: &ProfilingEnvironment) -> ProfileSignal {
        let noise = Normal::new(0.0, env.noise_sigma);
        let observations = self
            .config
            .profiled_resources
            .iter()
            .map(|&res| {
                let truth = job.sensitivity.get(res);
                let measured = (truth + noise.sample(&mut self.profile_rng)).clamp(0.0, 1.0);
                (res.index(), measured)
            })
            .collect();
        // Sizing observation: mostly right, occasionally off by one size
        // step; noisier environments mis-size more often.
        let steps = Normal::new(0.0, env.noise_sigma * 3.0).sample(&mut self.profile_rng);
        let true_idx = VALID_SIZES
            .iter()
            .position(|&s| s >= job.cores.min(16))
            .unwrap_or(VALID_SIZES.len() - 1);
        let idx =
            (true_idx as f64 + steps.round()).clamp(0.0, (VALID_SIZES.len() - 1) as f64) as usize;
        ProfileSignal {
            observations,
            cores_hint: VALID_SIZES[idx],
        }
    }

    /// Classifies a profile signal into a full estimate.
    pub fn classify(&self, signal: &ProfileSignal) -> JobEstimate {
        let row = self
            .factorization
            .fold_in(&signal.observations, self.config.ridge);
        let sensitivity = ResourceVector::from_fn(|i| row[i].clamp(0.0, 1.0));
        JobEstimate {
            quality: resource_quality(&sensitivity),
            sensitivity,
            cores: signal.cores_hint,
        }
    }

    /// Profile + classify in one step.
    pub fn estimate(&mut self, job: &JobSpec, env: &ProfilingEnvironment) -> JobEstimate {
        let signal = self.profile(job, env);
        self.classify(&signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::SimTime;
    use hcloud_workloads::{JobId, JobKind};

    fn engine() -> QuasarEngine {
        QuasarEngine::new(QuasarConfig::default(), &RngFactory::new(11))
    }

    fn job_of(class: AppClass, seed: u64) -> JobSpec {
        let mut rng = SimRng::from_seed_u64(seed);
        JobSpec {
            id: JobId(seed),
            class,
            arrival: SimTime::ZERO,
            kind: JobKind::Batch {
                work_core_secs: 600.0,
            },
            cores: 4,
            sensitivity: class.sample_sensitivity(&mut rng),
        }
    }

    #[test]
    fn clean_classification_recovers_quality() {
        let mut e = engine();
        let env = ProfilingEnvironment::clean();
        let mut total_err = 0.0;
        let mut n = 0;
        for (i, class) in AppClass::ALL.iter().enumerate() {
            for k in 0..10 {
                let job = job_of(*class, (i * 100 + k) as u64);
                let est = e.estimate(&job, &env);
                total_err += (est.quality - job.quality_requirement()).abs();
                n += 1;
            }
        }
        let mean_err = total_err / n as f64;
        assert!(mean_err < 0.09, "mean |ΔQ| = {mean_err}");
    }

    #[test]
    fn classification_separates_memcached_from_hadoop() {
        let mut e = engine();
        let env = ProfilingEnvironment::clean();
        let mut mc_min = f64::MAX;
        let mut hd_max = f64::MIN;
        for k in 0..20 {
            let mc = e.estimate(&job_of(AppClass::Memcached, k), &env);
            let hd = e.estimate(&job_of(AppClass::HadoopRecommender, 1000 + k), &env);
            mc_min = mc_min.min(mc.quality);
            hd_max = hd_max.max(hd.quality);
        }
        assert!(
            mc_min > hd_max,
            "memcached min Q {mc_min} should exceed hadoop max Q {hd_max}"
        );
    }

    #[test]
    fn noisy_profiling_degrades_accuracy() {
        let run = |env: ProfilingEnvironment| {
            let mut e = engine();
            let mut err = 0.0;
            for k in 0..60 {
                let class = AppClass::ALL[(k % 6) as usize];
                let job = job_of(class, 5000 + k);
                let est = e.estimate(&job, &env);
                err += est.sensitivity.distance(&job.sensitivity);
            }
            err / 60.0
        };
        let clean = run(ProfilingEnvironment::clean());
        let noisy = run(ProfilingEnvironment::noisy());
        assert!(noisy > clean, "noisy {noisy} should exceed clean {clean}");
    }

    #[test]
    fn sizing_mostly_correct_when_clean() {
        let mut e = engine();
        let env = ProfilingEnvironment::clean();
        let correct = (0..100)
            .filter(|&k| {
                let job = job_of(AppClass::SparkBatch, 9000 + k);
                e.estimate(&job, &env).cores == 4
            })
            .count();
        assert!(correct >= 90, "correct sizings {correct}/100");
    }

    #[test]
    fn sizing_errors_grow_with_noise() {
        let count_wrong = |env: ProfilingEnvironment| {
            let mut e = engine();
            (0..200)
                .filter(|&k| {
                    let job = job_of(AppClass::SparkBatch, 7000 + k);
                    e.estimate(&job, &env).cores != 4
                })
                .count()
        };
        let clean_wrong = count_wrong(ProfilingEnvironment::clean());
        let noisy_wrong = count_wrong(ProfilingEnvironment::noisy());
        assert!(noisy_wrong > clean_wrong, "{noisy_wrong} vs {clean_wrong}");
    }

    #[test]
    fn estimates_are_deterministic_given_factory() {
        let mut a = engine();
        let mut b = engine();
        let job = job_of(AppClass::Memcached, 1);
        let env = ProfilingEnvironment::clean();
        assert_eq!(a.estimate(&job, &env), b.estimate(&job, &env));
    }

    #[test]
    fn overhead_constants_match_section_5_2() {
        let e = engine();
        let prof = e.profiling_time().as_secs_f64();
        let class = e.classification_time().as_secs_f64();
        assert!((5.0..=10.0).contains(&prof), "profiling {prof}s");
        assert!(class <= 0.05, "classification {class}s");
    }

    #[test]
    fn estimated_sensitivity_is_unit_range() {
        let mut e = engine();
        let env = ProfilingEnvironment::noisy();
        for k in 0..30 {
            let job = job_of(AppClass::ALL[(k % 6) as usize], 333 + k);
            let est = e.estimate(&job, &env);
            assert!(est.sensitivity.is_unit_range());
            assert!((0.0..=1.0).contains(&est.quality));
        }
    }
}
