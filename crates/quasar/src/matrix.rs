//! Dense matrices, SGD low-rank factorization, and fold-in.
//!
//! Quasar's classification is collaborative filtering: represent the
//! (jobs × measurements) matrix as a product of low-rank factors
//! `R ≈ U · Vᵀ`, learned by stochastic gradient descent; a new job with a
//! handful of observed measurements gets a latent vector by ridge-regressed
//! **fold-in** against the item factors, and the reconstruction
//! `u · Vᵀ` predicts its unobserved measurements.

#![allow(clippy::needless_range_loop)] // index-based math reads clearer here

use rand::Rng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills the matrix with small random values in `[-scale, scale)`
    /// (factor initialization).
    pub fn randomize<R: Rng + ?Sized>(&mut self, scale: f64, rng: &mut R) {
        for v in &mut self.data {
            *v = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
    }
}

/// Solves the small dense system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` if `A` is (numerically) singular.
///
/// # Panics
/// Panics if shapes disagree.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m.get(r, col).abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN in solve"))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below.
        for r in col + 1..n {
            let f = m.get(r, col) / m.get(col, col);
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - f * m.get(col, c);
                m.set(r, c, v);
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut v = x[col];
        for c in col + 1..n {
            v -= m.get(col, c) * x[c];
        }
        x[col] = v / m.get(col, col);
    }
    Some(x)
}

/// A trained low-rank factorization `R ≈ U · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixFactorization {
    /// Per-row latent factors (`rows × rank`).
    user_factors: Matrix,
    /// Per-column latent factors (`cols × rank`).
    item_factors: Matrix,
    rank: usize,
}

impl MatrixFactorization {
    /// Trains a rank-`rank` factorization of `r` by SGD.
    ///
    /// # Panics
    /// Panics if `rank` is zero or exceeds the smaller matrix dimension.
    pub fn train<R: Rng + ?Sized>(
        r: &Matrix,
        rank: usize,
        epochs: usize,
        learning_rate: f64,
        regularization: f64,
        rng: &mut R,
    ) -> MatrixFactorization {
        assert!(
            rank > 0 && rank <= r.rows().min(r.cols()),
            "invalid rank {rank}"
        );
        let mut u = Matrix::zeros(r.rows(), rank);
        let mut v = Matrix::zeros(r.cols(), rank);
        u.randomize(0.3, rng);
        v.randomize(0.3, rng);
        for _ in 0..epochs {
            for i in 0..r.rows() {
                for j in 0..r.cols() {
                    let pred: f64 = (0..rank).map(|k| u.get(i, k) * v.get(j, k)).sum();
                    let err = r.get(i, j) - pred;
                    for k in 0..rank {
                        let ui = u.get(i, k);
                        let vj = v.get(j, k);
                        u.set(i, k, ui + learning_rate * (err * vj - regularization * ui));
                        v.set(j, k, vj + learning_rate * (err * ui - regularization * vj));
                    }
                }
            }
        }
        MatrixFactorization {
            user_factors: u,
            item_factors: v,
            rank,
        }
    }

    /// The factorization rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The predicted value at `(row, col)` for a training row.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        (0..self.rank)
            .map(|k| self.user_factors.get(row, k) * self.item_factors.get(col, k))
            .sum()
    }

    /// Root-mean-square reconstruction error against the training matrix.
    pub fn rmse(&self, r: &Matrix) -> f64 {
        let mut sum = 0.0;
        for i in 0..r.rows() {
            for j in 0..r.cols() {
                sum += (r.get(i, j) - self.predict(i, j)).powi(2);
            }
        }
        (sum / (r.rows() * r.cols()) as f64).sqrt()
    }

    /// Folds in a new row from sparse observations `(col, value)` by ridge
    /// regression against the item factors, returning the full
    /// reconstructed row.
    ///
    /// Falls back to the column means of the training predictions if the
    /// normal equations are singular (e.g. zero observations).
    pub fn fold_in(&self, observed: &[(usize, f64)], ridge: f64) -> Vec<f64> {
        // Normal equations: (Vₒᵀ Vₒ + λI) w = Vₒᵀ y over observed columns.
        let mut a = Matrix::zeros(self.rank, self.rank);
        let mut b = vec![0.0; self.rank];
        for &(col, y) in observed {
            assert!(
                col < self.item_factors.rows(),
                "observed column {col} out of range"
            );
            for k1 in 0..self.rank {
                let vk1 = self.item_factors.get(col, k1);
                b[k1] += vk1 * y;
                for k2 in 0..self.rank {
                    let v = a.get(k1, k2) + vk1 * self.item_factors.get(col, k2);
                    a.set(k1, k2, v);
                }
            }
        }
        for k in 0..self.rank {
            let v = a.get(k, k) + ridge;
            a.set(k, k, v);
        }
        let w = match solve(&a, &b) {
            Some(w) => w,
            None => vec![0.0; self.rank],
        };
        (0..self.item_factors.rows())
            .map(|j| {
                (0..self.rank)
                    .map(|k| w[k] * self.item_factors.get(j, k))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::rng::SimRng;

    fn rng() -> SimRng {
        SimRng::from_seed_u64(99)
    }

    /// A synthetic rank-2 matrix.
    fn low_rank_matrix(rows: usize, cols: usize) -> Matrix {
        let mut r = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let a = (i % 3) as f64 * 0.3 + 0.1;
                let b = (i % 2) as f64 * 0.4;
                let va = ((j * 7) % 5) as f64 / 5.0;
                let vb = ((j * 3) % 4) as f64 / 4.0;
                r.set(i, j, a * va + b * vb);
            }
        }
        r
    }

    #[test]
    fn matrix_get_set_rows() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[1] = 2.0;
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_needs_pivoting() {
        // First pivot is zero; partial pivoting must swap rows.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn factorization_reconstructs_low_rank_data() {
        let r = low_rank_matrix(60, 10);
        let f = MatrixFactorization::train(&r, 4, 200, 0.05, 0.005, &mut rng());
        let rmse = f.rmse(&r);
        assert!(rmse < 0.05, "rmse {rmse}");
    }

    #[test]
    fn fold_in_recovers_unobserved_entries() {
        let r = low_rank_matrix(60, 10);
        let f = MatrixFactorization::train(&r, 4, 200, 0.05, 0.005, &mut rng());
        // Take a row from the training data, observe 4 of its entries.
        let truth: Vec<f64> = r.row(7).to_vec();
        let observed: Vec<(usize, f64)> =
            [0usize, 3, 5, 8].iter().map(|&c| (c, truth[c])).collect();
        let reconstructed = f.fold_in(&observed, 0.05);
        let err: f64 = truth
            .iter()
            .zip(&reconstructed)
            .map(|(t, p)| (t - p).abs())
            .sum::<f64>()
            / truth.len() as f64;
        assert!(err < 0.08, "fold-in mean abs error {err}");
    }

    #[test]
    fn fold_in_with_no_observations_is_safe() {
        let r = low_rank_matrix(20, 10);
        let f = MatrixFactorization::train(&r, 3, 50, 0.05, 0.01, &mut rng());
        let row = f.fold_in(&[], 0.1);
        assert_eq!(row.len(), 10);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn train_rejects_zero_rank() {
        let r = Matrix::zeros(5, 5);
        MatrixFactorization::train(&r, 0, 1, 0.1, 0.0, &mut rng());
    }
}
