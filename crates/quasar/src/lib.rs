//! # hcloud-quasar — profiling and classification substrate
//!
//! HCloud relies on the Quasar cluster manager (the paper's reference
//! \[21\]) to "quickly determine the resource preferences of new, unknown
//! jobs": a job is profiled briefly on two instance types while injecting
//! interference in two shared resources, and classification techniques
//! (collaborative filtering) complete the picture from similarities with
//! previously scheduled jobs. This crate implements that mechanism:
//!
//! * [`matrix`] — a small dense-matrix toolkit with SGD-trained low-rank
//!   factorization and least-squares fold-in, the PQ-reconstruction engine
//!   behind collaborative filtering;
//! * [`engine`] — the [`engine::QuasarEngine`]: a corpus of
//!   previously-scheduled jobs, the profiling step (noisy sparse
//!   observations of the true sensitivity vector), and classification
//!   (matrix completion + resource sizing).
//!
//! Ground truth lives in the workload generator; the engine only ever sees
//! noisy profiling signals. Profiling noise grows when the profiling runs
//! on small shared instances — which is exactly why the paper notes that
//! OdM's "provisioning decisions may have lower accuracy" (Section 3.3).

pub mod engine;
pub mod matrix;

pub use engine::{JobEstimate, ProfilingEnvironment, QuasarConfig, QuasarEngine};
pub use matrix::{Matrix, MatrixFactorization};
