//! Property-based tests for the matrix-completion machinery.

use hcloud_quasar::matrix::{solve, Matrix, MatrixFactorization};
use hcloud_sim::rng::SimRng;
use proptest::prelude::*;

/// A random diagonally-dominant matrix (always invertible).
fn dominant_matrix(n: usize, entries: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        let mut row_sum = 0.0;
        for c in 0..n {
            if r != c {
                let v = entries[(r * n + c) % entries.len()];
                m.set(r, c, v);
                row_sum += v.abs();
            }
        }
        m.set(r, r, row_sum + 1.0);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gaussian elimination inverts well-conditioned systems: solving
    /// `A x = A·y` recovers `y`.
    #[test]
    fn solve_recovers_known_solutions(
        n in 1usize..6,
        entries in prop::collection::vec(-2.0f64..2.0, 36),
        y in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        let a = dominant_matrix(n, &entries);
        let y = &y[..n];
        // b = A·y
        let b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| a.get(r, c) * y[c]).sum())
            .collect();
        let x = solve(&a, &b).expect("diagonally dominant systems are solvable");
        for (xi, yi) in x.iter().zip(y) {
            prop_assert!((xi - yi).abs() < 1e-6, "{xi} vs {yi}");
        }
    }

    /// Fold-in always produces finite reconstructions, even for
    /// degenerate observations.
    #[test]
    fn fold_in_is_total(
        seed in any::<u64>(),
        observations in prop::collection::vec((0usize..10, -5.0f64..5.0), 0..8),
        ridge in 0.001f64..1.0,
    ) {
        let mut rng = SimRng::from_seed_u64(seed);
        let mut r = Matrix::zeros(20, 10);
        r.randomize(1.0, &mut rng);
        let f = MatrixFactorization::train(&r, 3, 20, 0.05, 0.01, &mut rng);
        let row = f.fold_in(&observations, ridge);
        prop_assert_eq!(row.len(), 10);
        prop_assert!(row.iter().all(|v| v.is_finite()));
    }

    /// Training reduces reconstruction error relative to the random
    /// initialization for genuinely low-rank data.
    #[test]
    fn training_learns_low_rank_structure(seed in 0u64..200) {
        let mut rng = SimRng::from_seed_u64(seed);
        // Rank-2 ground truth.
        let mut r = Matrix::zeros(30, 10);
        for i in 0..30 {
            for j in 0..10 {
                let a = ((i % 5) as f64) / 5.0;
                let b = ((i % 3) as f64) / 3.0;
                r.set(i, j, a * ((j % 4) as f64 / 4.0) + b * ((j % 2) as f64));
            }
        }
        let trained = MatrixFactorization::train(&r, 3, 120, 0.05, 0.005, &mut rng);
        let barely = MatrixFactorization::train(&r, 3, 1, 0.05, 0.005, &mut rng);
        prop_assert!(trained.rmse(&r) < barely.rmse(&r));
        prop_assert!(trained.rmse(&r) < 0.15, "rmse {}", trained.rmse(&r));
    }
}
