//! `hcloud-cli` — run HCloud provisioning experiments from the shell.
//!
//! ```text
//! hcloud-cli compare  --scenario high [--scale 0.25] [--minutes 40] [--seed 42]
//! hcloud-cli run      --scenario high --strategy HM [--no-profiling]
//!                     [--policy P8] [--spot 0.6] [--pricing aws|gce|azure]
//! hcloud-cli sweep    --knob spinup|external|retention|sensitive
//!                     [--scenario high] [--strategy HM]
//! hcloud-cli export   --scenario low --out scenario.json
//! hcloud-cli run      --scenario-file scenario.json --strategy HF
//! hcloud-cli validate --file scenario.json
//! hcloud-cli advise   --scenario high --weeks 30 --perf-floor 0.9
//! hcloud-cli trace    --file results/traces/HighVariability-HM-seed42.jsonl [--limit 50]
//! ```
//!
//! Everything is deterministic in `--seed` (default 42). The default
//! `--scale 0.25 --minutes 40` keeps runs under a second; pass
//! `--scale 1 --minutes 120` for paper-scale experiments.

mod advise;
mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        // A malformed scenario file is its own exit code (2) so CI can
        // tell "bad input document" apart from "run failed".
        Ok(args::Command::Validate(file)) => match commands::validate_file(&file) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        Ok(command) => match commands::run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
