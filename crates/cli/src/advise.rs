//! The `advise` command: which provisioning strategy should *this*
//! workload use?
//!
//! This is HCloud's raison d'être turned into a one-shot answer: run
//! every registered strategy on the user's workload, bill each over the
//! planned deployment length with real reservation terms (Figure 13
//! accounting), discard strategies that miss the performance floor, and
//! recommend the cheapest survivor — with the reasoning shown, not just
//! the verdict.

use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, RunResult, StrategyRef, StrategyRegistry,
};
use hcloud_pricing::{commitment_cost, Rates, ReservedOnDemandPricing};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::Scenario;

/// Inputs to a recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdviseOptions {
    /// Planned deployment length in weeks (the workload pattern repeats).
    pub weeks: u64,
    /// Minimum acceptable mean normalized performance in `(0, 1]`.
    pub perf_floor: f64,
}

impl Default for AdviseOptions {
    fn default() -> Self {
        AdviseOptions {
            weeks: 26,
            perf_floor: 0.85,
        }
    }
}

/// One strategy's evaluated candidacy.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The strategy.
    pub strategy: StrategyRef,
    /// Mean normalized performance on the workload.
    pub perf: f64,
    /// Mean memcached p99 (µs), if the workload has latency-critical jobs.
    pub lc_p99_us: Option<f64>,
    /// Total deployment cost in dollars.
    pub deployment_cost: f64,
    /// Whether the performance floor was met.
    pub meets_floor: bool,
}

/// The full recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// All candidates, evaluated.
    pub candidates: Vec<Candidate>,
    /// Index into `candidates` of the pick, if any strategy met the floor.
    pub pick: Option<usize>,
}

/// Evaluates every registered strategy on `scenario` and recommends one.
pub fn advise(scenario: &Scenario, options: &AdviseOptions, seed: u64) -> Recommendation {
    let rates = Rates::default();
    let pricing = ReservedOnDemandPricing::default();
    let duration = SimDuration::from_hours(options.weeks * 7 * 24);
    let factory = RngFactory::new(seed);
    let candidates: Vec<Candidate> = StrategyRegistry::builtin()
        .all()
        .iter()
        .map(|strategy| {
            let strategy = strategy.clone();
            let r: RunResult =
                run_scenario(scenario, &RunConfig::new(&strategy), &RunCtx::new(&factory))
                    .expect("no auditor attached");
            let run_len = r.makespan.saturating_since(SimTime::ZERO);
            let cost = commitment_cost(&r.usage_records, &rates, &pricing, run_len, duration);
            let perf = r.mean_normalized_perf();
            Candidate {
                strategy,
                perf,
                lc_p99_us: r.lc_latency_boxplot().map(|b| b.mean),
                deployment_cost: cost.total(),
                meets_floor: perf >= options.perf_floor,
            }
        })
        .collect();
    let pick = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.meets_floor)
        .min_by(|a, b| {
            a.1.deployment_cost
                .partial_cmp(&b.1.deployment_cost)
                .expect("finite costs")
        })
        .map(|(i, _)| i);
    Recommendation { candidates, pick }
}

/// Prints the recommendation with its reasoning.
pub fn print(recommendation: &Recommendation, options: &AdviseOptions) {
    println!(
        "{:<6} {:>8} {:>14} {:>16} {:>8}",
        "strat", "perf %", "lc p99 (µs)", "deploy cost k$", "floor"
    );
    for c in &recommendation.candidates {
        println!(
            "{:<6} {:>8.1} {:>14} {:>16.1} {:>8}",
            c.strategy.short_name(),
            c.perf * 100.0,
            c.lc_p99_us.map_or("-".into(), |v| format!("{v:.0}")),
            c.deployment_cost / 1000.0,
            if c.meets_floor { "ok" } else { "MISS" }
        );
    }
    println!();
    match recommendation.pick {
        Some(i) => {
            let c = &recommendation.candidates[i];
            println!(
                "recommendation: {} — cheapest strategy ({:.1}k$ over {} weeks) that\n\
                 keeps mean performance at {:.1}% (floor: {:.0}%)",
                c.strategy.short_name(),
                c.deployment_cost / 1000.0,
                options.weeks,
                c.perf * 100.0,
                options.perf_floor * 100.0
            );
        }
        None => {
            println!(
                "no strategy meets the {:.0}% performance floor on this workload;\n\
                 the closest is {}. Consider relaxing the floor or reserving more.",
                options.perf_floor * 100.0,
                recommendation
                    .candidates
                    .iter()
                    .max_by(|a, b| a.perf.partial_cmp(&b.perf).expect("finite perf"))
                    .map(|c| c.strategy.short_name())
                    .unwrap_or("-")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    fn scenario() -> Scenario {
        Scenario::generate(
            ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.1, 15),
            &RngFactory::new(3),
        )
    }

    #[test]
    fn advise_evaluates_all_registered_strategies() {
        let rec = advise(&scenario(), &AdviseOptions::default(), 3);
        assert_eq!(
            rec.candidates.len(),
            StrategyRegistry::builtin().all().len()
        );
        assert_eq!(rec.candidates.len(), 7);
        let ids: Vec<&str> = rec.candidates.iter().map(|c| c.strategy.id()).collect();
        assert!(ids.contains(&"reservation-autoscale"));
        assert!(ids.contains(&"queueing-capacity"));
        assert!(rec.pick.is_some(), "some strategy should meet an 85% floor");
        for c in &rec.candidates {
            assert!(c.deployment_cost > 0.0);
            assert!((0.0..=1.0).contains(&c.perf));
        }
    }

    #[test]
    fn pick_is_cheapest_among_floor_meeting() {
        let rec = advise(&scenario(), &AdviseOptions::default(), 3);
        let pick = &rec.candidates[rec.pick.expect("pick exists")];
        for c in rec.candidates.iter().filter(|c| c.meets_floor) {
            assert!(pick.deployment_cost <= c.deployment_cost + 1e-9);
        }
        assert!(pick.meets_floor);
    }

    #[test]
    fn impossible_floor_yields_no_pick() {
        let rec = advise(
            &scenario(),
            &AdviseOptions {
                weeks: 26,
                perf_floor: 1.01,
            },
            3,
        );
        assert!(rec.pick.is_none());
    }

    #[test]
    fn longer_deployments_favor_reservation_heavy_strategies() {
        let short = advise(
            &scenario(),
            &AdviseOptions {
                weeks: 1,
                perf_floor: 0.5,
            },
            3,
        );
        let pick_short = &short.candidates[short.pick.expect("pick")].strategy;
        // For a one-week deployment, paying a year of reservations upfront
        // can never win.
        assert_ne!(
            pick_short.id(),
            "static-reserved",
            "SR picked for a 1-week deployment"
        );
    }
}
