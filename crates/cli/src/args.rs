//! Hand-rolled argument parsing (no CLI-framework dependency).

use hcloud::{MappingPolicy, StrategyKind, StrategyRef};
use hcloud_workloads::ScenarioKind;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: hcloud-cli <command> [options]

commands:
  compare   run every strategy on one scenario and tabulate
  run       run one strategy, print the full summary
  sweep     sweep one knob across its range for one strategy
  export    generate a scenario and write it to JSON
  advise    recommend the cheapest strategy meeting a performance floor
  tenants   run a multi-tenant scenario and render the fair-share report
  validate  check a scenario file (exported or long-horizon DSL)
  trace     replay a recorded JSONL trace as a readable timeline
  audit     replay recorded traces through the conservation auditor
  faults    list the built-in fault-injection plans (HCLOUD_FAULTS)
  dashboard regenerate docs/alignment/{STATUS.md,PERF_TRAJECTORY.json}

common options:
  --scenario static|low|high   scenario kind          [high]
  --scale <f64>                load scale             [0.25]
  --minutes <u64>              arrival window         [40]
  --seed <u64>                 master seed            [42]

run options:
  --strategy <id|short>        registered strategy    [HM]
                               (SR|OdF|OdM|HF|HM|RA|QC or the registry
                               id, e.g. reservation-autoscale)
  --no-profiling               disable Quasar info
  --policy P1..P8              mapping policy         [P8]
  --spot <bid>                 enable spot at this bid multiplier
  --pricing aws|gce|azure      pricing model          [aws]
  --scenario-file <path>       load jobs from an exported JSON scenario
  --json <path>                also write the summary as JSON
  --explain                    print the placement-decision breakdown

sweep options:
  --knob spinup|external|retention|sensitive
  --strategy ...               strategy to sweep      [HM]

export options:
  --out <path>                 output file            [scenario.json]

advise options:
  --weeks <u64>                planned deployment     [26]
  --perf-floor <f64>           min mean performance   [0.85]

tenants options:
  --tenants <n>                Zipf tenant count when the scenario
                               carries no tenancy section  [50]
  --strategy <id|short>        registered strategy    [HM]
  --scenario-file <path>       load an exported JSON scenario (honors
                               its embedded tenancy section)

validate options:
  --file <path>                scenario JSON to check: an export or a
                               long-horizon DSL document (schema_version)

trace options:
  --file <path>                trace to replay (results/traces/*.jsonl)
  --limit <n>                  show at most n events

audit options:
  --dir <path>                 trace directory        [results/traces]";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `compare`: all strategies on one scenario.
    Compare(Common),
    /// `run`: a single configured run.
    Run(Common, RunOptions),
    /// `sweep`: one knob, one strategy.
    Sweep(Common, SweepOptions),
    /// `export`: write the generated scenario to JSON.
    Export(Common, String),
    /// `advise`: recommend a strategy for a deployment plan.
    Advise(Common, crate::advise::AdviseOptions),
    /// `tenants`: run a multi-tenant scenario, render the fair-share
    /// report.
    Tenants(Common, TenantsOptions),
    /// `validate`: check a scenario file (exported or DSL) and report
    /// what it contains.
    Validate(String),
    /// `trace`: replay a recorded JSONL trace as a readable timeline.
    Trace(TraceOptions),
    /// `audit`: replay recorded traces through the conservation auditor.
    Audit(AuditOptions),
    /// `faults`: list the built-in fault-injection plans.
    Faults,
    /// `dashboard`: regenerate the paper-parity dashboard in place.
    Dashboard,
}

/// Options for `audit`.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOptions {
    /// Directory holding the JSONL traces to audit.
    pub dir: String,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            dir: "results/traces".into(),
        }
    }
}

/// Options for `tenants`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantsOptions {
    /// Strategy under test.
    pub strategy: StrategyRef,
    /// Zipf tenant count when the scenario has no tenancy section.
    pub tenants: usize,
    /// Path to an exported scenario to load instead of generating.
    pub scenario_file: Option<String>,
}

impl Default for TenantsOptions {
    fn default() -> Self {
        TenantsOptions {
            strategy: StrategyKind::HybridMixed.into(),
            tenants: 50,
            scenario_file: None,
        }
    }
}

/// Options for `trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// The JSONL trace file to replay.
    pub file: String,
    /// Show at most this many events.
    pub limit: Option<usize>,
}

/// Options shared by every command.
#[derive(Debug, Clone, PartialEq)]
pub struct Common {
    /// Scenario kind.
    pub kind: ScenarioKind,
    /// Load scale (1.0 = paper scale).
    pub scale: f64,
    /// Arrival window in minutes.
    pub minutes: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Common {
    fn default() -> Self {
        Common {
            kind: ScenarioKind::HighVariability,
            scale: 0.25,
            minutes: 40,
            seed: 42,
        }
    }
}

/// Options for `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Strategy under test.
    pub strategy: StrategyRef,
    /// Whether Quasar information is available.
    pub profiling: bool,
    /// Mapping policy.
    pub policy: MappingPolicy,
    /// Spot bid multiplier, if spot is enabled.
    pub spot_bid: Option<f64>,
    /// Pricing model name (aws|gce|azure).
    pub pricing: String,
    /// Path to an exported scenario to load instead of generating.
    pub scenario_file: Option<String>,
    /// Optional JSON output path for the summary.
    pub json_out: Option<String>,
    /// Print the placement-decision breakdown.
    pub explain: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            strategy: StrategyKind::HybridMixed.into(),
            profiling: true,
            policy: MappingPolicy::Dynamic,
            spot_bid: None,
            pricing: "aws".into(),
            scenario_file: None,
            json_out: None,
            explain: false,
        }
    }
}

/// Options for `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Which knob to sweep.
    pub knob: String,
    /// Strategy to sweep it on.
    pub strategy: StrategyRef,
}

/// Parses a strategy id or short name against the builtin registry.
pub fn parse_strategy(s: &str) -> Result<StrategyRef, String> {
    s.parse::<StrategyRef>().map_err(|e| e.to_string())
}

/// Parses a scenario kind.
pub fn parse_scenario(s: &str) -> Result<ScenarioKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "static" => Ok(ScenarioKind::Static),
        "low" => Ok(ScenarioKind::LowVariability),
        "high" => Ok(ScenarioKind::HighVariability),
        _ => Err(format!("unknown scenario '{s}' (use static|low|high)")),
    }
}

/// Parses a mapping-policy label (P1–P8).
pub fn parse_policy(s: &str) -> Result<MappingPolicy, String> {
    MappingPolicy::paper_set()
        .into_iter()
        .find(|(label, _)| label.eq_ignore_ascii_case(s))
        .map(|(_, p)| p)
        .ok_or_else(|| format!("unknown policy '{s}' (use P1..P8)"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: cannot parse '{v}'"))
}

/// Parses the full argument vector.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let verb = it.next().ok_or("missing command")?.as_str();
    let rest: Vec<&String> = it.collect();

    let mut common = Common::default();
    let mut run = RunOptions::default();
    let mut sweep_knob: Option<String> = None;
    let mut export_out = "scenario.json".to_string();
    let mut advise = crate::advise::AdviseOptions::default();
    let mut trace_file: Option<String> = None;
    let mut trace_limit: Option<usize> = None;
    let mut audit = AuditOptions::default();
    let mut tenant_count: usize = TenantsOptions::default().tenants;

    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let value = rest.get(i + 1).copied();
        let mut consumed = 2;
        match flag {
            "--scenario" => common.kind = parse_scenario(value.ok_or("--scenario needs a value")?)?,
            "--scale" => common.scale = parse_num("--scale", value)?,
            "--minutes" => common.minutes = parse_num("--minutes", value)?,
            "--seed" => common.seed = parse_num("--seed", value)?,
            "--strategy" => {
                run.strategy = parse_strategy(value.ok_or("--strategy needs a value")?)?
            }
            "--policy" => run.policy = parse_policy(value.ok_or("--policy needs a value")?)?,
            "--spot" => run.spot_bid = Some(parse_num("--spot", value)?),
            "--pricing" => {
                let v = value.ok_or("--pricing needs a value")?;
                if !["aws", "gce", "azure"].contains(&v.as_str()) {
                    return Err(format!("unknown pricing model '{v}'"));
                }
                run.pricing = v.clone();
            }
            "--scenario-file" => {
                run.scenario_file = Some(value.ok_or("--scenario-file needs a value")?.clone())
            }
            "--json" => run.json_out = Some(value.ok_or("--json needs a value")?.clone()),
            "--knob" => sweep_knob = Some(value.ok_or("--knob needs a value")?.clone()),
            "--weeks" => advise.weeks = parse_num("--weeks", value)?,
            "--perf-floor" => advise.perf_floor = parse_num("--perf-floor", value)?,
            "--out" => export_out = value.ok_or("--out needs a value")?.clone(),
            "--file" => trace_file = Some(value.ok_or("--file needs a value")?.clone()),
            "--limit" => trace_limit = Some(parse_num("--limit", value)?),
            "--dir" => audit.dir = value.ok_or("--dir needs a value")?.clone(),
            "--tenants" => tenant_count = parse_num("--tenants", value)?,
            "--no-profiling" => {
                run.profiling = false;
                consumed = 1;
            }
            "--explain" => {
                run.explain = true;
                consumed = 1;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += consumed;
    }

    match verb {
        "compare" => Ok(Command::Compare(common)),
        "run" => Ok(Command::Run(common, run)),
        "sweep" => {
            let knob = sweep_knob.ok_or("sweep needs --knob")?;
            if !["spinup", "external", "retention", "sensitive"].contains(&knob.as_str()) {
                return Err(format!("unknown knob '{knob}'"));
            }
            Ok(Command::Sweep(
                common,
                SweepOptions {
                    knob,
                    strategy: run.strategy,
                },
            ))
        }
        "export" => Ok(Command::Export(common, export_out)),
        "advise" => {
            if !(0.0..=1.0).contains(&advise.perf_floor) {
                return Err("--perf-floor must be in [0, 1]".into());
            }
            Ok(Command::Advise(common, advise))
        }
        "tenants" => {
            if tenant_count == 0 {
                return Err("--tenants must be at least 1".into());
            }
            Ok(Command::Tenants(
                common,
                TenantsOptions {
                    strategy: run.strategy,
                    tenants: tenant_count,
                    scenario_file: run.scenario_file,
                },
            ))
        }
        "validate" => {
            let file = trace_file.ok_or("validate needs --file")?;
            Ok(Command::Validate(file))
        }
        "trace" => {
            let file = trace_file.ok_or("trace needs --file")?;
            Ok(Command::Trace(TraceOptions {
                file,
                limit: trace_limit,
            }))
        }
        "audit" => Ok(Command::Audit(audit)),
        "faults" => Ok(Command::Faults),
        "dashboard" => Ok(Command::Dashboard),
        "help" | "--help" | "-h" => Err("help requested".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_compare_with_defaults() {
        let c = parse(&v(&["compare"])).unwrap();
        assert_eq!(c, Command::Compare(Common::default()));
    }

    #[test]
    fn parses_full_run() {
        let c = parse(&v(&[
            "run",
            "--scenario",
            "low",
            "--strategy",
            "hf",
            "--no-profiling",
            "--policy",
            "P3",
            "--spot",
            "0.5",
            "--pricing",
            "gce",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(common, run) = c else {
            panic!("expected run");
        };
        assert_eq!(common.kind, ScenarioKind::LowVariability);
        assert_eq!(common.seed, 7);
        assert_eq!(run.strategy, StrategyKind::HybridFull);
        assert!(!run.profiling);
        assert_eq!(run.policy, MappingPolicy::QualityThreshold(0.5));
        assert_eq!(run.spot_bid, Some(0.5));
        assert_eq!(run.pricing, "gce");
    }

    #[test]
    fn parses_sweep_and_export() {
        let c = parse(&v(&["sweep", "--knob", "retention", "--strategy", "OdM"])).unwrap();
        let Command::Sweep(_, s) = c else {
            panic!("expected sweep");
        };
        assert_eq!(s.knob, "retention");
        assert_eq!(s.strategy, StrategyKind::OnDemandMixed);

        let c = parse(&v(&["export", "--out", "x.json", "--scenario", "static"])).unwrap();
        let Command::Export(common, out) = c else {
            panic!("expected export");
        };
        assert_eq!(out, "x.json");
        assert_eq!(common.kind, ScenarioKind::Static);
    }

    #[test]
    fn parses_advise() {
        let c = parse(&v(&["advise", "--weeks", "30", "--perf-floor", "0.9"])).unwrap();
        let Command::Advise(_, a) = c else {
            panic!("expected advise");
        };
        assert_eq!(a.weeks, 30);
        assert_eq!(a.perf_floor, 0.9);
        assert!(parse(&v(&["advise", "--perf-floor", "1.5"])).is_err());
    }

    #[test]
    fn parses_tenants() {
        let c = parse(&v(&["tenants"])).unwrap();
        assert_eq!(
            c,
            Command::Tenants(Common::default(), TenantsOptions::default())
        );
        let c = parse(&v(&[
            "tenants",
            "--tenants",
            "200",
            "--strategy",
            "sr",
            "--scenario-file",
            "x.json",
        ]))
        .unwrap();
        let Command::Tenants(_, t) = c else {
            panic!("expected tenants");
        };
        assert_eq!(t.tenants, 200);
        assert_eq!(t.strategy, StrategyKind::StaticReserved);
        assert_eq!(t.scenario_file.as_deref(), Some("x.json"));
        assert!(parse(&v(&["tenants", "--tenants", "0"])).is_err());
        assert!(parse(&v(&["tenants", "--tenants", "lots"])).is_err());
    }

    #[test]
    fn parses_trace() {
        let c = parse(&v(&["trace", "--file", "results/traces/x.jsonl"])).unwrap();
        assert_eq!(
            c,
            Command::Trace(TraceOptions {
                file: "results/traces/x.jsonl".into(),
                limit: None,
            })
        );
        let c = parse(&v(&["trace", "--file", "t.jsonl", "--limit", "25"])).unwrap();
        let Command::Trace(t) = c else {
            panic!("expected trace");
        };
        assert_eq!(t.limit, Some(25));
        assert!(parse(&v(&["trace"])).is_err(), "trace needs --file");
        assert!(parse(&v(&["trace", "--file", "t", "--limit", "x"])).is_err());
    }

    #[test]
    fn parses_validate() {
        let c = parse(&v(&["validate", "--file", "scenario.json"])).unwrap();
        assert_eq!(c, Command::Validate("scenario.json".into()));
        assert!(parse(&v(&["validate"])).is_err(), "validate needs --file");
    }

    #[test]
    fn parses_faults() {
        assert_eq!(parse(&v(&["faults"])).unwrap(), Command::Faults);
    }

    #[test]
    fn parses_audit() {
        assert_eq!(
            parse(&v(&["audit"])).unwrap(),
            Command::Audit(AuditOptions {
                dir: "results/traces".into(),
            })
        );
        let c = parse(&v(&["audit", "--dir", "other/traces"])).unwrap();
        let Command::Audit(a) = c else {
            panic!("expected audit");
        };
        assert_eq!(a.dir, "other/traces");
        assert!(
            parse(&v(&["audit", "--dir"])).is_err(),
            "--dir needs a value"
        );
    }

    #[test]
    fn parses_registry_strategy_ids() {
        // Registry ids and the new strategies' short names both resolve.
        let c = parse(&v(&["run", "--strategy", "reservation-autoscale"])).unwrap();
        let Command::Run(_, run) = c else {
            panic!("expected run");
        };
        assert_eq!(run.strategy.id(), "reservation-autoscale");
        let c = parse(&v(&["run", "--strategy", "QC"])).unwrap();
        let Command::Run(_, run) = c else {
            panic!("expected run");
        };
        assert_eq!(run.strategy.id(), "queueing-capacity");
        // The error names the known ids.
        let e = parse(&v(&["run", "--strategy", "bogus"])).unwrap_err();
        assert!(e.contains("unknown strategy 'bogus'"), "{e}");
        assert!(e.contains("hybrid-mixed"), "{e}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--strategy", "XX"])).is_err());
        assert!(parse(&v(&["run", "--pricing", "ibm"])).is_err());
        assert!(parse(&v(&["sweep"])).is_err());
        assert!(parse(&v(&["sweep", "--knob", "color"])).is_err());
        assert!(parse(&v(&["run", "--scale"])).is_err());
    }
}
