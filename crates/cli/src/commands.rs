//! Command implementations.

use std::fs;

use hcloud::config::SpotPolicy;
use hcloud::{runner::run_scenario, RunConfig, RunResult, StrategyKind};
use hcloud_cloud::{ExternalLoadModel, SpinUpModel};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{JobSpec, Scenario, ScenarioConfig};

use crate::args::{Command, Common, RunOptions, SweepOptions};

/// The on-disk scenario format for `export` / `--scenario-file`.
#[derive(serde::Serialize, serde::Deserialize)]
struct ScenarioFile {
    config: ScenarioConfig,
    jobs: Vec<JobSpec>,
}

fn build_scenario(common: &Common) -> Scenario {
    let config = ScenarioConfig {
        duration: hcloud_sim::SimDuration::from_mins(common.minutes),
        load_scale: common.scale,
        ..ScenarioConfig::paper(common.kind)
    };
    Scenario::generate(config, &RngFactory::new(common.seed))
}

fn pricing_model(name: &str) -> PricingModel {
    match name {
        "gce" => PricingModel::gce(),
        "azure" => PricingModel::azure(),
        _ => PricingModel::aws(),
    }
}

fn summarize(label: &str, r: &RunResult, model: &PricingModel) {
    let rates = Rates::default();
    let cost = r.cost(&rates, model);
    println!("{label}:");
    println!(
        "  jobs {} | makespan {:.1} min | mean perf {:.1}% | mean degradation {:.2}x",
        r.outcomes.len(),
        r.makespan.as_mins_f64(),
        r.mean_normalized_perf() * 100.0,
        r.mean_degradation()
    );
    if let Some(b) = r.batch_performance_boxplot() {
        println!(
            "  batch completion: mean {:.1} min (p5 {:.1} / p95 {:.1})",
            b.mean, b.p5, b.p95
        );
    }
    if let Some(b) = r.lc_latency_boxplot() {
        println!(
            "  memcached p99:    mean {:.0} µs (p5 {:.0} / p95 {:.0})",
            b.mean, b.p5, b.p95
        );
    }
    if let Some(u) = r.mean_reserved_utilization() {
        println!(
            "  reserved: {} cores at {:.0}% mean utilization",
            r.reserved_cores,
            u * 100.0
        );
    }
    println!(
        "  on-demand: {} acquired ({} released immediately), {} queued jobs",
        r.counters.od_acquired, r.counters.od_released_immediately, r.counters.queued_jobs
    );
    if r.counters.spot_acquired > 0 {
        println!(
            "  spot: {} acquired, {} terminations",
            r.counters.spot_acquired, r.counters.spot_terminations
        );
    }
    println!(
        "  cost: {:.2}$ (reserved {:.2}$ + on-demand {:.2}$)",
        cost.total(),
        cost.reserved,
        cost.on_demand
    );
}

/// Executes a parsed command.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Compare(common) => compare(&common),
        Command::Run(common, options) => run_one(&common, &options),
        Command::Sweep(common, options) => sweep(&common, &options),
        Command::Export(common, out) => export(&common, &out),
        Command::Advise(common, options) => {
            let scenario = build_scenario(&common);
            println!(
                "advising for {} ({} jobs), {}-week deployment, {:.0}% floor\n",
                common.kind.name(),
                scenario.jobs().len(),
                options.weeks,
                options.perf_floor * 100.0
            );
            let rec = crate::advise::advise(&scenario, &options, common.seed);
            crate::advise::print(&rec, &options);
            Ok(())
        }
    }
}

fn compare(common: &Common) -> Result<(), String> {
    let scenario = build_scenario(common);
    let factory = RngFactory::new(common.seed);
    let rates = Rates::default();
    let model = PricingModel::aws();
    println!(
        "{} scenario, {} jobs, seed {}\n",
        common.kind.name(),
        scenario.jobs().len(),
        common.seed
    );
    println!(
        "{:<6} {:>8} {:>12} {:>14} {:>10} {:>10}",
        "strat", "perf %", "degradation", "lc p99 (µs)", "od acq", "cost $"
    );
    for strategy in StrategyKind::ALL {
        let r = run_scenario(&scenario, &RunConfig::new(strategy), &factory);
        let lc = r.lc_latency_boxplot().map(|b| b.mean).unwrap_or(f64::NAN);
        println!(
            "{:<6} {:>8.1} {:>11.2}x {:>14.0} {:>10} {:>10.2}",
            strategy.short_name(),
            r.mean_normalized_perf() * 100.0,
            r.mean_degradation(),
            lc,
            r.counters.od_acquired,
            r.cost(&rates, &model).total()
        );
    }
    Ok(())
}

fn run_one(common: &Common, options: &RunOptions) -> Result<(), String> {
    let scenario = match &options.scenario_file {
        Some(path) => {
            let body = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let file: ScenarioFile =
                serde_json::from_str(&body).map_err(|e| format!("parsing {path}: {e}"))?;
            Scenario::from_jobs(file.config, file.jobs)
        }
        None => build_scenario(common),
    };
    let mut config = RunConfig::new(options.strategy).with_policy(options.policy);
    config.profiling = options.profiling;
    config.record_decisions = options.explain;
    if let Some(bid) = options.spot_bid {
        config.spot = Some(SpotPolicy {
            bid_multiplier: bid,
            ..SpotPolicy::default()
        });
    }
    let model = pricing_model(&options.pricing);
    let r = run_scenario(&scenario, &config, &RngFactory::new(common.seed));
    summarize(
        &format!("{} on {}", options.strategy, scenario.kind().name()),
        &r,
        &model,
    );
    if options.explain {
        use std::collections::BTreeMap;
        let mut by_reason: BTreeMap<String, usize> = BTreeMap::new();
        for d in &r.decisions {
            *by_reason.entry(d.reason.to_string()).or_default() += 1;
        }
        println!("  placement decisions:");
        for (reason, n) in &by_reason {
            println!("    {reason:<24} {n}");
        }
        println!("  first ten decisions:");
        for d in r.decisions.iter().take(10) {
            println!(
                "    {} @ {:.1}s  QT={:.2}  util={:.0}%  -> {}",
                d.job,
                d.at.as_secs_f64(),
                d.estimated_quality,
                d.reserved_utilization * 100.0,
                d.reason
            );
        }
    }
    if let Some(path) = &options.json_out {
        let rates = Rates::default();
        let cost = r.cost(&rates, &model);
        let body = serde_json::json!({
            "strategy": options.strategy.short_name(),
            "scenario": scenario.kind().name(),
            "seed": common.seed,
            "jobs": r.outcomes.len(),
            "makespan_min": r.makespan.as_mins_f64(),
            "mean_normalized_perf": r.mean_normalized_perf(),
            "mean_degradation": r.mean_degradation(),
            "reserved_cores": r.reserved_cores,
            "reserved_utilization": r.mean_reserved_utilization(),
            "od_acquired": r.counters.od_acquired,
            "spot_acquired": r.counters.spot_acquired,
            "spot_terminations": r.counters.spot_terminations,
            "cost_reserved": cost.reserved,
            "cost_on_demand": cost.on_demand,
        });
        fs::write(
            path,
            serde_json::to_string_pretty(&body).expect("serializable"),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("(wrote {path})");
    }
    Ok(())
}

fn sweep(common: &Common, options: &SweepOptions) -> Result<(), String> {
    let factory = RngFactory::new(common.seed);
    println!(
        "sweeping {} for {} on {}\n",
        options.knob,
        options.strategy,
        common.kind.name()
    );
    println!(
        "{:>12} {:>8} {:>12} {:>10}",
        "value", "perf %", "degradation", "cost $"
    );
    let rates = Rates::default();
    let model = PricingModel::aws();
    let points: Vec<(String, RunConfig, Option<f64>)> = match options.knob.as_str() {
        "spinup" => [0.0, 15.0, 30.0, 60.0, 120.0]
            .iter()
            .map(|&s| {
                let mut c = RunConfig::new(options.strategy);
                c.cloud.spin_up = SpinUpModel::with_mean_secs(s);
                (format!("{s:.0}s"), c, None)
            })
            .collect(),
        "external" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&l| {
                let mut c = RunConfig::new(options.strategy);
                c.cloud.external = ExternalLoadModel::with_mean(l);
                (format!("{:.0}%", l * 100.0), c, None)
            })
            .collect(),
        "retention" => [0.0, 1.0, 10.0, 100.0, 500.0]
            .iter()
            .map(|&m| {
                let mut c = RunConfig::new(options.strategy);
                c.retention_mult = m;
                (format!("{m:.0}x"), c, None)
            })
            .collect(),
        "sensitive" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&f| {
                (
                    format!("{:.0}%", f * 100.0),
                    RunConfig::new(options.strategy),
                    Some(f),
                )
            })
            .collect(),
        other => return Err(format!("unknown knob '{other}'")),
    };
    for (label, config, sensitive) in points {
        let scenario = match sensitive {
            Some(f) => {
                let mut sc = ScenarioConfig {
                    duration: hcloud_sim::SimDuration::from_mins(common.minutes),
                    load_scale: common.scale,
                    ..ScenarioConfig::paper(common.kind)
                };
                sc.sensitive_fraction = Some(f);
                Scenario::generate(sc, &factory)
            }
            None => build_scenario(common),
        };
        let r = run_scenario(&scenario, &config, &factory);
        println!(
            "{:>12} {:>8.1} {:>11.2}x {:>10.2}",
            label,
            r.mean_normalized_perf() * 100.0,
            r.mean_degradation(),
            r.cost(&rates, &model).total()
        );
    }
    Ok(())
}

fn export(common: &Common, out: &str) -> Result<(), String> {
    let scenario = build_scenario(common);
    let file = ScenarioFile {
        config: scenario.config().clone(),
        jobs: scenario.jobs().to_vec(),
    };
    let body = serde_json::to_string(&file).expect("serializable scenario");
    fs::write(out, &body).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} jobs ({} bytes) to {out}",
        file.jobs.len(),
        body.len()
    );
    Ok(())
}
