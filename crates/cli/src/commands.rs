//! Command implementations.

use std::fs;
use std::sync::Arc;

use hcloud::config::SpotPolicy;
use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, RunResult, StrategyKind,
};
use hcloud_bench::{Engine, ExperimentCtx, ExperimentPlan, RunSpec};
use hcloud_cloud::{ExternalLoadModel, SpinUpModel};
use hcloud_faults::FaultPlanId;
use hcloud_interference::ResourceVector;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_tenancy::{QueueState, TenancyPlan, TenantSpec};
use hcloud_workloads::{
    AppClass, DemandCurve, JobId, JobKind, JobSpec, LatencyModel, Scenario, ScenarioConfig,
    ScenarioDsl, ScenarioKind,
};

use crate::args::{Command, Common, RunOptions, SweepOptions, TenantsOptions};

/// The on-disk scenario format for `export` / `--scenario-file`.
#[derive(Debug)]
struct ScenarioFile {
    config: ScenarioConfig,
    jobs: Vec<JobSpec>,
    /// Optional multi-tenant section; absent files run untenanted.
    tenancy: Option<TenancyPlan>,
}

/// JSON codec for [`ScenarioFile`]. Times serialize as integer
/// microseconds (the simulator's native unit), so export → import
/// round-trips exactly.
mod scenario_json {
    use super::*;

    fn kind_name(kind: ScenarioKind) -> &'static str {
        match kind {
            ScenarioKind::Static => "static",
            ScenarioKind::LowVariability => "low",
            ScenarioKind::HighVariability => "high",
        }
    }

    fn kind_from(name: &str) -> Result<ScenarioKind, String> {
        match name {
            "static" => Ok(ScenarioKind::Static),
            "low" => Ok(ScenarioKind::LowVariability),
            "high" => Ok(ScenarioKind::HighVariability),
            other => Err(format!("unknown scenario kind '{other}'")),
        }
    }

    fn class_name(class: AppClass) -> &'static str {
        match class {
            AppClass::HadoopRecommender => "hadoop-recommender",
            AppClass::HadoopSvm => "hadoop-svm",
            AppClass::HadoopMatrixFactorization => "hadoop-matrix-factorization",
            AppClass::SparkBatch => "spark-batch",
            AppClass::SparkRealtime => "spark-realtime",
            AppClass::Memcached => "memcached",
        }
    }

    fn class_from(name: &str) -> Result<AppClass, String> {
        AppClass::ALL
            .into_iter()
            .find(|&c| class_name(c) == name)
            .ok_or_else(|| format!("unknown application class '{name}'"))
    }

    pub fn to_json(file: &ScenarioFile) -> Value {
        let c = &file.config;
        let mut config = ObjectBuilder::new()
            .set("kind", kind_name(c.kind))
            .set("duration_us", c.duration.as_micros() as f64)
            .set(
                "mean_interarrival_us",
                c.mean_interarrival.as_micros() as f64,
            )
            .set("load_scale", c.load_scale)
            .set(
                "latency_model",
                ObjectBuilder::new()
                    .set("base_service_us", c.latency_model.base_service_us)
                    .set("target_utilization", c.latency_model.target_utilization)
                    .set("max_utilization", c.latency_model.max_utilization)
                    .build(),
            );
        if let Some(f) = c.sensitive_fraction {
            config = config.set("sensitive_fraction", f);
        }
        if let Some(curve) = &c.curve {
            let points: Vec<Value> = curve
                .points()
                .iter()
                .map(|&(m, cores)| Value::Array(vec![m.into(), cores.into()]))
                .collect();
            config = config.set("curve", points);
        }
        let jobs: Vec<Value> = file
            .jobs
            .iter()
            .map(|j| {
                let kind = match j.kind {
                    JobKind::Batch { work_core_secs } => ObjectBuilder::new()
                        .set("type", "batch")
                        .set("work_core_secs", work_core_secs)
                        .build(),
                    JobKind::LatencyCritical {
                        offered_rps,
                        lifetime,
                    } => ObjectBuilder::new()
                        .set("type", "latency-critical")
                        .set("offered_rps", offered_rps)
                        .set("lifetime_us", lifetime.as_micros() as f64)
                        .build(),
                };
                let sensitivity: Vec<Value> =
                    j.sensitivity.as_array().iter().map(|&v| v.into()).collect();
                ObjectBuilder::new()
                    .set("id", j.id.0 as f64)
                    .set("class", class_name(j.class))
                    .set("arrival_us", j.arrival.as_micros() as f64)
                    .set("kind", kind)
                    .set("cores", f64::from(j.cores))
                    .set("sensitivity", sensitivity)
                    .build()
            })
            .collect();
        let mut doc = ObjectBuilder::new()
            .set("config", config.build())
            .set("jobs", jobs);
        if let Some(plan) = &file.tenancy {
            doc = doc.set("tenancy", tenancy_to_json(plan));
        }
        doc.build()
    }

    /// The tenancy section: pool knobs, tenant specs, and job→tenant
    /// assignments as an ordered array of `[job, tenant]` pairs.
    fn tenancy_to_json(plan: &TenancyPlan) -> Value {
        let tenants: Vec<Value> = plan
            .tenants
            .iter()
            .map(|t| {
                ObjectBuilder::new()
                    .set("id", t.id.0 as f64)
                    .set("weight", t.weight)
                    .set("guaranteed_cores", f64::from(t.guaranteed_cores))
                    .set("cap_cores", f64::from(t.cap_cores))
                    .set("state", t.state.name())
                    .build()
            })
            .collect();
        let assignments: Vec<Value> = plan
            .assignments
            .iter()
            .map(|(&job, &tenant)| Value::Array(vec![(job as f64).into(), (tenant as f64).into()]))
            .collect();
        ObjectBuilder::new()
            .set("pool_cores", f64::from(plan.pool_cores))
            .set("quantum", plan.quantum)
            .set("starvation_secs", plan.starvation_secs)
            .set("tenants", tenants)
            .set("assignments", assignments)
            .build()
    }

    fn tenancy_from_json(v: &Value) -> Result<TenancyPlan, String> {
        let mut plan = TenancyPlan::new(
            u32::try_from(get_u64(v, "pool_cores")?)
                .map_err(|_| "field 'pool_cores' out of range".to_string())?,
        )
        .with_quantum(get_f64(v, "quantum")?)
        .with_starvation_secs(get_f64(v, "starvation_secs")?);
        for t in required(v, "tenants")?
            .as_array()
            .ok_or("field 'tenants' is not an array")?
        {
            let state_name = get_str(t, "state")?;
            let state = QueueState::parse(state_name)
                .ok_or_else(|| format!("unknown tenant state '{state_name}'"))?;
            plan = plan.tenant(
                TenantSpec::new(
                    get_u64(t, "id")?,
                    get_f64(t, "weight")?,
                    u32::try_from(get_u64(t, "guaranteed_cores")?)
                        .map_err(|_| "field 'guaranteed_cores' out of range".to_string())?,
                    u32::try_from(get_u64(t, "cap_cores")?)
                        .map_err(|_| "field 'cap_cores' out of range".to_string())?,
                )
                .with_state(state),
            );
        }
        for pair in required(v, "assignments")?
            .as_array()
            .ok_or("field 'assignments' is not an array")?
        {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("assignment entry is not a [job, tenant] pair")?;
            let num = |slot: &Value| {
                slot.as_u64()
                    .ok_or("assignment entry is not a [job, tenant] pair".to_string())
            };
            plan.assign(num(&pair[0])?, num(&pair[1])?);
        }
        plan.validate().map_err(|e| format!("tenancy: {e}"))?;
        Ok(plan)
    }

    fn required<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
        v.get(key).ok_or_else(|| format!("missing field '{key}'"))
    }

    fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
        required(v, key)?
            .as_u64()
            .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
    }

    fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
        required(v, key)?
            .as_f64()
            .ok_or_else(|| format!("field '{key}' is not a number"))
    }

    fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
        required(v, key)?
            .as_str()
            .ok_or_else(|| format!("field '{key}' is not a string"))
    }

    pub fn from_json(v: &Value) -> Result<ScenarioFile, String> {
        let c = required(v, "config")?;
        let lm = required(c, "latency_model")?;
        let config = ScenarioConfig {
            kind: kind_from(get_str(c, "kind")?)?,
            duration: SimDuration::from_micros(get_u64(c, "duration_us")?),
            mean_interarrival: SimDuration::from_micros(get_u64(c, "mean_interarrival_us")?),
            load_scale: get_f64(c, "load_scale")?,
            sensitive_fraction: match c.get("sensitive_fraction") {
                None | Some(Value::Null) => None,
                Some(f) => Some(
                    f.as_f64()
                        .ok_or("field 'sensitive_fraction' is not a number")?,
                ),
            },
            latency_model: LatencyModel {
                base_service_us: get_f64(lm, "base_service_us")?,
                target_utilization: get_f64(lm, "target_utilization")?,
                max_utilization: get_f64(lm, "max_utilization")?,
            },
            curve: match c.get("curve") {
                None | Some(Value::Null) => None,
                Some(pts) => {
                    let raw = pts.as_array().ok_or("field 'curve' is not an array")?;
                    let mut points = Vec::with_capacity(raw.len());
                    for p in raw {
                        let pair = p
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or("curve entry is not a [minute, cores] pair")?;
                        let num = |slot: &Value| {
                            slot.as_f64()
                                .ok_or("curve entry is not a [minute, cores] pair".to_string())
                        };
                        points.push((num(&pair[0])?, num(&pair[1])?));
                    }
                    Some(DemandCurve::new(points).map_err(|e| format!("curve: {e}"))?)
                }
            },
        };
        let jobs = required(v, "jobs")?
            .as_array()
            .ok_or("field 'jobs' is not an array")?
            .iter()
            .map(|j| {
                let k = required(j, "kind")?;
                let kind = match get_str(k, "type")? {
                    "batch" => JobKind::Batch {
                        work_core_secs: get_f64(k, "work_core_secs")?,
                    },
                    "latency-critical" => JobKind::LatencyCritical {
                        offered_rps: get_f64(k, "offered_rps")?,
                        lifetime: SimDuration::from_micros(get_u64(k, "lifetime_us")?),
                    },
                    other => return Err(format!("unknown job kind '{other}'")),
                };
                let raw = required(j, "sensitivity")?
                    .as_array()
                    .ok_or("field 'sensitivity' is not an array")?;
                let mut sensitivity = [0.0; hcloud_interference::NUM_RESOURCES];
                if raw.len() != sensitivity.len() {
                    return Err(format!(
                        "sensitivity has {} entries, expected {}",
                        raw.len(),
                        sensitivity.len()
                    ));
                }
                for (slot, value) in sensitivity.iter_mut().zip(raw) {
                    *slot = value.as_f64().ok_or("sensitivity entry is not a number")?;
                }
                Ok(JobSpec {
                    id: JobId(get_u64(j, "id")?),
                    class: class_from(get_str(j, "class")?)?,
                    arrival: SimTime::from_micros(get_u64(j, "arrival_us")?),
                    kind,
                    cores: u32::try_from(get_u64(j, "cores")?)
                        .map_err(|_| "field 'cores' out of range".to_string())?,
                    sensitivity: ResourceVector::new(sensitivity),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tenancy = match v.get("tenancy") {
            None | Some(Value::Null) => None,
            Some(t) => Some(tenancy_from_json(t)?),
        };
        Ok(ScenarioFile {
            config,
            jobs,
            tenancy,
        })
    }
}

/// Materializes a loaded scenario file, attaching its tenancy section
/// when present.
fn scenario_from_file(file: ScenarioFile) -> Scenario {
    let scenario = Scenario::from_jobs(file.config, file.jobs);
    match file.tenancy {
        Some(plan) => scenario.with_tenancy(plan),
        None => scenario,
    }
}

/// A scenario loaded from disk: either an exported [`ScenarioFile`] or
/// a long-horizon DSL document (told apart by the `schema_version` key).
#[derive(Debug)]
struct LoadedScenario {
    scenario: Scenario,
    /// Spot section carried by a DSL document, mapped onto the run
    /// layer's policy. Exported files never carry one.
    spot: Option<SpotPolicy>,
    /// One-line description of what was loaded.
    summary: String,
}

/// Reads a scenario file, accepting both formats. DSL documents are
/// compiled and their job stream generated from `seed`; exported files
/// replay their recorded jobs verbatim.
fn load_scenario(path: &str, seed: u64) -> Result<LoadedScenario, String> {
    let body = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = hcloud_json::parse(&body).map_err(|e| format!("parsing {path}: {e}"))?;
    if v.get("schema_version").is_some() {
        let dsl = ScenarioDsl::from_json(&v).map_err(|e| format!("parsing {path}: {e}"))?;
        let spot = dsl.spot.map(|s| SpotPolicy {
            bid_multiplier: s.bid_multiplier,
            max_quality: s.max_quality,
        });
        let scenario = dsl.generate(&RngFactory::new(seed));
        let summary = format!(
            "DSL scenario '{}': {} family, {:.1} simulated days, {} jobs{}",
            dsl.name,
            dsl.family.kind_name(),
            dsl.family.duration().as_hours_f64() / 24.0,
            scenario.jobs().len(),
            if spot.is_some() {
                ", spot market on"
            } else {
                ", on-demand only"
            }
        );
        Ok(LoadedScenario {
            scenario,
            spot,
            summary,
        })
    } else {
        let file = scenario_json::from_json(&v).map_err(|e| format!("parsing {path}: {e}"))?;
        let summary = format!(
            "exported scenario: {} kind, {} jobs{}",
            file.config.kind.name(),
            file.jobs.len(),
            if file.tenancy.is_some() {
                ", with tenancy section"
            } else {
                ""
            }
        );
        Ok(LoadedScenario {
            scenario: scenario_from_file(file),
            spot: None,
            summary,
        })
    }
}

/// `validate`: checks a scenario file of either format and reports what
/// it contains. Malformed files surface the failing field; `main` maps
/// the error onto exit code 2.
pub fn validate_file(path: &str) -> Result<(), String> {
    let loaded = load_scenario(path, Common::default().seed)?;
    println!("ok: {}", loaded.summary);
    Ok(())
}

fn build_scenario(common: &Common) -> Scenario {
    let config = ScenarioConfig {
        duration: hcloud_sim::SimDuration::from_mins(common.minutes),
        load_scale: common.scale,
        ..ScenarioConfig::paper(common.kind)
    };
    Scenario::generate(config, &RngFactory::new(common.seed))
}

fn pricing_model(name: &str) -> PricingModel {
    match name {
        "gce" => PricingModel::gce(),
        "azure" => PricingModel::azure(),
        _ => PricingModel::aws(),
    }
}

fn summarize(label: &str, r: &RunResult, model: &PricingModel) {
    let rates = Rates::default();
    let cost = r.cost(&rates, model);
    println!("{label}:");
    println!(
        "  jobs {} | makespan {:.1} min | mean perf {:.1}% | mean degradation {:.2}x",
        r.outcomes.len(),
        r.makespan.as_mins_f64(),
        r.mean_normalized_perf() * 100.0,
        r.mean_degradation()
    );
    if let Some(b) = r.batch_performance_boxplot() {
        println!(
            "  batch completion: mean {:.1} min (p5 {:.1} / p95 {:.1})",
            b.mean, b.p5, b.p95
        );
    }
    if let Some(b) = r.lc_latency_boxplot() {
        println!(
            "  memcached p99:    mean {:.0} µs (p5 {:.0} / p95 {:.0})",
            b.mean, b.p5, b.p95
        );
    }
    if let Some(u) = r.mean_reserved_utilization() {
        println!(
            "  reserved: {} cores at {:.0}% mean utilization",
            r.reserved_cores,
            u * 100.0
        );
    }
    println!(
        "  on-demand: {} acquired ({} released immediately), {} queued jobs",
        r.counters.od_acquired, r.counters.od_released_immediately, r.counters.queued_jobs
    );
    if r.counters.spot_acquired > 0 {
        println!(
            "  spot: {} acquired, {} terminations",
            r.counters.spot_acquired, r.counters.spot_terminations
        );
    }
    println!(
        "  cost: {:.2}$ (reserved {:.2}$ + on-demand {:.2}$)",
        cost.total(),
        cost.reserved,
        cost.on_demand
    );
}

/// Executes a parsed command.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Compare(common) => compare(&common),
        Command::Run(common, options) => run_one(&common, &options),
        Command::Sweep(common, options) => sweep(&common, &options),
        Command::Export(common, out) => export(&common, &out),
        Command::Validate(file) => validate_file(&file),
        Command::Trace(options) => trace(&options),
        Command::Audit(options) => audit(&options),
        Command::Faults => {
            faults();
            Ok(())
        }
        Command::Dashboard => {
            if hcloud_bench::dashboard::write_dashboard(std::path::Path::new(".")) {
                Ok(())
            } else {
                Err("dashboard render failed (see warnings above)".into())
            }
        }
        Command::Tenants(common, options) => tenants(&common, &options),
        Command::Advise(common, options) => {
            let scenario = build_scenario(&common);
            println!(
                "advising for {} ({} jobs), {}-week deployment, {:.0}% floor\n",
                common.kind.name(),
                scenario.jobs().len(),
                options.weeks,
                options.perf_floor * 100.0
            );
            let rec = crate::advise::advise(&scenario, &options, common.seed);
            crate::advise::print(&rec, &options);
            Ok(())
        }
    }
}

/// Replays a flight-recorder JSONL file (written by the figure binaries
/// under `HCLOUD_TRACE=full`) as a human-readable timeline.
fn trace(options: &crate::args::TraceOptions) -> Result<(), String> {
    let text = fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read {}: {e}", options.file))?;
    let timeline = hcloud_telemetry::render_timeline(&text, options.limit)
        .map_err(|e| format!("{}: {e}", options.file))?;
    print!("{timeline}");
    Ok(())
}

/// Replays every flight-recorder JSONL trace in a directory through the
/// offline conservation auditor: instance lifecycle, queue conservation
/// and stream integrity (`hcloud-cli audit`).
fn audit(options: &crate::args::AuditOptions) -> Result<(), String> {
    let mut files: Vec<std::path::PathBuf> = fs::read_dir(&options.dir)
        .map_err(|e| format!("cannot read {}: {e}", options.dir))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no .jsonl traces under {} (record some with HCLOUD_TRACE=full)",
            options.dir
        ));
    }
    let mut failed = 0usize;
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        match hcloud_audit::replay_file(&text) {
            Ok(stats) => println!(
                "ok   {name}: {} events, {} spin-up(s) / {} release(s), {} queue enter(s) / {} exit(s), {} spot termination(s)",
                stats.events,
                stats.spin_ups,
                stats.releases,
                stats.queue_enters,
                stats.queue_exits,
                stats.spot_terminations,
            ),
            Err(e) => {
                println!("FAIL {name}: {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        return Err(format!(
            "{failed} of {} trace(s) failed the audit",
            files.len()
        ));
    }
    println!("{} trace(s) audited, all clean", files.len());
    Ok(())
}

/// Lists the built-in fault-injection plans (`HCLOUD_FAULTS` values)
/// with the fault classes each one enables.
fn faults() {
    println!("built-in fault plans (set HCLOUD_FAULTS=<name>):\n");
    for id in FaultPlanId::ALL {
        println!("  {:<16} {}", id.name(), id.description());
        let plan = id.plan();
        if plan.is_off() {
            continue;
        }
        if let Some(s) = plan.storms {
            println!(
                "    - preemption storms: ~every {:.0} min, {:.0} min long",
                s.mean_interval.as_secs_f64() / 60.0,
                s.duration.as_secs_f64() / 60.0
            );
        }
        if let Some(s) = plan.spin_up {
            println!(
                "    - spin-up faults: {:.0}% spikes (x{:.0}), {:.0}% timeouts ({:.0} s)",
                s.spike_prob * 100.0,
                s.spike_factor,
                s.timeout_prob * 100.0,
                s.timeout.as_secs_f64()
            );
        }
        if let Some(s) = plan.capacity {
            println!(
                "    - out-of-capacity errors: {:.0}% of acquisitions",
                s.error_prob * 100.0
            );
        }
        if let Some(s) = plan.degradation {
            println!(
                "    - stragglers: {:.0}% of instances degrade to {:.1}x slowdown",
                s.prob * 100.0,
                s.slowdown
            );
        }
        if let Some(s) = plan.monitor {
            println!(
                "    - monitor dropouts: ~every {:.0} min, {:.0} min long",
                s.mean_interval.as_secs_f64() / 60.0,
                s.duration.as_secs_f64() / 60.0
            );
        }
    }
    println!("\nplans are deterministic: every schedule derives from the master");
    println!("seed via its own RNG stream, so HCLOUD_FAULTS=off is byte-identical");
    println!("to earlier builds and faulted runs reproduce for any HCLOUD_JOBS.");
}

/// Jobs at or above this normalized performance kept their SLO (the
/// paper's "acceptable" band, shared with `ext_multi_tenant`).
const SLO_THRESHOLD: f64 = 0.7;

/// Sizes a shared tenant pool to the scenario's mean concurrent core
/// demand, never below the widest job.
fn tenant_pool_cores(scenario: &Scenario) -> u32 {
    let total: f64 = scenario
        .jobs()
        .iter()
        .map(|j| match j.kind {
            JobKind::Batch { work_core_secs } => work_core_secs,
            JobKind::LatencyCritical { lifetime, .. } => j.cores as f64 * lifetime.as_secs_f64(),
        })
        .sum();
    let window = scenario.config().duration.as_secs_f64().max(1.0);
    let avg = (total / window).ceil() as u32;
    let widest = scenario.jobs().iter().map(|j| j.cores).max().unwrap_or(1);
    avg.max(widest).max(8)
}

/// `tenants`: runs a multi-tenant scenario and renders the fair-share
/// report — per-tenant admissions, SLO attainment, waits and
/// starvation-relief activity. Scenario files with an embedded tenancy
/// section are honored; otherwise a Zipf-weighted population is
/// attached.
fn tenants(common: &Common, options: &TenantsOptions) -> Result<(), String> {
    let scenario = match &options.scenario_file {
        Some(path) => load_scenario(path, common.seed)?.scenario,
        None => build_scenario(common),
    };
    let factory = RngFactory::new(common.seed);
    let scenario = if scenario.tenancy().is_some() {
        scenario
    } else {
        let pool = tenant_pool_cores(&scenario);
        let mut plan = TenancyPlan::zipf(options.tenants, 1.1, pool, 0.5);
        let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
        plan.assign_jobs(&ids, &mut factory.stream("tenant-assign"));
        scenario.with_tenancy(plan)
    };
    let plan = scenario.tenancy().expect("tenancy attached").clone();
    plan.validate()?;

    let config = RunConfig::new(&options.strategy);
    let r = run_scenario(&scenario, &config, &RunCtx::new(&factory)).expect("no auditor attached");
    let rates = Rates::default();
    let cost = r.cost(&rates, &PricingModel::aws());
    let perfs = r.normalized_perf(None);
    let slo =
        perfs.iter().filter(|&&p| p >= SLO_THRESHOLD).count() as f64 / perfs.len().max(1) as f64;
    println!(
        "{} on {}: {} tenants over a {}-core pool, seed {}\n",
        options.strategy.clone(),
        scenario.kind().name(),
        plan.tenants.len(),
        plan.pool_cores,
        common.seed
    );
    println!(
        "  jobs {} | makespan {:.1} min | SLO (≥{:.0}%) {:.1}% | fairness {:.3} | cost {:.2}$",
        r.outcomes.len(),
        r.makespan.as_mins_f64(),
        SLO_THRESHOLD * 100.0,
        slo * 100.0,
        r.tenant_admission_fairness(),
        cost.total(),
    );
    println!(
        "  gate: {} deferred, {} drained, {} borrowed admissions, {} starvation preemptions\n",
        r.counters.tenant_deferred_jobs,
        r.counters.tenant_drained_jobs,
        r.counters.tenant_borrowed_admissions,
        r.counters.tenant_preemptions,
    );

    // Per-tenant SLO attainment, mapped through the plan's assignments.
    let mut kept_ran: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
    for o in &r.outcomes {
        if let Some(tid) = plan.tenant_of(o.id.0) {
            let e = kept_ran.entry(tid.0).or_default();
            e.1 += 1;
            if o.normalized_perf >= SLO_THRESHOLD {
                e.0 += 1;
            }
        }
    }
    let mut stats = r.tenant_stats.clone();
    stats.sort_by(|a, b| b.admitted.cmp(&a.admitted).then(a.id.cmp(&b.id)));
    println!(
        "{:>7} {:>8} {:>5} {:>5} {:>9} {:>9} {:>8} {:>7} {:>13} {:>8} {:>9}",
        "tenant",
        "weight",
        "guar",
        "cap",
        "admitted",
        "deferred",
        "SLO %",
        "wait s",
        "peak cores",
        "victims",
        "reclaims"
    );
    for s in stats.iter().take(16) {
        let (kept, ran) = kept_ran.get(&s.id).copied().unwrap_or((0, 0));
        let mean_wait = s.total_queue_wait_secs / (s.drained.max(1) as f64);
        println!(
            "{:>7} {:>8.4} {:>5} {:>5} {:>9} {:>9} {:>8.1} {:>7.0} {:>13} {:>8} {:>9}",
            s.id,
            s.weight,
            s.guaranteed_cores,
            s.cap_cores,
            s.admitted,
            s.deferred,
            100.0 * kept as f64 / ran.max(1) as f64,
            mean_wait,
            s.peak_running_cores,
            s.victims,
            s.reclaims,
        );
    }
    if stats.len() > 16 {
        println!("  … {} more tenant(s)", stats.len() - 16);
    }
    Ok(())
}

fn compare(common: &Common) -> Result<(), String> {
    let scenario = Arc::new(build_scenario(common));
    let rates = Rates::default();
    let model = PricingModel::aws();
    println!(
        "{} scenario, {} jobs, seed {}\n",
        common.kind.name(),
        scenario.jobs().len(),
        common.seed
    );
    println!(
        "{:<6} {:>8} {:>12} {:>14} {:>10} {:>10}",
        "strat", "perf %", "degradation", "lc p99 (µs)", "od acq", "cost $"
    );
    // All five strategies fan out across the engine's worker pool.
    let mut ctx = ExperimentCtx::from_env()?;
    ctx.master_seed = common.seed;
    let engine = Engine::new(ctx);
    let plan: ExperimentPlan = StrategyKind::ALL
        .iter()
        .map(|&s| RunSpec::on(Arc::clone(&scenario), s))
        .collect();
    let outcome = engine.run_plan(&plan);
    for (&strategy, r) in StrategyKind::ALL.iter().zip(&outcome.results) {
        let lc = r.lc_latency_boxplot().map(|b| b.mean).unwrap_or(f64::NAN);
        println!(
            "{:<6} {:>8.1} {:>11.2}x {:>14.0} {:>10} {:>10.2}",
            strategy.short_name(),
            r.mean_normalized_perf() * 100.0,
            r.mean_degradation(),
            lc,
            r.counters.od_acquired,
            r.cost(&rates, &model).total()
        );
    }
    Ok(())
}

fn run_one(common: &Common, options: &RunOptions) -> Result<(), String> {
    let (scenario, file_spot) = match &options.scenario_file {
        Some(path) => {
            let loaded = load_scenario(path, common.seed)?;
            println!("loaded {}", loaded.summary);
            (loaded.scenario, loaded.spot)
        }
        None => (build_scenario(common), None),
    };
    let mut config = RunConfig::new(&options.strategy)
        .with_policy(options.policy)
        .with_profiling(options.profiling)
        .with_record_decisions(options.explain);
    // An explicit --spot bid wins over the scenario file's spot section.
    if let Some(bid) = options.spot_bid {
        config = config.with_spot(SpotPolicy {
            bid_multiplier: bid,
            ..SpotPolicy::default()
        });
    } else if let Some(spot) = file_spot {
        config = config.with_spot(spot);
    }
    let model = pricing_model(&options.pricing);
    let factory = RngFactory::new(common.seed);
    let r = run_scenario(&scenario, &config, &RunCtx::new(&factory)).expect("no auditor attached");
    summarize(
        &format!("{} on {}", options.strategy.clone(), scenario.kind().name()),
        &r,
        &model,
    );
    if options.explain {
        use std::collections::BTreeMap;
        let mut by_reason: BTreeMap<String, usize> = BTreeMap::new();
        for d in &r.decisions {
            *by_reason.entry(d.reason.to_string()).or_default() += 1;
        }
        println!("  placement decisions:");
        for (reason, n) in &by_reason {
            println!("    {reason:<24} {n}");
        }
        println!("  first ten decisions:");
        for d in r.decisions.iter().take(10) {
            println!(
                "    {} @ {:.1}s  QT={:.2}  util={:.0}%  -> {}",
                d.job,
                d.at.as_secs_f64(),
                d.estimated_quality,
                d.reserved_utilization * 100.0,
                d.reason
            );
        }
    }
    if let Some(path) = &options.json_out {
        let rates = Rates::default();
        let cost = r.cost(&rates, &model);
        let body = ObjectBuilder::new()
            .set("strategy", options.strategy.short_name())
            .set("scenario", scenario.kind().name())
            .set("seed", common.seed as f64)
            .set("jobs", r.outcomes.len() as f64)
            .set("makespan_min", r.makespan.as_mins_f64())
            .set("mean_normalized_perf", r.mean_normalized_perf())
            .set("mean_degradation", r.mean_degradation())
            .set("reserved_cores", f64::from(r.reserved_cores))
            .set("reserved_utilization", r.mean_reserved_utilization())
            .set("od_acquired", r.counters.od_acquired as f64)
            .set("spot_acquired", r.counters.spot_acquired as f64)
            .set("spot_terminations", r.counters.spot_terminations as f64)
            .set("cost_reserved", cost.reserved)
            .set("cost_on_demand", cost.on_demand)
            .build();
        fs::write(path, body.to_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("(wrote {path})");
    }
    Ok(())
}

fn sweep(common: &Common, options: &SweepOptions) -> Result<(), String> {
    let factory = RngFactory::new(common.seed);
    println!(
        "sweeping {} for {} on {}\n",
        options.knob,
        options.strategy.clone(),
        common.kind.name()
    );
    println!(
        "{:>12} {:>8} {:>12} {:>10}",
        "value", "perf %", "degradation", "cost $"
    );
    let rates = Rates::default();
    let model = PricingModel::aws();
    let points: Vec<(String, RunConfig, Option<f64>)> = match options.knob.as_str() {
        "spinup" => [0.0, 15.0, 30.0, 60.0, 120.0]
            .iter()
            .map(|&s| {
                let c =
                    RunConfig::new(&options.strategy).with_spin_up(SpinUpModel::with_mean_secs(s));
                (format!("{s:.0}s"), c, None)
            })
            .collect(),
        "external" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&l| {
                let c = RunConfig::new(&options.strategy)
                    .with_external_load(ExternalLoadModel::with_mean(l));
                (format!("{:.0}%", l * 100.0), c, None)
            })
            .collect(),
        "retention" => [0.0, 1.0, 10.0, 100.0, 500.0]
            .iter()
            .map(|&m| {
                let c = RunConfig::new(&options.strategy).with_retention_mult(m);
                (format!("{m:.0}x"), c, None)
            })
            .collect(),
        "sensitive" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&f| {
                (
                    format!("{:.0}%", f * 100.0),
                    RunConfig::new(&options.strategy),
                    Some(f),
                )
            })
            .collect(),
        other => return Err(format!("unknown knob '{other}'")),
    };
    for (label, config, sensitive) in points {
        let scenario = match sensitive {
            Some(f) => {
                let mut sc = ScenarioConfig {
                    duration: hcloud_sim::SimDuration::from_mins(common.minutes),
                    load_scale: common.scale,
                    ..ScenarioConfig::paper(common.kind)
                };
                sc.sensitive_fraction = Some(f);
                Scenario::generate(sc, &factory)
            }
            None => build_scenario(common),
        };
        let r =
            run_scenario(&scenario, &config, &RunCtx::new(&factory)).expect("no auditor attached");
        println!(
            "{:>12} {:>8.1} {:>11.2}x {:>10.2}",
            label,
            r.mean_normalized_perf() * 100.0,
            r.mean_degradation(),
            r.cost(&rates, &model).total()
        );
    }
    Ok(())
}

fn export(common: &Common, out: &str) -> Result<(), String> {
    let scenario = build_scenario(common);
    let file = ScenarioFile {
        config: scenario.config().clone(),
        jobs: scenario.jobs().to_vec(),
        tenancy: scenario.tenancy().cloned(),
    };
    let body = scenario_json::to_json(&file).to_string();
    fs::write(out, &body).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} jobs ({} bytes) to {out}",
        file.jobs.len(),
        body.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_file_round_trips_exactly() {
        let config = ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.1, 10);
        let scenario = Scenario::generate(config, &RngFactory::new(7));
        let file = ScenarioFile {
            config: scenario.config().clone(),
            jobs: scenario.jobs().to_vec(),
            tenancy: None,
        };
        let body = scenario_json::to_json(&file).to_string();
        let back =
            scenario_json::from_json(&hcloud_json::parse(&body).expect("valid")).expect("decodes");
        assert_eq!(back.config, *scenario.config());
        assert_eq!(back.jobs, scenario.jobs());
        assert!(
            back.tenancy.is_none(),
            "no tenancy section round-trips to none"
        );
    }

    #[test]
    fn tenancy_section_round_trips_exactly() {
        let config = ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.1, 10);
        let scenario = Scenario::generate(config, &RngFactory::new(7));
        let mut plan = TenancyPlan::zipf(9, 1.1, 64, 0.5)
            .with_quantum(24.0)
            .with_starvation_secs(120.0);
        let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
        plan.assign_jobs(&ids, &mut RngFactory::new(7).stream("tenant-assign"));
        plan.tenants[3].state = QueueState::Closing;
        let file = ScenarioFile {
            config: scenario.config().clone(),
            jobs: scenario.jobs().to_vec(),
            tenancy: Some(plan.clone()),
        };
        let body = scenario_json::to_json(&file).to_string();
        let back =
            scenario_json::from_json(&hcloud_json::parse(&body).expect("valid")).expect("decodes");
        assert_eq!(back.tenancy, Some(plan));
    }

    #[test]
    fn malformed_tenancy_sections_name_the_problem() {
        let config = ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 5);
        let scenario = Scenario::generate(config, &RngFactory::new(7));
        let base = ScenarioFile {
            config: scenario.config().clone(),
            jobs: scenario.jobs().to_vec(),
            tenancy: None,
        };
        let body = scenario_json::to_json(&base).to_string();
        let inject = |section: &str| {
            let with =
                body.trim_end_matches('}').to_string() + &format!(",\"tenancy\":{section}}}");
            scenario_json::from_json(&hcloud_json::parse(&with).expect("valid"))
                .expect_err("malformed tenancy must be rejected")
        };
        let missing = inject("{}");
        assert!(missing.contains("pool_cores"), "{missing}");
        let bad_state = inject(
            "{\"pool_cores\":8,\"quantum\":16.0,\"starvation_secs\":60.0,\
             \"tenants\":[{\"id\":0,\"weight\":1.0,\"guaranteed_cores\":4,\
             \"cap_cores\":8,\"state\":\"ajar\"}],\"assignments\":[]}",
        );
        assert!(bad_state.contains("ajar"), "{bad_state}");
        let bad_weight = inject(
            "{\"pool_cores\":8,\"quantum\":16.0,\"starvation_secs\":60.0,\
             \"tenants\":[{\"id\":0,\"weight\":-1.0,\"guaranteed_cores\":4,\
             \"cap_cores\":8,\"state\":\"open\"}],\"assignments\":[]}",
        );
        assert!(bad_weight.contains("tenancy"), "{bad_weight}");
        let bad_pair = inject(
            "{\"pool_cores\":8,\"quantum\":16.0,\"starvation_secs\":60.0,\
             \"tenants\":[],\"assignments\":[[1]]}",
        );
        assert!(bad_pair.contains("pair"), "{bad_pair}");
    }

    #[test]
    fn malformed_scenario_files_name_the_field() {
        let err = match scenario_json::from_json(&hcloud_json::parse("{}").expect("valid")) {
            Err(e) => e,
            Ok(_) => panic!("empty object must not decode"),
        };
        assert!(err.contains("config"), "{err}");
    }

    /// Writes `body` to a temp file and returns its path. The file is
    /// cleaned up when the returned guard drops.
    struct TempDoc(std::path::PathBuf);
    impl TempDoc {
        fn new(stem: &str, body: &str) -> TempDoc {
            let path =
                std::env::temp_dir().join(format!("hcloud-cli-{stem}-{}", std::process::id()));
            fs::write(&path, body).expect("temp write");
            TempDoc(path)
        }
        fn path(&self) -> &str {
            self.0.to_str().expect("utf-8 path")
        }
    }
    impl Drop for TempDoc {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    #[test]
    fn load_scenario_accepts_both_formats() {
        // Exported format.
        let config = ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 5);
        let scenario = Scenario::generate(config, &RngFactory::new(7));
        let file = ScenarioFile {
            config: scenario.config().clone(),
            jobs: scenario.jobs().to_vec(),
            tenancy: None,
        };
        let doc = TempDoc::new("export", &scenario_json::to_json(&file).to_string());
        let loaded = load_scenario(doc.path(), 42).expect("exported file loads");
        assert!(loaded.spot.is_none());
        assert_eq!(loaded.scenario.jobs(), scenario.jobs());
        assert!(loaded.summary.contains("exported"), "{}", loaded.summary);

        // DSL format: detected by schema_version, spot section mapped
        // onto the run policy.
        let dsl = hcloud_workloads::dsl::example_flash_crowd();
        let doc = TempDoc::new("dsl", &dsl.render());
        let loaded = load_scenario(doc.path(), 42).expect("DSL file loads");
        let spot = loaded.spot.expect("flash-crowd example carries spot");
        assert_eq!(spot.bid_multiplier, dsl.spot.unwrap().bid_multiplier);
        assert_eq!(spot.max_quality, dsl.spot.unwrap().max_quality);
        assert!(loaded.summary.contains("flash-crowd"), "{}", loaded.summary);
        // Generation is seed-deterministic and matches a direct call.
        let direct = dsl.generate(&RngFactory::new(42));
        assert_eq!(loaded.scenario.jobs(), direct.jobs());
    }

    #[test]
    fn load_scenario_rejects_malformed_dsl_naming_the_field() {
        let body = hcloud_workloads::dsl::example_diurnal()
            .render()
            .replace("\"load_scale\"", "\"load_scale_typo\"");
        let doc = TempDoc::new("bad-dsl", &body);
        let err = load_scenario(doc.path(), 42).expect_err("typo'd field must fail");
        assert!(err.contains("load_scale"), "{err}");
        assert!(validate_file(doc.path()).is_err(), "validate surfaces it");
    }
}
