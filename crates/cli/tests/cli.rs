//! End-to-end tests driving the compiled `hcloud-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcloud-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn compare_lists_all_strategies() {
    let out = run_ok(&["compare", "--scale", "0.08", "--minutes", "12"]);
    for s in ["SR", "OdF", "OdM", "HF", "HM"] {
        assert!(out.contains(s), "missing {s} in:\n{out}");
    }
    assert!(out.contains("cost"));
}

#[test]
fn run_prints_summary_and_explain() {
    let out = run_ok(&[
        "run",
        "--strategy",
        "HM",
        "--scale",
        "0.08",
        "--minutes",
        "12",
        "--explain",
    ]);
    assert!(out.contains("HM on High Variability"));
    assert!(out.contains("placement decisions:"));
    assert!(out.contains("mean degradation"));
}

#[test]
fn export_then_run_round_trips() {
    let dir = std::env::temp_dir().join("hcloud_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("scenario.json");
    let path_str = path.to_str().expect("utf-8 path");
    let out = run_ok(&[
        "export",
        "--scenario",
        "low",
        "--scale",
        "0.08",
        "--minutes",
        "12",
        "--out",
        path_str,
    ]);
    assert!(out.contains("wrote"));
    let out = run_ok(&["run", "--scenario-file", path_str, "--strategy", "SR"]);
    assert!(out.contains("SR on Low Variability"), "{out}");
}

#[test]
fn json_summary_is_valid() {
    let dir = std::env::temp_dir().join("hcloud_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("summary.json");
    let path_str = path.to_str().expect("utf-8 path");
    run_ok(&[
        "run",
        "--strategy",
        "HF",
        "--scale",
        "0.08",
        "--minutes",
        "12",
        "--json",
        path_str,
    ]);
    let body = std::fs::read_to_string(&path).expect("json written");
    let v = hcloud_json::parse(&body).expect("valid json");
    assert_eq!(v.get("strategy").and_then(|s| s.as_str()), Some("HF"));
    assert!(
        v.get("mean_normalized_perf")
            .and_then(|p| p.as_f64())
            .expect("float")
            > 0.0
    );
}

#[test]
fn identical_seeds_reproduce_identical_output() {
    let args = [
        "compare",
        "--scale",
        "0.08",
        "--minutes",
        "12",
        "--seed",
        "9",
    ];
    assert_eq!(run_ok(&args), run_ok(&args));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn sweep_runs_every_knob() {
    for knob in ["spinup", "external", "retention", "sensitive"] {
        let out = run_ok(&[
            "sweep",
            "--knob",
            knob,
            "--scale",
            "0.06",
            "--minutes",
            "10",
        ]);
        assert!(out.contains("sweeping"), "{knob}: {out}");
    }
}

#[test]
fn advise_recommends_a_strategy() {
    let out = run_ok(&[
        "advise",
        "--scale",
        "0.08",
        "--minutes",
        "12",
        "--weeks",
        "4",
        "--perf-floor",
        "0.5",
    ]);
    assert!(out.contains("recommendation:"), "{out}");
    // A 4-week deployment should never pay for a 1-year reservation.
    assert!(!out.contains("recommendation: SR"), "{out}");
}
