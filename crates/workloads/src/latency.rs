//! The memcached tail-latency model.
//!
//! memcached "needs to satisfy tail latency guarantees, as opposed to
//! average performance" (Section 1, citing The Tail at Scale). The model
//! here is an M/G/k-style approximation collapsed to an effective
//! single-server queue:
//!
//! * interference inflates the mean service time multiplicatively
//!   (`S' = S × slowdown`);
//! * utilization is `ρ = λ·S′ / k` for `k` allocated cores;
//! * p99 sojourn time ≈ `S′ · ln(100) / (1 − ρ)`, the exponential-queue
//!   tail quantile, with ρ clamped just below 1 so saturated services
//!   report latencies in the tens of milliseconds — the magnitudes of the
//!   paper's high-variability violin plots (15–20 ms for OdM).
//!
//! The two knobs that matter for reproducing the paper are (a) p99 grows
//! slowly while ρ is moderate and (b) it explodes once interference or
//! under-allocation pushes ρ near 1.

/// The latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Mean request service time in microseconds on an uncontended core.
    pub base_service_us: f64,
    /// Target utilization the sizing heuristic provisions for.
    pub target_utilization: f64,
    /// Utilization clamp: effective ρ never exceeds this, bounding
    /// reported saturation latency.
    pub max_utilization: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_service_us: 50.0,
            target_utilization: 0.60,
            max_utilization: 0.99,
        }
    }
}

/// `ln(100)`: the p99 quantile factor of an exponential sojourn tail.
const P99_FACTOR: f64 = 4.605_170_185_988_091;

impl LatencyModel {
    /// Requests per second one uncontended core sustains at ρ = 1.
    pub fn per_core_capacity_rps(&self) -> f64 {
        1e6 / self.base_service_us
    }

    /// The offered load (rps) that puts `cores` cores at the target
    /// utilization — how the scenario generator derives a service's load
    /// from its core count.
    pub fn offered_rps_for(&self, cores: u32) -> f64 {
        self.per_core_capacity_rps() * self.target_utilization * cores as f64
    }

    /// Cores needed to serve `offered_rps` at the target utilization
    /// (minimum 1) — the Quasar-informed sizing decision.
    pub fn cores_for(&self, offered_rps: f64) -> u32 {
        assert!(offered_rps >= 0.0, "offered load must be non-negative");
        (offered_rps / (self.per_core_capacity_rps() * self.target_utilization)).ceil() as u32
    }

    /// The utilization of `cores` cores under `offered_rps` with service
    /// times inflated by `slowdown` (unclamped; may exceed 1).
    pub fn utilization(&self, offered_rps: f64, cores: u32, slowdown: f64) -> f64 {
        assert!(cores > 0, "latency service needs at least one core");
        debug_assert!(slowdown >= 1.0);
        offered_rps * self.base_service_us * slowdown / (1e6 * cores as f64)
    }

    /// p99 request latency in microseconds.
    pub fn p99_latency_us(&self, offered_rps: f64, cores: u32, slowdown: f64) -> f64 {
        let s_eff = self.base_service_us * slowdown;
        let rho = self
            .utilization(offered_rps, cores, slowdown)
            .min(self.max_utilization);
        s_eff * P99_FACTOR / (1.0 - rho)
    }

    /// p99 latency with no interference and ideal sizing — the isolation
    /// baseline performance is normalized against (Figures 6, 14b, 16).
    pub fn isolation_p99_us(&self, offered_rps: f64, cores: u32) -> f64 {
        self.p99_latency_us(offered_rps, cores, 1.0)
    }

    /// The saturation-level p99: what clients experience while the
    /// service is effectively unavailable (waiting for instance spin-up
    /// or queued for capacity). Spin-up overhead is how on-demand
    /// strategies lose latency QoS in the paper's variable scenarios.
    pub fn saturated_p99_us(&self) -> f64 {
        self.base_service_us * P99_FACTOR / (1.0 - self.max_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_round_trips() {
        let m = LatencyModel::default();
        for cores in 1..=16u32 {
            let rps = m.offered_rps_for(cores);
            assert_eq!(m.cores_for(rps), cores, "cores {cores}");
        }
    }

    #[test]
    fn isolation_p99_is_sub_millisecond() {
        let m = LatencyModel::default();
        let rps = m.offered_rps_for(2);
        let p99 = m.isolation_p99_us(rps, 2);
        assert!(
            (300.0..1500.0).contains(&p99),
            "isolation p99 {p99}us out of the paper's band"
        );
    }

    #[test]
    fn latency_monotone_in_load() {
        let m = LatencyModel::default();
        let mut last = 0.0;
        for step in 1..=20 {
            let rps = 1000.0 * step as f64;
            let p99 = m.p99_latency_us(rps, 2, 1.0);
            assert!(p99 > last);
            last = p99;
        }
    }

    #[test]
    fn latency_monotone_in_slowdown() {
        let m = LatencyModel::default();
        let rps = m.offered_rps_for(2);
        let a = m.p99_latency_us(rps, 2, 1.0);
        let b = m.p99_latency_us(rps, 2, 1.3);
        let c = m.p99_latency_us(rps, 2, 1.6);
        assert!(a < b && b < c);
    }

    #[test]
    fn more_cores_reduce_latency() {
        let m = LatencyModel::default();
        let rps = m.offered_rps_for(2);
        assert!(m.p99_latency_us(rps, 4, 1.0) < m.p99_latency_us(rps, 2, 1.0));
    }

    #[test]
    fn interference_near_saturation_explodes_to_paper_magnitudes() {
        let m = LatencyModel::default();
        let rps = m.offered_rps_for(2);
        // A 1.55x slowdown pushes rho from 0.6 to ~0.93.
        let p99 = m.p99_latency_us(rps, 2, 1.55);
        assert!(
            (3_000.0..40_000.0).contains(&p99),
            "near-saturation p99 {p99}us; paper reports 15-20ms blowups"
        );
    }

    #[test]
    fn saturation_is_bounded() {
        let m = LatencyModel::default();
        let p99 = m.p99_latency_us(1e9, 1, 4.0);
        assert!(p99.is_finite());
        assert!(p99 < 1e6, "bounded below one second, got {p99}us");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        LatencyModel::default().utilization(1000.0, 0, 1.0);
    }
}
