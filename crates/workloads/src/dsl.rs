//! # Long-horizon scenario DSL
//!
//! The paper's three scenarios are 2-hour windows; retention policy,
//! the adaptive soft limit, and reserved-vs-on-demand ratios only start
//! to interact over days. This module is a small **versioned JSON DSL**
//! for authoring such long-horizon scenarios: three generator families
//! (diurnal multi-week cycles, flash crowds, batch-arrival bursts) that
//! each compile to a [`DemandCurve`] plus a [`ScenarioConfig`], reusing
//! the existing deterministic job-stream generator wholesale.
//!
//! Design rules, mirroring the tenancy-section idiom in `hcloud-cli`'s
//! scenario export format:
//!
//! * every document carries `schema_version` (currently
//!   [`SCHEMA_VERSION`]) and parsing rejects other versions;
//! * durations serialize as **integer microseconds** and every other
//!   number as a plain JSON number — both round-trip byte-identically
//!   through `hcloud-json`'s shortest-representation writer, so
//!   `render → parse → render` is lossless;
//! * malformed documents fail with the offending **field named** (and
//!   for array entries, the index).
//!
//! The optional `spot` section is deliberately plain numbers rather than
//! a core-crate policy type: `hcloud-workloads` sits below `hcloud-core`
//! in the crate graph, so the CLI and bench layers map [`SpotSection`]
//! onto their `SpotPolicy` at the boundary.

use crate::scenario::{DemandCurve, ScenarioConfig, ScenarioKind};
use crate::Scenario;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::SimDuration;

/// Version tag every DSL document carries.
pub const SCHEMA_VERSION: u64 = 1;

/// Diurnal multi-week cycle: a smooth day/night swing repeated for
/// `days`, with weekends (days 5 and 6 of each week) damped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSpec {
    /// Number of simulated days (the arrival window).
    pub days: u32,
    /// Demand at the daily peak, in cores.
    pub peak_cores: f64,
    /// Trough demand as a fraction of the peak, in `(0, 1]`.
    pub trough_fraction: f64,
    /// Weekend scaling on the whole curve, in `(0, 1]`.
    pub weekend_fraction: f64,
    /// Hour of day `[0, 24)` at which demand peaks.
    pub peak_hour: f64,
}

/// One flash-crowd spike: a trapezoid of extra demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Minute (from scenario start) the ramp-up begins.
    pub start_min: f64,
    /// Ramp-up / ramp-down length in minutes (> 0).
    pub ramp_mins: f64,
    /// Minutes held at the peak.
    pub hold_mins: f64,
    /// Demand at the top of the spike, in cores (≥ base).
    pub peak_cores: f64,
}

/// Flash-crowd family: flat base load with trapezoidal spikes.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowdSpec {
    /// Arrival-window length in hours.
    pub hours: f64,
    /// Base demand between spikes, in cores.
    pub base_cores: f64,
    /// The spikes, sorted and non-overlapping.
    pub spikes: Vec<Spike>,
}

/// Batch-arrival bursts: flat base with a periodic rectangular burst
/// (e.g. nightly report jobs submitted together).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchBurstSpec {
    /// Arrival-window length in hours.
    pub hours: f64,
    /// Base demand between bursts, in cores.
    pub base_cores: f64,
    /// Minutes between burst starts.
    pub period_mins: f64,
    /// Burst width in minutes (≥ 2, < period).
    pub width_mins: f64,
    /// Demand during a burst, in cores.
    pub burst_cores: f64,
}

/// The three long-horizon generator families.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilySpec {
    /// Multi-week day/night cycle.
    Diurnal(DiurnalSpec),
    /// Base load with sudden spikes.
    FlashCrowd(FlashCrowdSpec),
    /// Periodic batch-submission bursts.
    BatchBurst(BatchBurstSpec),
}

/// Optional spot-market section: plain numbers the run layers map onto
/// their `SpotPolicy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotSection {
    /// Bid as a multiple of the on-demand rate, in `(0, 1]`.
    pub bid_multiplier: f64,
    /// Jobs whose required estimation quality exceeds this stay
    /// on-demand; in `(0, 1]`.
    pub max_quality: f64,
}

/// A parsed long-horizon scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDsl {
    /// Human-readable scenario name (also labels run artifacts).
    pub name: String,
    /// Which paper scenario supplies the batch/latency-critical job-mix
    /// ratios (the demand *curve* comes from `family`).
    pub mix: ScenarioKind,
    /// The demand-shape family.
    pub family: FamilySpec,
    /// Mean job inter-arrival time. Long-horizon scenarios use tens of
    /// seconds so a two-week run stays in the tens of thousands of jobs.
    pub mean_interarrival: SimDuration,
    /// Uniform scale on the family's curve (1.0 = authored scale).
    pub load_scale: f64,
    /// Optional override of the interference-sensitive job fraction.
    pub sensitive_fraction: Option<f64>,
    /// Optional spot-market section; `None` runs fully on-demand and
    /// stays byte-identical to a no-spot run.
    pub spot: Option<SpotSection>,
}

// ---------------------------------------------------------------------
// Family → curve compilation

impl FamilySpec {
    /// Stable name used as the JSON `kind` tag.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FamilySpec::Diurnal(_) => "diurnal",
            FamilySpec::FlashCrowd(_) => "flash-crowd",
            FamilySpec::BatchBurst(_) => "batch-burst",
        }
    }

    /// The arrival-window length this family spans.
    pub fn duration(&self) -> SimDuration {
        match self {
            FamilySpec::Diurnal(d) => SimDuration::from_hours(24 * d.days as u64),
            FamilySpec::FlashCrowd(f) => mins_duration(f.hours * 60.0),
            FamilySpec::BatchBurst(b) => mins_duration(b.hours * 60.0),
        }
    }

    /// Validates ranges; errors name the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FamilySpec::Diurnal(d) => {
                if d.days == 0 || d.days > 56 {
                    return Err(format!("field 'days' must be in 1..=56, got {}", d.days));
                }
                check_pos_finite("peak_cores", d.peak_cores)?;
                check_fraction("trough_fraction", d.trough_fraction)?;
                check_fraction("weekend_fraction", d.weekend_fraction)?;
                if !d.peak_hour.is_finite() || !(0.0..24.0).contains(&d.peak_hour) {
                    return Err(format!(
                        "field 'peak_hour' must be in [0, 24), got {}",
                        d.peak_hour
                    ));
                }
                Ok(())
            }
            FamilySpec::FlashCrowd(f) => {
                check_pos_finite("hours", f.hours)?;
                check_pos_finite("base_cores", f.base_cores)?;
                let end_min = f.hours * 60.0;
                let mut prev_end = 0.0f64;
                for (i, s) in f.spikes.iter().enumerate() {
                    let ctx = |field: &str| format!("spike {i} field '{field}'");
                    if !s.start_min.is_finite() || s.start_min < 0.0 {
                        return Err(format!(
                            "{} must be ≥ 0, got {}",
                            ctx("start_min"),
                            s.start_min
                        ));
                    }
                    if !s.ramp_mins.is_finite() || s.ramp_mins <= 0.0 {
                        return Err(format!(
                            "{} must be > 0, got {}",
                            ctx("ramp_mins"),
                            s.ramp_mins
                        ));
                    }
                    if !s.hold_mins.is_finite() || s.hold_mins < 0.0 {
                        return Err(format!(
                            "{} must be ≥ 0, got {}",
                            ctx("hold_mins"),
                            s.hold_mins
                        ));
                    }
                    if !s.peak_cores.is_finite() || s.peak_cores < f.base_cores {
                        return Err(format!(
                            "{} must be ≥ base_cores ({}), got {}",
                            ctx("peak_cores"),
                            f.base_cores,
                            s.peak_cores
                        ));
                    }
                    if s.start_min < prev_end {
                        return Err(format!(
                            "spike {i} field 'start_min' ({}) overlaps the previous spike \
                             (ends at minute {prev_end})",
                            s.start_min
                        ));
                    }
                    prev_end = s.start_min + 2.0 * s.ramp_mins + s.hold_mins;
                    if prev_end > end_min {
                        return Err(format!(
                            "spike {i} extends to minute {prev_end}, past the scenario \
                             end (field 'hours' = {})",
                            f.hours
                        ));
                    }
                }
                Ok(())
            }
            FamilySpec::BatchBurst(b) => {
                check_pos_finite("hours", b.hours)?;
                check_pos_finite("base_cores", b.base_cores)?;
                check_pos_finite("period_mins", b.period_mins)?;
                check_pos_finite("burst_cores", b.burst_cores)?;
                if !b.width_mins.is_finite() || b.width_mins < 2.0 {
                    return Err(format!(
                        "field 'width_mins' must be ≥ 2, got {}",
                        b.width_mins
                    ));
                }
                if b.period_mins <= b.width_mins {
                    return Err(format!(
                        "field 'period_mins' ({}) must exceed width_mins ({})",
                        b.period_mins, b.width_mins
                    ));
                }
                Ok(())
            }
        }
    }

    /// Compiles the family to a piecewise-linear [`DemandCurve`] in real
    /// scenario minutes. Call [`FamilySpec::validate`] first; this
    /// panics only on specs that validation rejects.
    pub fn curve(&self) -> DemandCurve {
        let points = match self {
            FamilySpec::Diurnal(d) => {
                // Hourly knots of a raised-cosine day/night swing; one
                // extra knot closes the final day.
                let trough = d.peak_cores * d.trough_fraction;
                let mid = (d.peak_cores + trough) / 2.0;
                let amp = (d.peak_cores - trough) / 2.0;
                let hours = d.days as usize * 24;
                (0..=hours)
                    .map(|h| {
                        let day = h / 24;
                        let weekend = matches!(day % 7, 5 | 6);
                        let phase = (h as f64 - d.peak_hour) * std::f64::consts::TAU / 24.0;
                        let mut cores = mid + amp * phase.cos();
                        if weekend {
                            cores *= d.weekend_fraction;
                        }
                        (h as f64 * 60.0, cores)
                    })
                    .collect()
            }
            FamilySpec::FlashCrowd(f) => {
                let end = f.hours * 60.0;
                let mut pts = vec![(0.0, f.base_cores)];
                for s in &f.spikes {
                    let up = s.start_min + s.ramp_mins;
                    let down = up + s.hold_mins;
                    let done = down + s.ramp_mins;
                    // Skip knots coinciding with the previous one (spike
                    // starting at minute 0 rides on the base knot).
                    if s.start_min > pts.last().expect("non-empty").0 {
                        pts.push((s.start_min, f.base_cores));
                    }
                    pts.push((up, s.peak_cores));
                    if s.hold_mins > 0.0 {
                        pts.push((down, s.peak_cores));
                    }
                    pts.push((done, f.base_cores));
                }
                if end > pts.last().expect("non-empty").0 {
                    pts.push((end, f.base_cores));
                }
                pts
            }
            FamilySpec::BatchBurst(b) => {
                // Each burst is a rectangle with one-minute shoulders so
                // the knots stay strictly increasing.
                let end = b.hours * 60.0;
                let mut pts = vec![(0.0, b.base_cores)];
                let mut start = b.period_mins;
                while start + b.width_mins < end {
                    pts.push((start, b.base_cores));
                    pts.push((start + 1.0, b.burst_cores));
                    pts.push((start + b.width_mins - 1.0, b.burst_cores));
                    pts.push((start + b.width_mins, b.base_cores));
                    start += b.period_mins;
                }
                if end > pts.last().expect("non-empty").0 {
                    pts.push((end, b.base_cores));
                }
                pts
            }
        };
        DemandCurve::new(points).expect("validated family compiles to a well-formed curve")
    }
}

fn mins_duration(mins: f64) -> SimDuration {
    SimDuration::from_secs((mins * 60.0).round().max(0.0) as u64)
}

fn check_pos_finite(field: &str, v: f64) -> Result<(), String> {
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "field '{field}' must be a positive number, got {v}"
        ));
    }
    Ok(())
}

fn check_fraction(field: &str, v: f64) -> Result<(), String> {
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(format!("field '{field}' must be in (0, 1], got {v}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// ScenarioDsl — validation and compilation

impl ScenarioDsl {
    /// Range-checks the whole document; errors name the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("field 'name' must not be empty".to_string());
        }
        self.family.validate()?;
        if self.mean_interarrival.as_micros() == 0 {
            return Err("field 'mean_interarrival_us' must be positive".to_string());
        }
        check_pos_finite("load_scale", self.load_scale)?;
        if let Some(f) = self.sensitive_fraction {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(format!(
                    "field 'sensitive_fraction' must be in [0, 1], got {f}"
                ));
            }
        }
        if let Some(spot) = &self.spot {
            check_fraction("spot.bid_multiplier", spot.bid_multiplier)?;
            check_fraction("spot.max_quality", spot.max_quality)?;
        }
        Ok(())
    }

    /// The [`ScenarioConfig`] this document compiles to: the family's
    /// curve and duration over the selected mix.
    pub fn to_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            duration: self.family.duration(),
            mean_interarrival: self.mean_interarrival,
            load_scale: self.load_scale,
            sensitive_fraction: self.sensitive_fraction,
            curve: Some(self.family.curve()),
            ..ScenarioConfig::paper(self.mix)
        }
    }

    /// Generates the deterministic job stream for this document.
    pub fn generate(&self, factory: &RngFactory) -> Scenario {
        Scenario::generate(self.to_config(), factory)
    }

    // -----------------------------------------------------------------
    // JSON codec

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> Value {
        let family = match &self.family {
            FamilySpec::Diurnal(d) => ObjectBuilder::new()
                .set("kind", self.family.kind_name())
                .set("days", d.days)
                .set("peak_cores", d.peak_cores)
                .set("trough_fraction", d.trough_fraction)
                .set("weekend_fraction", d.weekend_fraction)
                .set("peak_hour", d.peak_hour)
                .build(),
            FamilySpec::FlashCrowd(f) => ObjectBuilder::new()
                .set("kind", self.family.kind_name())
                .set("hours", f.hours)
                .set("base_cores", f.base_cores)
                .set(
                    "spikes",
                    Value::Array(
                        f.spikes
                            .iter()
                            .map(|s| {
                                ObjectBuilder::new()
                                    .set("start_min", s.start_min)
                                    .set("ramp_mins", s.ramp_mins)
                                    .set("hold_mins", s.hold_mins)
                                    .set("peak_cores", s.peak_cores)
                                    .build()
                            })
                            .collect(),
                    ),
                )
                .build(),
            FamilySpec::BatchBurst(b) => ObjectBuilder::new()
                .set("kind", self.family.kind_name())
                .set("hours", b.hours)
                .set("base_cores", b.base_cores)
                .set("period_mins", b.period_mins)
                .set("width_mins", b.width_mins)
                .set("burst_cores", b.burst_cores)
                .build(),
        };
        let mut doc = ObjectBuilder::new()
            .set("schema_version", SCHEMA_VERSION)
            .set("name", self.name.as_str())
            .set("mix", mix_name(self.mix))
            .set("mean_interarrival_us", self.mean_interarrival.as_micros())
            .set("load_scale", self.load_scale)
            .set("family", family);
        if let Some(f) = self.sensitive_fraction {
            doc = doc.set("sensitive_fraction", f);
        }
        if let Some(spot) = &self.spot {
            doc = doc.set(
                "spot",
                ObjectBuilder::new()
                    .set("bid_multiplier", spot.bid_multiplier)
                    .set("max_quality", spot.max_quality)
                    .build(),
            );
        }
        doc.build()
    }

    /// Pretty-printed document text, as `scenario export` writes it.
    pub fn render(&self) -> String {
        let mut s = self.to_json().to_pretty();
        s.push('\n');
        s
    }

    /// Parses a JSON value back into a document, naming any missing,
    /// mistyped, or out-of-range field. Rejects other schema versions.
    pub fn from_json(v: &Value) -> Result<ScenarioDsl, String> {
        let version = get_u64(v, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let name = get_str(v, "name")?.to_string();
        let mix = mix_from(get_str(v, "mix")?)?;
        let mean_interarrival = SimDuration::from_micros(get_u64(v, "mean_interarrival_us")?);
        let load_scale = get_f64(v, "load_scale")?;
        let sensitive_fraction = match v.get("sensitive_fraction") {
            None => None,
            Some(f) => Some(
                f.as_f64()
                    .ok_or("field 'sensitive_fraction' is not a number".to_string())?,
            ),
        };
        let family_v = required(v, "family")?;
        let family = match get_str(family_v, "kind")? {
            "diurnal" => FamilySpec::Diurnal(DiurnalSpec {
                days: get_u64(family_v, "days")? as u32,
                peak_cores: get_f64(family_v, "peak_cores")?,
                trough_fraction: get_f64(family_v, "trough_fraction")?,
                weekend_fraction: get_f64(family_v, "weekend_fraction")?,
                peak_hour: get_f64(family_v, "peak_hour")?,
            }),
            "flash-crowd" => {
                let spikes_v = required(family_v, "spikes")?
                    .as_array()
                    .ok_or("field 'spikes' is not an array".to_string())?;
                let mut spikes = Vec::with_capacity(spikes_v.len());
                for (i, s) in spikes_v.iter().enumerate() {
                    let at = |e: String| format!("spike {i}: {e}");
                    spikes.push(Spike {
                        start_min: get_f64(s, "start_min").map_err(at)?,
                        ramp_mins: get_f64(s, "ramp_mins").map_err(at)?,
                        hold_mins: get_f64(s, "hold_mins").map_err(at)?,
                        peak_cores: get_f64(s, "peak_cores").map_err(at)?,
                    });
                }
                FamilySpec::FlashCrowd(FlashCrowdSpec {
                    hours: get_f64(family_v, "hours")?,
                    base_cores: get_f64(family_v, "base_cores")?,
                    spikes,
                })
            }
            "batch-burst" => FamilySpec::BatchBurst(BatchBurstSpec {
                hours: get_f64(family_v, "hours")?,
                base_cores: get_f64(family_v, "base_cores")?,
                period_mins: get_f64(family_v, "period_mins")?,
                width_mins: get_f64(family_v, "width_mins")?,
                burst_cores: get_f64(family_v, "burst_cores")?,
            }),
            other => {
                return Err(format!(
                    "field 'kind' has unknown family {other:?} \
                     (expected diurnal, flash-crowd, or batch-burst)"
                ))
            }
        };
        let spot = match v.get("spot") {
            None => None,
            Some(s) => Some(SpotSection {
                bid_multiplier: get_f64(s, "bid_multiplier")?,
                max_quality: get_f64(s, "max_quality")?,
            }),
        };
        let dsl = ScenarioDsl {
            name,
            mix,
            family,
            mean_interarrival,
            load_scale,
            sensitive_fraction,
            spot,
        };
        dsl.validate()?;
        Ok(dsl)
    }

    /// Parses document text: JSON syntax first, then schema.
    pub fn parse(text: &str) -> Result<ScenarioDsl, String> {
        let v = hcloud_json::parse(text).map_err(|e| e.to_string())?;
        ScenarioDsl::from_json(&v)
    }
}

fn mix_name(kind: ScenarioKind) -> &'static str {
    match kind {
        ScenarioKind::Static => "static",
        ScenarioKind::LowVariability => "low",
        ScenarioKind::HighVariability => "high",
    }
}

fn mix_from(name: &str) -> Result<ScenarioKind, String> {
    match name {
        "static" => Ok(ScenarioKind::Static),
        "low" => Ok(ScenarioKind::LowVariability),
        "high" => Ok(ScenarioKind::HighVariability),
        other => Err(format!("field 'mix' has unknown scenario kind {other:?}")),
    }
}

fn required<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    required(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not a non-negative integer"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    required(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    required(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

// ---------------------------------------------------------------------
// Example documents — used by tests, the CLI, and `ext_long_horizon`.

/// Two-week diurnal cycle with damped weekends and spot enabled.
pub fn example_diurnal() -> ScenarioDsl {
    ScenarioDsl {
        name: "diurnal-2w".to_string(),
        mix: ScenarioKind::HighVariability,
        family: FamilySpec::Diurnal(DiurnalSpec {
            days: 14,
            peak_cores: 420.0,
            trough_fraction: 0.3,
            weekend_fraction: 0.6,
            peak_hour: 14.0,
        }),
        mean_interarrival: SimDuration::from_secs(45),
        load_scale: 1.0,
        sensitive_fraction: None,
        spot: Some(SpotSection {
            bid_multiplier: 0.6,
            max_quality: 0.8,
        }),
    }
}

/// Two-day flash-crowd scenario: three spikes over a modest base.
pub fn example_flash_crowd() -> ScenarioDsl {
    ScenarioDsl {
        name: "flash-crowd-48h".to_string(),
        mix: ScenarioKind::LowVariability,
        family: FamilySpec::FlashCrowd(FlashCrowdSpec {
            hours: 48.0,
            base_cores: 180.0,
            spikes: vec![
                Spike {
                    start_min: 300.0,
                    ramp_mins: 12.0,
                    hold_mins: 45.0,
                    peak_cores: 700.0,
                },
                Spike {
                    start_min: 1250.0,
                    ramp_mins: 8.0,
                    hold_mins: 20.0,
                    peak_cores: 900.0,
                },
                Spike {
                    start_min: 2100.0,
                    ramp_mins: 15.0,
                    hold_mins: 60.0,
                    peak_cores: 620.0,
                },
            ],
        }),
        mean_interarrival: SimDuration::from_secs(20),
        load_scale: 1.0,
        sensitive_fraction: Some(0.35),
        spot: Some(SpotSection {
            bid_multiplier: 0.55,
            max_quality: 0.8,
        }),
    }
}

/// Four-day batch-burst scenario: six-hourly submission waves.
pub fn example_batch_burst() -> ScenarioDsl {
    ScenarioDsl {
        name: "batch-burst-4d".to_string(),
        mix: ScenarioKind::Static,
        family: FamilySpec::BatchBurst(BatchBurstSpec {
            hours: 96.0,
            base_cores: 150.0,
            period_mins: 360.0,
            width_mins: 90.0,
            burst_cores: 520.0,
        }),
        mean_interarrival: SimDuration::from_secs(30),
        load_scale: 1.0,
        sensitive_fraction: None,
        spot: None,
    }
}

/// All three example documents, for sweep-style tests and benches.
pub fn examples() -> Vec<ScenarioDsl> {
    vec![
        example_diurnal(),
        example_flash_crowd(),
        example_batch_burst(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::SimTime;

    #[test]
    fn examples_validate_and_compile() {
        for ex in examples() {
            ex.validate().expect("example validates");
            let config = ex.to_config();
            assert_eq!(config.duration, ex.family.duration());
            assert!(config.curve.is_some());
            // The curve covers the full window.
            let c = ex.family.curve();
            let end_min = ex.family.duration().as_mins_f64();
            let last = c.points().last().unwrap().0;
            assert!(
                (last - end_min).abs() < 1.0,
                "{}: curve ends at {last}, window at {end_min}",
                ex.name
            );
        }
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_and_damps_weekends() {
        let ex = example_diurnal();
        let c = ex.family.curve();
        let at = |day: u64, hour: u64| {
            c.cores_at(SimTime::ZERO + SimDuration::from_hours(day * 24 + hour))
        };
        // Weekday peak vs trough.
        assert!(at(1, 14) > at(1, 2) * 2.0);
        // Weekend (day 5) is damped relative to the same weekday hour.
        assert!(at(5, 14) < at(4, 14));
        // Peak is near 420 cores.
        assert!((at(1, 14) - 420.0).abs() < 1.0);
    }

    #[test]
    fn flash_crowd_spikes_rise_and_fall() {
        let ex = example_flash_crowd();
        let c = ex.family.curve();
        let at_min = |m: u64| c.cores_at(SimTime::ZERO + SimDuration::from_mins(m));
        assert!((at_min(100) - 180.0).abs() < 1e-9, "base before spike");
        assert!((at_min(330) - 700.0).abs() < 1e-9, "first spike hold");
        assert!((at_min(500) - 180.0).abs() < 1e-9, "base after spike");
    }

    #[test]
    fn batch_bursts_repeat_on_period() {
        let ex = example_batch_burst();
        let c = ex.family.curve();
        let at_min = |m: u64| c.cores_at(SimTime::ZERO + SimDuration::from_mins(m));
        for k in 1..10u64 {
            let mid = k * 360 + 45;
            assert!((at_min(mid) - 520.0).abs() < 1e-9, "burst {k} mid");
            assert!(
                (at_min(mid + 120) - 150.0).abs() < 1e-9,
                "gap after burst {k}"
            );
        }
    }

    #[test]
    fn round_trip_is_byte_identical_for_every_family() {
        for ex in examples() {
            let text = ex.render();
            let parsed = ScenarioDsl::parse(&text).expect("round-trip parses");
            assert_eq!(parsed, ex, "{}: structural equality", ex.name);
            assert_eq!(parsed.render(), text, "{}: byte-identical", ex.name);
        }
    }

    #[test]
    fn generated_job_streams_are_deterministic() {
        let ex = example_flash_crowd();
        let a = ex.generate(&RngFactory::new(42));
        let b = ex.generate(&RngFactory::new(42));
        assert_eq!(a.jobs().len(), b.jobs().len());
        assert!(!a.jobs().is_empty());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.cores, y.cores);
        }
    }

    #[test]
    fn corrupted_fields_fail_naming_the_field() {
        let good = example_diurnal().render();

        let cases = [
            (
                "\"schema_version\": 1",
                "\"schema_version\": 99",
                "schema_version",
            ),
            ("\"peak_hour\": 14", "\"peak_hour\": 31", "peak_hour"),
            (
                "\"trough_fraction\": 0.3",
                "\"trough_fraction\": -2",
                "trough_fraction",
            ),
            ("\"mix\": \"high\"", "\"mix\": \"volatile\"", "mix"),
            (
                "\"bid_multiplier\": 0.6",
                "\"bid_multiplier\": \"cheap\"",
                "bid_multiplier",
            ),
        ];
        for (from, to, field) in cases {
            let bad = good.replace(from, to);
            assert_ne!(bad, good, "substitution for {field} applied");
            let err = ScenarioDsl::parse(&bad).expect_err("corruption rejected");
            assert!(
                err.contains(field),
                "error for {field} names the field: {err}"
            );
        }

        // A missing required field is named too.
        let missing = good.replace("  \"load_scale\": 1,\n", "");
        let err = ScenarioDsl::parse(&missing).expect_err("missing field rejected");
        assert!(err.contains("load_scale"), "names the missing field: {err}");
    }

    #[test]
    fn unknown_family_kind_is_rejected() {
        let bad = example_batch_burst()
            .render()
            .replace("batch-burst", "lunar");
        let err = ScenarioDsl::parse(&bad).expect_err("unknown family rejected");
        assert!(err.contains("lunar"), "{err}");
    }

    #[test]
    fn overlapping_spikes_name_the_spike_index() {
        let mut ex = example_flash_crowd();
        if let FamilySpec::FlashCrowd(f) = &mut ex.family {
            f.spikes[1].start_min = f.spikes[0].start_min + 1.0;
        }
        let err = ex.validate().expect_err("overlap rejected");
        assert!(err.contains("spike 1"), "{err}");
    }
}
