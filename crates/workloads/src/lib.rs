//! # hcloud-workloads — workload and scenario substrate
//!
//! The paper's scenarios mix **batch analytics** (Hadoop jobs running
//! Mahout recommender systems, support vector machines and matrix
//! factorization, plus Spark jobs) with a **latency-critical service**
//! (memcached driven at varying loads). This crate models both and
//! generates the three workload scenarios of Figure 3 / Table 2:
//!
//! * [`job`] — job specifications: application classes, ground-truth
//!   interference sensitivity vectors, resource needs, and the
//!   batch-completion-time model;
//! * [`latency`] — the memcached tail-latency model: an M/G/k-style
//!   approximation whose service times are inflated by interference, so
//!   p99 latency explodes near saturation exactly like the paper's
//!   violin plots;
//! * [`scenario`] — the Static, Low-Variability and High-Variability
//!   scenarios: target required-core curves and a deterministic job-stream
//!   generator that tracks them.
//!
//! Jobs are generated **independently of any provisioning strategy**, so
//! every strategy in a comparison faces the identical workload — the
//! property the paper's repeatable-interference methodology provides.

pub mod dsl;
pub mod job;
pub mod latency;
pub mod scenario;

pub use dsl::{BatchBurstSpec, DiurnalSpec, FamilySpec, FlashCrowdSpec, ScenarioDsl, SpotSection};
pub use job::{AppClass, JobId, JobKind, JobSpec};
pub use latency::LatencyModel;
pub use scenario::{DemandCurve, Scenario, ScenarioConfig, ScenarioKind};
