//! Job specifications and application classes.
//!
//! Every job carries *ground truth*: its true resource needs and its true
//! interference-sensitivity vector. The simulator uses the ground truth to
//! compute performance; the Quasar substrate only ever sees noisy
//! profiling signals derived from it (that gap is what separates the
//! "with profiling info" and "without profiling info" bars of Figures 4
//! and 10).

use std::fmt;

use hcloud_interference::{resource_quality, Resource, ResourceVector};
use hcloud_sim::dist::{Normal, Sample};
use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

/// Unique job identifier within a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// The application classes appearing in the paper's scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Hadoop/Mahout recommender system (the Figure 1 workload).
    HadoopRecommender,
    /// Hadoop/Mahout support vector machine training.
    HadoopSvm,
    /// Hadoop/Mahout matrix factorization.
    HadoopMatrixFactorization,
    /// Spark batch analytics.
    SparkBatch,
    /// Short real-time Spark analytics (100 ms – 10 s per stage; latency
    /// sensitive, cannot tolerate long scheduling delays — Section 3.2).
    SparkRealtime,
    /// memcached, the latency-critical service (the Figure 2 workload).
    Memcached,
}

impl AppClass {
    /// All classes.
    pub const ALL: [AppClass; 6] = [
        AppClass::HadoopRecommender,
        AppClass::HadoopSvm,
        AppClass::HadoopMatrixFactorization,
        AppClass::SparkBatch,
        AppClass::SparkRealtime,
        AppClass::Memcached,
    ];

    /// Whether the class is batch (vs latency-critical).
    ///
    /// Real-time Spark counts as latency-critical in the paper's
    /// sensitive-application sweep (Figure 16) but its performance metric
    /// is still completion time, so [`AppClass::is_latency_metric`] differs.
    pub fn is_batch(self) -> bool {
        !matches!(self, AppClass::Memcached)
    }

    /// Whether the class reports request latency (vs completion time).
    pub fn is_latency_metric(self) -> bool {
        matches!(self, AppClass::Memcached)
    }

    /// Whether the class is sensitive to interference/unpredictability
    /// (the "sensitive applications" of Figure 16: memcached and
    /// real-time Spark).
    pub fn is_sensitive(self) -> bool {
        matches!(self, AppClass::Memcached | AppClass::SparkRealtime)
    }

    /// The class's characteristic mean sensitivity vector.
    ///
    /// These templates put each class's pressure where the real
    /// application puts it: Hadoop on disk/memory bandwidth, Spark on
    /// memory, memcached on network latency, LLC and CPU.
    pub fn sensitivity_template(self) -> ResourceVector {
        use Resource::*;
        match self {
            AppClass::HadoopRecommender => ResourceVector::ZERO
                .with(Cpu, 0.45)
                .with(CacheL1, 0.15)
                .with(CacheL2, 0.20)
                .with(CacheLlc, 0.30)
                .with(MemBandwidth, 0.60)
                .with(MemCapacity, 0.40)
                .with(DiskBandwidth, 0.75)
                .with(DiskCapacity, 0.35)
                .with(NetBandwidth, 0.30)
                .with(NetLatency, 0.10),
            AppClass::HadoopSvm => ResourceVector::ZERO
                .with(Cpu, 0.60)
                .with(CacheL1, 0.25)
                .with(CacheL2, 0.30)
                .with(CacheLlc, 0.40)
                .with(MemBandwidth, 0.65)
                .with(MemCapacity, 0.35)
                .with(DiskBandwidth, 0.55)
                .with(DiskCapacity, 0.20)
                .with(NetBandwidth, 0.25)
                .with(NetLatency, 0.10),
            AppClass::HadoopMatrixFactorization => ResourceVector::ZERO
                .with(Cpu, 0.55)
                .with(CacheL1, 0.20)
                .with(CacheL2, 0.30)
                .with(CacheLlc, 0.45)
                .with(MemBandwidth, 0.75)
                .with(MemCapacity, 0.50)
                .with(DiskBandwidth, 0.50)
                .with(DiskCapacity, 0.20)
                .with(NetBandwidth, 0.20)
                .with(NetLatency, 0.10),
            AppClass::SparkBatch => ResourceVector::ZERO
                .with(Cpu, 0.50)
                .with(CacheL1, 0.20)
                .with(CacheL2, 0.30)
                .with(CacheLlc, 0.50)
                .with(MemBandwidth, 0.80)
                .with(MemCapacity, 0.70)
                .with(DiskBandwidth, 0.25)
                .with(DiskCapacity, 0.15)
                .with(NetBandwidth, 0.35)
                .with(NetLatency, 0.15),
            AppClass::SparkRealtime => ResourceVector::ZERO
                .with(Cpu, 0.70)
                .with(CacheL1, 0.35)
                .with(CacheL2, 0.40)
                .with(CacheLlc, 0.60)
                .with(MemBandwidth, 0.55)
                .with(MemCapacity, 0.55)
                .with(DiskBandwidth, 0.15)
                .with(DiskCapacity, 0.10)
                .with(NetBandwidth, 0.45)
                .with(NetLatency, 0.70),
            AppClass::Memcached => ResourceVector::ZERO
                .with(Cpu, 0.70)
                .with(CacheL1, 0.45)
                .with(CacheL2, 0.50)
                .with(CacheLlc, 0.80)
                .with(MemBandwidth, 0.55)
                .with(MemCapacity, 0.60)
                .with(DiskBandwidth, 0.05)
                .with(DiskCapacity, 0.05)
                .with(NetBandwidth, 0.60)
                .with(NetLatency, 0.90),
        }
    }

    /// Samples a per-job sensitivity vector: the class template plus
    /// per-job noise, clamped into `[0, 1]`.
    pub fn sample_sensitivity<R: Rng + ?Sized>(self, rng: &mut R) -> ResourceVector {
        let noise = Normal::new(0.0, 0.06);
        let t = self.sensitivity_template();
        ResourceVector::from_fn(|i| (t.as_array()[i] + noise.sample(rng)).clamp(0.0, 1.0))
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppClass::HadoopRecommender => "hadoop-recommender",
            AppClass::HadoopSvm => "hadoop-svm",
            AppClass::HadoopMatrixFactorization => "hadoop-matfac",
            AppClass::SparkBatch => "spark-batch",
            AppClass::SparkRealtime => "spark-realtime",
            AppClass::Memcached => "memcached",
        };
        f.write_str(name)
    }
}

/// What kind of work a job performs, and the parameters of its
/// performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// Throughput-bound batch job: `work` core-seconds to grind through.
    /// Completion time = `work / cores × slowdown` (+ scheduling delays).
    Batch {
        /// Total work in core-seconds.
        work_core_secs: f64,
    },
    /// Latency-critical service: serves `offered_rps` requests/second for
    /// a fixed lifetime; the metric is p99 request latency.
    LatencyCritical {
        /// Offered load in requests per second.
        offered_rps: f64,
        /// Service lifetime.
        lifetime: SimDuration,
    },
}

/// A fully specified job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique id within the scenario.
    pub id: JobId,
    /// Application class.
    pub class: AppClass,
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// The work model.
    pub kind: JobKind,
    /// Ground truth: cores needed to meet QoS (batch: target parallelism;
    /// LC: cores for ~70% utilization at offered load).
    pub cores: u32,
    /// Ground truth: interference sensitivity vector.
    pub sensitivity: ResourceVector,
}

impl JobSpec {
    /// The job's true resource-quality requirement `Q ∈ [0, 1]`
    /// (Section 3.3 encoding of the ground-truth sensitivity).
    pub fn quality_requirement(&self) -> f64 {
        resource_quality(&self.sensitivity)
    }

    /// Whether the job reports latency (vs completion time).
    pub fn is_latency_critical(&self) -> bool {
        matches!(self.kind, JobKind::LatencyCritical { .. })
    }

    /// The job's ideal duration: batch work at full parallelism with no
    /// interference, or the LC lifetime.
    pub fn ideal_duration(&self) -> SimDuration {
        match self.kind {
            JobKind::Batch { work_core_secs } => {
                SimDuration::from_secs_f64(work_core_secs / self.cores as f64)
            }
            JobKind::LatencyCritical { lifetime, .. } => lifetime,
        }
    }

    /// Batch completion time when run on `cores` cores with a given mean
    /// `slowdown` (≥ 1). Parallelism beyond the job's ideal `cores` does
    /// not help (data-parallel frameworks stop scaling at their split
    /// count).
    ///
    /// # Panics
    /// Panics if called on a latency-critical job or with zero cores.
    pub fn batch_completion(&self, cores: u32, slowdown: f64) -> SimDuration {
        let JobKind::Batch { work_core_secs } = self.kind else {
            panic!("batch_completion on a latency-critical job");
        };
        assert!(cores > 0, "batch job needs at least one core");
        debug_assert!(slowdown >= 1.0);
        let effective = cores.min(self.cores) as f64;
        SimDuration::from_secs_f64(work_core_secs / effective * slowdown)
    }

    /// The size of the dataset this job reads, in GB — deterministic per
    /// job (class-typical size scaled by a per-job hash). Used by the
    /// data-locality extension (the paper's Section 5.5: "provisioning
    /// must also consider how to minimize data transfers and replication
    /// across the two clusters").
    pub fn dataset_gb(&self) -> f64 {
        let base = match self.class {
            AppClass::HadoopRecommender => 250.0,
            AppClass::HadoopSvm => 120.0,
            AppClass::HadoopMatrixFactorization => 150.0,
            AppClass::SparkBatch => 120.0,
            AppClass::SparkRealtime => 2.0,
            AppClass::Memcached => 30.0,
        };
        base * (0.5 + Self::unit_hash(self.id.0 ^ 0xA5A5_5A5A))
    }

    /// A uniform-in-[0,1) hash of `x`, used for deterministic per-job
    /// attributes that must be identical across strategies.
    fn unit_hash(x: u64) -> f64 {
        let mut h = x.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 32;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The cores a user would request *without* profiling information
    /// (Section 3.3: user reservations are error-prone and lead to both
    /// over- and under-provisioning — batch frameworks get default
    /// parameters that under-parallelize; memcached operators guess peak
    /// load, sometimes high and sometimes badly low).
    ///
    /// The error is deterministic per job (hashed from its id), so runs
    /// remain reproducible and comparable across strategies.
    pub fn user_sized_cores(&self) -> u32 {
        let u = Self::unit_hash(self.id.0);
        let factor = match self.class {
            // Default framework parameters under-parallelize: 0.4-1.1x.
            c if c.is_batch() => 0.4 + 0.7 * u,
            // Peak guesses: often 1.5-2.5x over, sometimes 0.5x under.
            _ => {
                if u < 0.30 {
                    0.5 + u
                } else {
                    1.5 + u
                }
            }
        };
        ((self.cores as f64 * factor).round() as u32).clamp(1, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::rng::SimRng;

    fn batch_job() -> JobSpec {
        JobSpec {
            id: JobId(1),
            class: AppClass::HadoopRecommender,
            arrival: SimTime::ZERO,
            kind: JobKind::Batch {
                work_core_secs: 1200.0,
            },
            cores: 4,
            sensitivity: AppClass::HadoopRecommender.sensitivity_template(),
        }
    }

    fn lc_job() -> JobSpec {
        JobSpec {
            id: JobId(2),
            class: AppClass::Memcached,
            arrival: SimTime::ZERO,
            kind: JobKind::LatencyCritical {
                offered_rps: 14_000.0,
                lifetime: SimDuration::from_mins(10),
            },
            cores: 2,
            sensitivity: AppClass::Memcached.sensitivity_template(),
        }
    }

    #[test]
    fn classes_partition_into_batch_and_lc() {
        let batch = AppClass::ALL.iter().filter(|c| c.is_batch()).count();
        assert_eq!(batch, 5);
        assert!(AppClass::Memcached.is_latency_metric());
        assert!(!AppClass::SparkRealtime.is_latency_metric());
    }

    #[test]
    fn sensitive_classes_are_memcached_and_realtime() {
        assert!(AppClass::Memcached.is_sensitive());
        assert!(AppClass::SparkRealtime.is_sensitive());
        assert!(!AppClass::HadoopSvm.is_sensitive());
    }

    #[test]
    fn memcached_demands_higher_quality_than_hadoop() {
        let q_mc = resource_quality(&AppClass::Memcached.sensitivity_template());
        let q_hd = resource_quality(&AppClass::HadoopRecommender.sensitivity_template());
        assert!(q_mc > 0.8, "memcached Q = {q_mc}");
        assert!(q_hd < 0.80, "hadoop Q = {q_hd}");
    }

    #[test]
    fn sampled_sensitivity_stays_in_unit_range_near_template() {
        let mut rng = SimRng::from_seed_u64(5);
        for class in AppClass::ALL {
            let s = class.sample_sensitivity(&mut rng);
            assert!(s.is_unit_range());
            assert!(s.distance(&class.sensitivity_template()) < 1.0);
        }
    }

    #[test]
    fn batch_completion_scales_with_cores_and_slowdown() {
        let j = batch_job();
        assert_eq!(j.batch_completion(4, 1.0), SimDuration::from_secs(300));
        assert_eq!(j.batch_completion(2, 1.0), SimDuration::from_secs(600));
        assert_eq!(j.batch_completion(4, 2.0), SimDuration::from_secs(600));
        // Extra cores beyond ideal parallelism do not help.
        assert_eq!(j.batch_completion(16, 1.0), SimDuration::from_secs(300));
    }

    #[test]
    fn ideal_duration_matches_kind() {
        assert_eq!(batch_job().ideal_duration(), SimDuration::from_secs(300));
        assert_eq!(lc_job().ideal_duration(), SimDuration::from_mins(10));
    }

    #[test]
    #[should_panic(expected = "latency-critical")]
    fn batch_completion_rejects_lc_jobs() {
        lc_job().batch_completion(2, 1.0);
    }

    #[test]
    fn user_sizing_is_suboptimal_but_deterministic() {
        let j = batch_job();
        assert_eq!(j.user_sized_cores(), j.user_sized_cores());
        // Across many jobs, batch is under-sized on average and
        // latency-critical over-sized on average.
        let mean_factor = |class: AppClass, ideal: u32| {
            let total: u32 = (0..500u64)
                .map(|id| {
                    JobSpec {
                        id: JobId(id),
                        class,
                        arrival: SimTime::ZERO,
                        kind: JobKind::Batch {
                            work_core_secs: 600.0,
                        },
                        cores: ideal,
                        sensitivity: class.sensitivity_template(),
                    }
                    .user_sized_cores()
                })
                .sum();
            total as f64 / 500.0 / ideal as f64
        };
        assert!(mean_factor(AppClass::HadoopRecommender, 8) < 0.95);
        assert!(mean_factor(AppClass::Memcached, 4) > 1.2);
    }

    #[test]
    fn user_sizing_stays_in_instance_range() {
        for id in 0..200u64 {
            let j = JobSpec {
                id: JobId(id),
                class: AppClass::Memcached,
                arrival: SimTime::ZERO,
                kind: JobKind::LatencyCritical {
                    offered_rps: 10_000.0,
                    lifetime: SimDuration::from_mins(5),
                },
                cores: 16,
                sensitivity: AppClass::Memcached.sensitivity_template(),
            };
            assert!((1..=16).contains(&j.user_sized_cores()));
        }
    }

    #[test]
    fn quality_requirement_uses_ground_truth() {
        let j = lc_job();
        assert!(j.quality_requirement() > 0.8);
        assert!(batch_job().quality_requirement() < 0.80);
    }
}
