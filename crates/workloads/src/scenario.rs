//! The three workload scenarios of Figure 3 / Table 2.
//!
//! | | Static | Low Var | High Var |
//! |---|---|---|---|
//! | max:min resources | 1.1× | 1.5× | 6.2× |
//! | batch:low-latency in jobs | 4.2× | 3.6× | 4.1× |
//! | batch:low-latency in cores | 1.4× | 1.4× | 1.5× |
//! | inter-arrival times | 1.0 s | 1.0 s | 1.0 s |
//! | ideal completion time | ~2.1 h | ~2.0 h | ~2.0 h |
//!
//! Each scenario defines an analytic **target required-cores curve**
//! (piecewise linear, plotted by the Figure 3 binary) and a deterministic
//! **job-stream generator** that tracks it: jobs arrive with exponential
//! 1-second inter-arrival times, and a feedback term stretches or shrinks
//! job durations so the ideal concurrent core demand follows the curve.
//! The generated stream is independent of any provisioning strategy.

use hcloud_sim::dist::{Exponential, LogNormal, Sample, Uniform};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::series::StepSeries;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_tenancy::TenancyPlan;
use rand::Rng;

use crate::job::{AppClass, JobId, JobKind, JobSpec};
use crate::latency::LatencyModel;

/// Which of the paper's three scenarios to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Minimal load variability; ~854 cores in steady state.
    Static,
    /// Mild long-term variability: 605 cores rising to 900 mid-scenario,
    /// mostly from increased latency-critical load.
    LowVariability,
    /// Large short-term load changes: 210–1226 cores, shorter jobs.
    HighVariability,
}

impl ScenarioKind {
    /// All three scenarios.
    pub const ALL: [ScenarioKind; 3] = [
        ScenarioKind::Static,
        ScenarioKind::LowVariability,
        ScenarioKind::HighVariability,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Static => "Static",
            ScenarioKind::LowVariability => "Low Variability",
            ScenarioKind::HighVariability => "High Variability",
        }
    }

    /// The piecewise-linear target curve `(minute, cores)`.
    fn curve_points(self) -> &'static [(f64, f64)] {
        match self {
            ScenarioKind::Static => &[
                (0.0, 830.0),
                (15.0, 870.0),
                (30.0, 845.0),
                (45.0, 880.0),
                (60.0, 850.0),
                (75.0, 885.0),
                (90.0, 840.0),
                (105.0, 875.0),
                (120.0, 845.0),
            ],
            ScenarioKind::LowVariability => &[
                (0.0, 605.0),
                (35.0, 615.0),
                (45.0, 760.0),
                (55.0, 900.0),
                (75.0, 890.0),
                (90.0, 650.0),
                (120.0, 605.0),
            ],
            ScenarioKind::HighVariability => &[
                (0.0, 280.0),
                (8.0, 198.0),
                (16.0, 300.0),
                (20.0, 560.0),
                (24.0, 570.0),
                (28.0, 330.0),
                (33.0, 760.0),
                (41.0, 1226.0),
                (49.0, 1120.0),
                (56.0, 700.0),
                (60.0, 320.0),
                (67.0, 250.0),
                (71.0, 620.0),
                (76.0, 640.0),
                (80.0, 280.0),
                (88.0, 470.0),
                (94.0, 490.0),
                (100.0, 210.0),
                (108.0, 330.0),
                (120.0, 260.0),
            ],
        }
    }

    /// Fraction of arriving jobs that are batch (Table 2 job ratios:
    /// 4.2×, 3.6×, 4.1×).
    pub fn batch_job_fraction(self) -> f64 {
        let ratio = match self {
            ScenarioKind::Static => 4.2,
            ScenarioKind::LowVariability => 3.6,
            ScenarioKind::HighVariability => 4.1,
        };
        ratio / (1.0 + ratio)
    }

    /// Fraction of required cores serving batch work (Table 2 core ratios:
    /// 1.4×, 1.4×, 1.5×).
    pub fn batch_core_fraction(self) -> f64 {
        let ratio = match self {
            ScenarioKind::Static | ScenarioKind::LowVariability => 1.4,
            ScenarioKind::HighVariability => 1.5,
        };
        ratio / (1.0 + ratio)
    }

    /// The target required cores at time `t` (linear interpolation of the
    /// scenario curve).
    pub fn target_cores(self, t: SimTime) -> f64 {
        let m = t.as_mins_f64();
        let pts = self.curve_points();
        if m <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (m0, c0) = w[0];
            let (m1, c1) = w[1];
            if m <= m1 {
                let f = (m - m0) / (m1 - m0);
                return c0 + f * (c1 - c0);
            }
        }
        pts.last().expect("curve non-empty").1
    }
}

/// A custom piecewise-linear demand curve: `(minute, cores)` knots in
/// *real* scenario time (unlike the built-in [`ScenarioKind`] curves,
/// which are authored on a virtual 120-minute axis and stretched to the
/// configured duration). This is what the long-horizon scenario DSL
/// compiles its diurnal / flash-crowd / batch-burst shapes into.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandCurve {
    points: Vec<(f64, f64)>,
}

impl DemandCurve {
    /// Builds a curve from `(minute, cores)` knots. Errors (naming the
    /// offending knot) on fewer than two knots, non-finite values,
    /// negative cores, or non-increasing minutes.
    pub fn new(points: Vec<(f64, f64)>) -> Result<DemandCurve, String> {
        if points.len() < 2 {
            return Err(format!(
                "demand curve needs at least 2 points, got {}",
                points.len()
            ));
        }
        for (i, &(m, c)) in points.iter().enumerate() {
            if !m.is_finite() || !c.is_finite() {
                return Err(format!("demand curve point {i} is not finite: ({m}, {c})"));
            }
            if c < 0.0 {
                return Err(format!("demand curve point {i} has negative cores: {c}"));
            }
        }
        for (i, w) in points.windows(2).enumerate() {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "demand curve minutes must be strictly increasing: point {} ({}) \
                     does not follow point {i} ({})",
                    i + 1,
                    w[1].0,
                    w[0].0
                ));
            }
        }
        Ok(DemandCurve { points })
    }

    /// The `(minute, cores)` knots.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linear interpolation at `t`, holding the first value before the
    /// first knot and the final value past the last.
    pub fn cores_at(&self, t: SimTime) -> f64 {
        let m = t.as_mins_f64();
        let pts = &self.points;
        if m <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (m0, c0) = w[0];
            let (m1, c1) = w[1];
            if m <= m1 {
                let f = (m - m0) / (m1 - m0);
                return c0 + f * (c1 - c0);
            }
        }
        pts.last().expect("curve non-empty").1
    }
}

/// Configuration for scenario generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Which scenario. With a custom [`DemandCurve`] attached, the kind
    /// still selects the batch/latency-critical mix ratios; only its
    /// analytic curve is overridden.
    pub kind: ScenarioKind,
    /// Arrival window (the paper's scenarios span 2 hours).
    pub duration: SimDuration,
    /// Mean job inter-arrival time (Table 2: 1 second).
    pub mean_interarrival: SimDuration,
    /// Uniform scale on the required-core curve (1.0 = paper scale;
    /// smaller values make fast tests).
    pub load_scale: f64,
    /// Overrides the fraction of interference-sensitive jobs
    /// (memcached + real-time Spark) — the Figure 16 sweep knob.
    pub sensitive_fraction: Option<f64>,
    /// The latency model used to derive memcached loads from core counts.
    pub latency_model: LatencyModel,
    /// Custom target curve in real scenario time, overriding the kind's
    /// stretched analytic curve. `None` keeps the paper behaviour (and
    /// every pre-DSL run byte-identical).
    pub curve: Option<DemandCurve>,
}

impl ScenarioConfig {
    /// The paper's configuration for `kind`.
    pub fn paper(kind: ScenarioKind) -> Self {
        ScenarioConfig {
            kind,
            duration: SimDuration::from_hours(2),
            mean_interarrival: SimDuration::from_secs(1),
            load_scale: 1.0,
            sensitive_fraction: None,
            latency_model: LatencyModel::default(),
            curve: None,
        }
    }

    /// A scaled-down configuration for fast tests: `scale` on load,
    /// `minutes`-long arrival window.
    pub fn scaled(kind: ScenarioKind, scale: f64, minutes: u64) -> Self {
        ScenarioConfig {
            duration: SimDuration::from_mins(minutes),
            load_scale: scale,
            ..ScenarioConfig::paper(kind)
        }
    }

    /// Target required cores at `t` under this config's scale. Times past
    /// the arrival window hold the curve's final value.
    pub fn target_cores(&self, t: SimTime) -> f64 {
        if let Some(curve) = &self.curve {
            // Custom curves are authored in real scenario time: no
            // virtual-axis stretch.
            return curve.cores_at(t) * self.load_scale;
        }
        // The analytic curves are authored on a 120-minute x-axis; stretch
        // to the configured duration.
        let frac = t.as_secs_f64() / self.duration.as_secs_f64();
        let virtual_t = SimTime::from_secs_f64_lossy(frac.min(1.0) * 7200.0);
        self.kind.target_cores(virtual_t) * self.load_scale
    }
}

/// Internal helper: fractional-second construction for virtual curve time.
trait FromSecsF64 {
    fn from_secs_f64_lossy(secs: f64) -> SimTime;
}

impl FromSecsF64 for SimTime {
    fn from_secs_f64_lossy(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs.max(0.0))
    }
}

/// Aggregate characteristics of a generated scenario (the Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioStats {
    /// Ratio of max to min concurrent required cores (measured over the
    /// middle of the run, like the paper's steady-state numbers).
    pub max_min_ratio: f64,
    /// batch : latency-critical ratio in job counts.
    pub batch_lc_job_ratio: f64,
    /// batch : latency-critical ratio in core-seconds.
    pub batch_lc_core_ratio: f64,
    /// Mean job duration in minutes.
    pub mean_duration_mins: f64,
    /// Total jobs generated.
    pub job_count: usize,
}

/// A generated scenario: the job stream plus its provenance.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
    jobs: Vec<JobSpec>,
    /// Optional multi-tenant section; `None` runs untenanted and is
    /// byte-identical to a scenario that predates tenancy.
    tenancy: Option<TenancyPlan>,
}

impl Scenario {
    /// Generates the scenario deterministically from `factory`.
    pub fn generate(config: ScenarioConfig, factory: &RngFactory) -> Scenario {
        assert!(config.load_scale > 0.0, "load scale must be positive");
        let mut rng = factory.stream("scenario.generator");
        let interarrival_secs = config.mean_interarrival.as_secs_f64();
        let interarrival = Exponential::with_mean(interarrival_secs);
        let duration_noise = LogNormal::with_mean(1.0, 0.25);
        let batch_frac = config.kind.batch_job_fraction();
        let batch_core_frac = config.kind.batch_core_fraction();

        // Load-carrying arrival rates per side (jobs/sec). Real-time Spark
        // jobs are too short to carry load, so they are excluded from the
        // batch side's Little's-law budget.
        let (rate_batch, rate_lc) = match config.sensitive_fraction {
            Some(f) => (
                ((1.0 - f) / interarrival_secs).max(1e-6),
                (f * 0.7 / interarrival_secs).max(1e-6),
            ),
            None => (
                batch_frac * 0.9 / interarrival_secs,
                (1.0 - batch_frac) / interarrival_secs,
            ),
        };
        // Mean cores per job, from the sampling tables below.
        const E_CORES_BATCH: f64 = 2.6;
        const E_CORES_LC: f64 = 1.95;

        let mut jobs: Vec<JobSpec> = Vec::new();
        // Ideal active load tracking per side: (end_time, cores), kept as
        // simple vectors compacted lazily.
        let mut active: [Vec<(SimTime, u32)>; 2] = [Vec::new(), Vec::new()];
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        let end = SimTime::ZERO + config.duration;

        loop {
            t += SimDuration::from_secs_f64(interarrival.sample(&mut rng));
            if t >= end {
                break;
            }
            // Pick the side (batch vs latency-critical), honoring a
            // sensitive-fraction override when present.
            let (class, is_batch_side) = pick_class(&config, batch_frac, &mut rng);
            let side = usize::from(!is_batch_side);

            // Current ideal concurrent cores on this side.
            active[side].retain(|&(e, _)| e > t);
            let current: u32 = active[side].iter().map(|&(_, c)| c).sum();
            let share = if is_batch_side {
                batch_core_frac
            } else {
                1.0 - batch_core_frac
            };
            let target = config.target_cores(t) * share;
            // Over-correct slightly (exponent > 1) so the stream snaps back
            // to the curve instead of drifting around it.
            let gap_ratio = (target / (current.max(1) as f64))
                .powf(1.3)
                .clamp(0.05, 2.5);

            let cores = sample_cores(class, target - current as f64, target, &mut rng);
            // Little's law: the per-job core·seconds budget that keeps this
            // side's concurrent cores at its target given its arrival rate.
            // Dividing the budget by the sampled core count (instead of
            // using a mean duration) keeps every job's contribution equal,
            // so core upgrades during load spikes don't inflate the load.
            let (rate, e_cores) = if is_batch_side {
                (rate_batch, E_CORES_BATCH)
            } else {
                (rate_lc, E_CORES_LC)
            };
            let base_d = target / (rate * e_cores) * (e_cores / cores as f64);
            let mut dur_secs = match class {
                // Real-time analytics: 100 ms – 10 s (Section 3.2).
                AppClass::SparkRealtime => Uniform::new(0.1, 10.0).sample(&mut rng),
                _ => base_d * gap_ratio * duration_noise.sample(&mut rng),
            };
            // Jobs should mostly drain by the ideal completion time
            // (~duration + a few minutes).
            let remaining = (end + SimDuration::from_mins(8)) - t;
            dur_secs = dur_secs.clamp(5.0, remaining.as_secs_f64().max(5.0));
            let d = SimDuration::from_secs_f64(dur_secs);

            let sensitivity = class.sample_sensitivity(&mut rng);
            let kind = if class.is_latency_metric() {
                JobKind::LatencyCritical {
                    offered_rps: config.latency_model.offered_rps_for(cores),
                    lifetime: d,
                }
            } else {
                JobKind::Batch {
                    work_core_secs: cores as f64 * d.as_secs_f64(),
                }
            };
            if class != AppClass::SparkRealtime {
                active[side].push((t + d, cores));
            }
            jobs.push(JobSpec {
                id: JobId(id),
                class,
                arrival: t,
                kind,
                cores,
                sensitivity,
            });
            id += 1;
        }

        Scenario {
            config,
            jobs,
            tenancy: None,
        }
    }

    /// Builds a scenario from an explicit job stream (for custom
    /// workloads — the built-in generator covers the paper's three
    /// scenarios). Jobs are sorted by arrival time.
    ///
    /// The `config`'s target curve is only used for reserved-capacity
    /// sizing; pick the [`ScenarioKind`] whose shape best matches the
    /// custom stream, or override reserved sizing in the run
    /// configuration.
    pub fn from_jobs(config: ScenarioConfig, mut jobs: Vec<JobSpec>) -> Scenario {
        jobs.sort_by_key(|j| j.arrival);
        Scenario {
            config,
            jobs,
            tenancy: None,
        }
    }

    /// Attaches a multi-tenant section: tenant contracts plus the
    /// job→tenant assignment map. The scheduler only instantiates its
    /// tenancy runtime when this is present.
    pub fn with_tenancy(mut self, plan: TenancyPlan) -> Scenario {
        self.tenancy = Some(plan);
        self
    }

    /// The optional multi-tenant section.
    pub fn tenancy(&self) -> Option<&TenancyPlan> {
        self.tenancy.as_ref()
    }

    /// The configuration this scenario was generated from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The scenario kind.
    pub fn kind(&self) -> ScenarioKind {
        self.config.kind
    }

    /// The generated jobs, in arrival order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The ideal concurrent required-core series implied by the job
    /// stream (each job occupies its cores from arrival for its ideal
    /// duration) — the measured version of Figure 3.
    pub fn required_cores_series(&self) -> StepSeries {
        let mut events: Vec<(SimTime, f64)> = Vec::with_capacity(self.jobs.len() * 2);
        for job in &self.jobs {
            events.push((job.arrival, job.cores as f64));
            events.push((job.arrival + job.ideal_duration(), -(job.cores as f64)));
        }
        events.sort_by_key(|&(t, _)| t);
        let mut series = StepSeries::new(0.0);
        for (t, delta) in events {
            series.record_delta(t, delta);
        }
        series
    }

    /// The ideal completion time: when the last job would finish with no
    /// scheduling delays or interference.
    pub fn ideal_completion(&self) -> SimTime {
        self.jobs
            .iter()
            .map(|j| j.arrival + j.ideal_duration())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate characteristics (the measured Table 2 row). Max:min is
    /// measured on 1-minute averages to avoid instantaneous zero loads.
    pub fn stats(&self) -> ScenarioStats {
        let series = self.required_cores_series();
        let window = self.config.duration;
        // Smooth over multi-minute windows: Table 2's max:min describes the
        // demand curve (Figure 3), not instantaneous arrival noise.
        let step = SimDuration::from_mins(4);
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        // Skip the ramp-up (the stream starts empty) and the drain at the
        // end; the paper's Table 2 ratios describe steady state.
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(window.as_secs_f64() * 0.125);
        let measure_end = SimTime::ZERO + (window - SimDuration::from_mins(5));
        while t < measure_end {
            let v = series.time_weighted_mean(t, t + step).unwrap_or(0.0);
            max = max.max(v);
            min = min.min(v);
            t += step;
        }
        let batch_jobs = self
            .jobs
            .iter()
            .filter(|j| !j.is_latency_critical())
            .count();
        let lc_jobs = self.jobs.len() - batch_jobs;
        let batch_core_secs: f64 = self
            .jobs
            .iter()
            .filter(|j| !j.is_latency_critical())
            .map(|j| j.cores as f64 * j.ideal_duration().as_secs_f64())
            .sum();
        let lc_core_secs: f64 = self
            .jobs
            .iter()
            .filter(|j| j.is_latency_critical())
            .map(|j| j.cores as f64 * j.ideal_duration().as_secs_f64())
            .sum();
        let mean_duration_mins = self
            .jobs
            .iter()
            .map(|j| j.ideal_duration().as_mins_f64())
            .sum::<f64>()
            / self.jobs.len().max(1) as f64;
        ScenarioStats {
            max_min_ratio: max / min.max(1.0),
            batch_lc_job_ratio: batch_jobs as f64 / lc_jobs.max(1) as f64,
            batch_lc_core_ratio: batch_core_secs / lc_core_secs.max(1.0),
            mean_duration_mins,
            job_count: self.jobs.len(),
        }
    }
}

/// Picks an application class for the next arrival.
fn pick_class<R: Rng + ?Sized>(
    config: &ScenarioConfig,
    batch_frac: f64,
    rng: &mut R,
) -> (AppClass, bool) {
    if let Some(f) = config.sensitive_fraction {
        // Figure 16 mode: control the sensitive-job fraction directly.
        if rng.gen::<f64>() < f {
            let class = if rng.gen::<f64>() < 0.7 {
                AppClass::Memcached
            } else {
                AppClass::SparkRealtime
            };
            return (class, class.is_batch());
        }
        let class = *pick_weighted(
            rng,
            &[
                (AppClass::HadoopRecommender, 0.35),
                (AppClass::HadoopSvm, 0.25),
                (AppClass::HadoopMatrixFactorization, 0.2),
                (AppClass::SparkBatch, 0.2),
            ],
        );
        return (class, true);
    }
    if rng.gen::<f64>() < batch_frac {
        let class = *pick_weighted(
            rng,
            &[
                (AppClass::HadoopRecommender, 0.30),
                (AppClass::HadoopSvm, 0.20),
                (AppClass::HadoopMatrixFactorization, 0.20),
                (AppClass::SparkBatch, 0.20),
                (AppClass::SparkRealtime, 0.10),
            ],
        );
        (class, true)
    } else {
        (AppClass::Memcached, false)
    }
}

fn pick_weighted<'a, T, R: Rng + ?Sized>(rng: &mut R, options: &'a [(T, f64)]) -> &'a T {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (v, w) in options {
        x -= w;
        if x <= 0.0 {
            return v;
        }
    }
    &options.last().expect("non-empty options").0
}

/// Samples a job's core count; when the side is far below its target the
/// generator favours larger sizes to close the gap quickly (this is what
/// makes the high-variability spikes steep).
fn sample_cores<R: Rng + ?Sized>(class: AppClass, gap: f64, target: f64, rng: &mut R) -> u32 {
    let base: &[(u32, f64)] = if class.is_latency_metric() {
        &[(1, 0.45), (2, 0.35), (4, 0.20)]
    } else {
        &[(1, 0.40), (2, 0.30), (4, 0.20), (8, 0.10)]
    };
    let mut cores = *pick_weighted(rng, base);
    if gap > 0.2 * target {
        cores = (cores * 2).min(16);
    }
    if gap > 0.6 * target {
        cores = (cores * 2).min(16);
    }
    cores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: ScenarioKind) -> Scenario {
        Scenario::generate(ScenarioConfig::paper(kind), &RngFactory::new(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(ScenarioKind::Static);
        let b = gen(ScenarioKind::Static);
        assert_eq!(a.jobs().len(), b.jobs().len());
        assert_eq!(a.jobs()[100], b.jobs()[100]);
    }

    #[test]
    fn about_one_job_per_second() {
        let s = gen(ScenarioKind::Static);
        let n = s.jobs().len() as f64;
        assert!((6000.0..8500.0).contains(&n), "job count {n}");
    }

    #[test]
    fn static_scenario_tracks_854_cores() {
        let s = gen(ScenarioKind::Static);
        let series = s.required_cores_series();
        let mean = series
            .time_weighted_mean(SimTime::from_secs(1200), SimTime::from_secs(6000))
            .unwrap();
        assert!(
            (854.0 * 0.8..854.0 * 1.2).contains(&mean),
            "steady-state mean {mean}"
        );
    }

    #[test]
    fn table2_job_ratios() {
        for kind in ScenarioKind::ALL {
            let stats = gen(kind).stats();
            let expect = match kind {
                ScenarioKind::Static => 4.2,
                ScenarioKind::LowVariability => 3.6,
                ScenarioKind::HighVariability => 4.1,
            };
            assert!(
                (stats.batch_lc_job_ratio - expect).abs() < 0.8,
                "{}: job ratio {} vs {expect}",
                kind.name(),
                stats.batch_lc_job_ratio
            );
        }
    }

    #[test]
    fn variability_ordering_matches_table2() {
        let r_static = gen(ScenarioKind::Static).stats().max_min_ratio;
        let r_low = gen(ScenarioKind::LowVariability).stats().max_min_ratio;
        let r_high = gen(ScenarioKind::HighVariability).stats().max_min_ratio;
        assert!(
            r_static < r_low && r_low < r_high,
            "{r_static} {r_low} {r_high}"
        );
        assert!(r_static < 1.35, "static ratio {r_static}");
        assert!((1.2..2.2).contains(&r_low), "low ratio {r_low}");
        assert!(r_high > 3.0, "high ratio {r_high}");
    }

    #[test]
    fn high_variability_jobs_are_shorter() {
        let d_static = gen(ScenarioKind::Static).stats().mean_duration_mins;
        let d_high = gen(ScenarioKind::HighVariability)
            .stats()
            .mean_duration_mins;
        assert!(d_high < d_static, "{d_high} vs {d_static}");
        assert!(
            (2.0..14.0).contains(&d_high),
            "high-var mean duration {d_high}"
        );
    }

    #[test]
    fn ideal_completion_close_to_two_hours() {
        for kind in ScenarioKind::ALL {
            let s = gen(kind);
            let hours = s.ideal_completion().as_hours_f64();
            assert!(
                (1.9..2.3).contains(&hours),
                "{}: ideal completion {hours}h",
                kind.name()
            );
        }
    }

    #[test]
    fn generator_tracks_target_curve() {
        let s = gen(ScenarioKind::HighVariability);
        let series = s.required_cores_series();
        // Time-weighted relative error over the interior of the run.
        let step = SimDuration::from_mins(2);
        let mut err = 0.0;
        let mut n = 0;
        let mut t = SimTime::from_secs(600);
        while t < SimTime::from_secs(6600) {
            let actual = series.time_weighted_mean(t, t + step).unwrap();
            let target = s.config().target_cores(t + step / 2);
            err += (actual - target).abs() / target;
            n += 1;
            t += step;
        }
        let mean_err = err / n as f64;
        assert!(mean_err < 0.35, "mean tracking error {mean_err}");
    }

    #[test]
    fn sensitive_fraction_override_takes_effect() {
        let mut config = ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.3, 30);
        config.sensitive_fraction = Some(0.8);
        let s = Scenario::generate(config, &RngFactory::new(1));
        let sensitive = s.jobs().iter().filter(|j| j.class.is_sensitive()).count();
        let frac = sensitive as f64 / s.jobs().len() as f64;
        assert!((0.72..0.88).contains(&frac), "sensitive fraction {frac}");
    }

    #[test]
    fn scaled_config_shrinks_load() {
        let s = Scenario::generate(
            ScenarioConfig::scaled(ScenarioKind::Static, 0.1, 20),
            &RngFactory::new(9),
        );
        let series = s.required_cores_series();
        let mean = series
            .time_weighted_mean(SimTime::from_secs(300), SimTime::from_secs(900))
            .unwrap();
        assert!((40.0..140.0).contains(&mean), "scaled mean {mean}");
    }

    #[test]
    fn curve_endpoints_match_table2_extremes() {
        // The high-variability curve spans 198..1226 → ratio ≈ 6.2.
        let pts = ScenarioKind::HighVariability.curve_points();
        let max = pts.iter().map(|&(_, c)| c).fold(f64::MIN, f64::max);
        let min = pts.iter().map(|&(_, c)| c).fold(f64::MAX, f64::min);
        assert_eq!(max, 1226.0);
        assert!((max / min - 6.2).abs() < 0.1, "ratio {}", max / min);
    }

    #[test]
    fn memcached_jobs_carry_load_matching_cores() {
        let s = gen(ScenarioKind::Static);
        let lm = LatencyModel::default();
        for j in s.jobs().iter().filter(|j| j.is_latency_critical()).take(50) {
            let JobKind::LatencyCritical { offered_rps, .. } = j.kind else {
                unreachable!()
            };
            assert_eq!(lm.cores_for(offered_rps), j.cores);
        }
    }
}

#[cfg(test)]
mod from_jobs_tests {
    use super::*;
    use crate::job::{JobId, JobKind, JobSpec};

    fn j(id: u64, arrival_mins: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            class: AppClass::HadoopSvm,
            arrival: SimTime::from_secs(arrival_mins * 60),
            kind: JobKind::Batch {
                work_core_secs: 240.0,
            },
            cores: 2,
            sensitivity: AppClass::HadoopSvm.sensitivity_template(),
        }
    }

    #[test]
    fn from_jobs_sorts_by_arrival() {
        let config = ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 10);
        let s = Scenario::from_jobs(config, vec![j(0, 5), j(1, 1), j(2, 3)]);
        let arrivals: Vec<u64> = s.jobs().iter().map(|x| x.arrival.as_micros()).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.jobs().len(), 3);
    }

    #[test]
    fn from_jobs_required_series_tracks_custom_stream() {
        let config = ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 10);
        let s = Scenario::from_jobs(config, vec![j(0, 0), j(1, 0)]);
        let series = s.required_cores_series();
        // Two 2-core jobs of 120s each, starting at t=0.
        assert_eq!(series.value_at(SimTime::from_secs(30)), 4.0);
        assert_eq!(series.value_at(SimTime::from_secs(300)), 0.0);
    }

    #[test]
    fn target_cores_interpolates_and_holds_past_end() {
        let config = ScenarioConfig::paper(ScenarioKind::LowVariability);
        // The low-var curve starts at 605 and peaks at 900.
        assert!((config.target_cores(SimTime::ZERO) - 605.0).abs() < 1.0);
        let peak = (0..=120)
            .map(|m| config.target_cores(SimTime::ZERO + SimDuration::from_mins(m)))
            .fold(f64::MIN, f64::max);
        assert!((peak - 900.0).abs() < 5.0, "peak {peak}");
        // Past the arrival window the curve holds its final value.
        let after = config.target_cores(SimTime::ZERO + SimDuration::from_hours(5));
        assert!((after - 605.0).abs() < 1.0, "after-end {after}");
    }

    #[test]
    fn load_scale_scales_targets_linearly() {
        let full = ScenarioConfig::paper(ScenarioKind::Static);
        let half = ScenarioConfig {
            load_scale: 0.5,
            ..full.clone()
        };
        let t = SimTime::from_secs(1800);
        assert!((half.target_cores(t) - full.target_cores(t) * 0.5).abs() < 1e-9);
    }

    #[test]
    fn demand_curve_rejects_malformed_knots_naming_them() {
        let e = DemandCurve::new(vec![(0.0, 10.0)]).expect_err("too few");
        assert!(e.contains("at least 2"), "{e}");
        let e = DemandCurve::new(vec![(0.0, 10.0), (5.0, -1.0)]).expect_err("negative");
        assert!(e.contains("point 1"), "{e}");
        let e = DemandCurve::new(vec![(0.0, 10.0), (0.0, 20.0)]).expect_err("non-increasing");
        assert!(e.contains("strictly increasing"), "{e}");
        let e = DemandCurve::new(vec![(0.0, f64::NAN), (5.0, 1.0)]).expect_err("nan");
        assert!(e.contains("point 0"), "{e}");
    }

    #[test]
    fn custom_curve_overrides_kind_in_real_time() {
        // A 10-hour linear ramp 100 → 300 cores, unaffected by the
        // kind's 120-minute virtual axis.
        let curve = DemandCurve::new(vec![(0.0, 100.0), (600.0, 300.0)]).unwrap();
        let config = ScenarioConfig {
            duration: SimDuration::from_hours(10),
            curve: Some(curve),
            ..ScenarioConfig::paper(ScenarioKind::HighVariability)
        };
        let at = |mins: u64| config.target_cores(SimTime::ZERO + SimDuration::from_mins(mins));
        assert!((at(0) - 100.0).abs() < 1e-9);
        assert!((at(300) - 200.0).abs() < 1e-9, "midpoint {}", at(300));
        // Holds past the last knot.
        assert!((at(700) - 300.0).abs() < 1e-9);
        // load_scale still applies on top.
        let half = ScenarioConfig {
            load_scale: 0.5,
            ..config.clone()
        };
        assert!((half.target_cores(SimTime::from_secs(18_000)) - 100.0).abs() < 1e-9);
    }
}
