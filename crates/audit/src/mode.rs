//! The `HCLOUD_AUDIT` switch.

use std::fmt;

/// How aggressively a run checks its conservation ledgers.
///
/// Parsed from `HCLOUD_AUDIT` with the same contract as the other
/// `HCLOUD_*` knobs: unset means [`AuditMode::Off`], malformed values are a
/// hard error (callers exit 2) rather than a silently ignored typo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditMode {
    /// No auditing at all — every ledger hook reduces to one predictable
    /// branch and run artifacts are byte-identical to an unaudited run.
    #[default]
    Off,
    /// Ledgers accumulate during the run; conservation identities are
    /// checked once, at end of run.
    Final,
    /// Everything in `Final`, plus violations abort the run at the event
    /// that caused them (the offending sim time is in the error).
    Strict,
}

impl AuditMode {
    /// Parse an optional `HCLOUD_AUDIT` value; `None` means unset.
    pub fn parse(raw: Option<&str>) -> Result<AuditMode, String> {
        match raw {
            None => Ok(AuditMode::Off),
            Some(s) => match s {
                "off" => Ok(AuditMode::Off),
                "final" => Ok(AuditMode::Final),
                "strict" => Ok(AuditMode::Strict),
                other => Err(format!(
                    "invalid HCLOUD_AUDIT {other:?}: expected \"off\", \"final\" or \"strict\""
                )),
            },
        }
    }

    /// Read `HCLOUD_AUDIT` from the environment.
    pub fn from_env() -> Result<AuditMode, String> {
        AuditMode::parse(std::env::var("HCLOUD_AUDIT").ok().as_deref())
    }

    /// True when ledgers are maintained at all (final or strict).
    pub fn is_enabled(self) -> bool {
        self != AuditMode::Off
    }

    /// True when violations should abort at the offending event.
    pub fn is_strict(self) -> bool {
        self == AuditMode::Strict
    }
}

impl fmt::Display for AuditMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditMode::Off => "off",
            AuditMode::Final => "final",
            AuditMode::Strict => "strict",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_defaults_to_off() {
        assert_eq!(AuditMode::parse(None), Ok(AuditMode::Off));
        assert_eq!(AuditMode::default(), AuditMode::Off);
    }

    #[test]
    fn parses_all_levels() {
        assert_eq!(AuditMode::parse(Some("off")), Ok(AuditMode::Off));
        assert_eq!(AuditMode::parse(Some("final")), Ok(AuditMode::Final));
        assert_eq!(AuditMode::parse(Some("strict")), Ok(AuditMode::Strict));
    }

    #[test]
    fn rejects_garbage_loudly() {
        let err = AuditMode::parse(Some("paranoid")).unwrap_err();
        assert!(err.contains("HCLOUD_AUDIT"), "error names the knob: {err}");
        assert!(err.contains("paranoid"), "error echoes the value: {err}");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(!AuditMode::Off.is_enabled());
        assert!(AuditMode::Final.is_enabled());
        assert!(AuditMode::Strict.is_enabled());
        assert!(AuditMode::Strict.is_strict());
        assert!(!AuditMode::Final.is_strict());
    }
}
