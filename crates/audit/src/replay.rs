//! Offline trace replay: run the lifecycle ledgers over a recorded
//! flight-recorder JSONL file (`hcloud-cli audit`).
//!
//! A trace knows less than the live auditor (it has no work amounts and
//! no core counts), so replay checks the invariants a trace *can* prove:
//! instance lifecycle (every spin-up released at most once, terminations
//! and retention expiries only on live instances), queue conservation
//! (exits never outrun entries, all entries matched by end of file), and
//! stream integrity (exactly one `run-end`, header event count matches
//! the body).
//!
//! Checks run in recording order, which is the causal execution order:
//! the recorder logs each action as the simulation performs it. Sim time
//! is deliberately *not* required to be monotone across the file —
//! recovery paths log future-dated events (a spin-up retried under fault
//! backoff carries the time the retry lands), and cancelling an in-flight
//! acquisition releases at the current time while its spin-up event was
//! future-dated. Recording order is the only order that is causal for
//! every event class.

use std::collections::BTreeMap;

use hcloud_json::parse;

/// Per-file replay totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayStats {
    /// Events replayed (excluding the header line).
    pub events: u64,
    /// Instances spun up.
    pub spin_ups: u64,
    /// Instances released.
    pub releases: u64,
    /// Queue entries.
    pub queue_enters: u64,
    /// Queue exits.
    pub queue_exits: u64,
    /// Spot terminations.
    pub spot_terminations: u64,
}

/// Replays one flight-recorder JSONL file against the lifecycle ledgers.
///
/// Returns the per-file totals, or a message naming the offending line
/// and the invariant it broke.
pub fn replay_file(text: &str) -> Result<ReplayStats, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let header = parse(header).map_err(|e| format!("line 1: bad header: {e}"))?;
    let declared = header
        .get("events")
        .and_then(|v| v.as_u64())
        .ok_or("line 1: header is missing the \"events\" count")?;
    header
        .get("schema")
        .and_then(|v| v.as_u64())
        .ok_or("line 1: header is missing the \"schema\" version")?;

    let mut stats = ReplayStats::default();
    // Instance id -> released? (entry exists once spun up).
    let mut instances: BTreeMap<u64, bool> = BTreeMap::new();
    // Job id -> queue entries minus exits.
    let mut queued: BTreeMap<u64, u64> = BTreeMap::new();
    let mut run_ends = 0u64;

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let ev = parse(line).map_err(|e| format!("line {lineno}: bad JSON: {e}"))?;
        ev.get("t_us")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("line {lineno}: event without \"t_us\""))?;
        let kind = ev
            .get("ev")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("line {lineno}: event without \"ev\""))?;
        stats.events += 1;

        let instance = || {
            ev.get("instance")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("line {lineno}: {kind} without \"instance\""))
        };
        let job = || {
            ev.get("job")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("line {lineno}: {kind} without \"job\""))
        };
        match kind {
            "instance-spin-up" => {
                let id = instance()?;
                if instances.insert(id, false).is_some() {
                    return Err(format!("line {lineno}: instance {id} spun up twice"));
                }
                stats.spin_ups += 1;
            }
            "instance-released" => {
                let id = instance()?;
                match instances.get_mut(&id) {
                    None => {
                        return Err(format!("line {lineno}: release of unknown instance {id}"));
                    }
                    Some(released @ false) => *released = true,
                    Some(true) => {
                        return Err(format!("line {lineno}: instance {id} released twice"));
                    }
                }
                stats.releases += 1;
            }
            "retention-expired" | "spot-terminated" => {
                let id = instance()?;
                match instances.get(&id) {
                    None => {
                        return Err(format!("line {lineno}: {kind} on unknown instance {id}"));
                    }
                    Some(true) => {
                        return Err(format!("line {lineno}: {kind} on released instance {id}"));
                    }
                    Some(false) => {}
                }
                if kind == "spot-terminated" {
                    stats.spot_terminations += 1;
                }
            }
            "queue-enter" => {
                *queued.entry(job()?).or_insert(0) += 1;
                stats.queue_enters += 1;
            }
            "queue-exit" => {
                let j = job()?;
                match queued.get_mut(&j) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => {
                        return Err(format!(
                            "line {lineno}: queue-exit for job {j} with no matching entry"
                        ));
                    }
                }
                stats.queue_exits += 1;
            }
            "run-end" => {
                run_ends += 1;
                if run_ends > 1 {
                    return Err(format!("line {lineno}: more than one run-end event"));
                }
            }
            // Everything else (decisions, faults, QoS, progress, audit
            // summaries...) carries no lifecycle obligations.
            _ => {}
        }
    }

    if run_ends != 1 {
        return Err("trace has no run-end event".into());
    }
    if stats.events != declared {
        return Err(format!(
            "header declares {declared} events but the body has {}",
            stats.events
        ));
    }
    if let Some((job, n)) = queued.iter().find(|(_, &n)| n > 0) {
        return Err(format!(
            "job {job} entered the queue {n} more time(s) than it left"
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: &[&str]) -> String {
        let mut out = format!(
            "{{\"schema\":1,\"run\":\"t\",\"scenario\":\"s\",\"strategy\":\"sr\",\"seed\":7,\"events\":{}}}\n",
            events.len()
        );
        for e in events {
            out.push_str(e);
            out.push('\n');
        }
        out
    }

    #[test]
    fn clean_trace_replays() {
        let text = trace(&[
            r#"{"t_us":0,"ev":"instance-spin-up","instance":0,"itype":"m-16","vcpus":16,"spot":false,"spin_up_us":5}"#,
            r#"{"t_us":10,"ev":"queue-enter","job":1,"cores":4,"depth":1,"est_us":null}"#,
            r#"{"t_us":20,"ev":"queue-exit","job":1,"cores":4,"est_us":null,"actual_us":10,"relieved":false}"#,
            r#"{"t_us":30,"ev":"run-end","events_processed":4,"scheduled_total":4,"max_queue_depth":1}"#,
            r#"{"t_us":30,"ev":"instance-released","instance":0}"#,
        ]);
        let stats = replay_file(&text).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.spin_ups, 1);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.queue_enters, 1);
        assert_eq!(stats.queue_exits, 1);
    }

    #[test]
    fn double_release_is_flagged() {
        let text = trace(&[
            r#"{"t_us":0,"ev":"instance-spin-up","instance":0,"itype":"m-16","vcpus":16,"spot":false,"spin_up_us":5}"#,
            r#"{"t_us":1,"ev":"instance-released","instance":0}"#,
            r#"{"t_us":2,"ev":"instance-released","instance":0}"#,
            r#"{"t_us":3,"ev":"run-end","events_processed":3,"scheduled_total":3,"max_queue_depth":0}"#,
        ]);
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("released twice"), "{err}");
    }

    #[test]
    fn release_of_unknown_instance_is_flagged() {
        let text = trace(&[
            r#"{"t_us":1,"ev":"instance-released","instance":9}"#,
            r#"{"t_us":2,"ev":"run-end","events_processed":2,"scheduled_total":2,"max_queue_depth":0}"#,
        ]);
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("unknown instance 9"), "{err}");
    }

    #[test]
    fn unmatched_queue_entry_is_flagged() {
        let text = trace(&[
            r#"{"t_us":1,"ev":"queue-enter","job":3,"cores":2,"depth":1,"est_us":null}"#,
            r#"{"t_us":2,"ev":"run-end","events_processed":2,"scheduled_total":2,"max_queue_depth":1}"#,
        ]);
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("job 3"), "{err}");
    }

    #[test]
    fn future_dated_recovery_events_replay_clean() {
        // A spin-up retried under fault backoff is future-dated, ahead
        // of later-recorded events; a cancelled in-flight acquisition is
        // even released at a time before its own spin-up event. Replay
        // follows recording (causal) order, so both are clean.
        let text = trace(&[
            r#"{"t_us":100,"ev":"recovery-retry","attempt":2,"backoff_us":50}"#,
            r#"{"t_us":100,"ev":"instance-spin-up","instance":1,"itype":"m-16","vcpus":16,"spot":false,"spin_up_us":5}"#,
            r#"{"t_us":7,"ev":"instance-spin-up","instance":2,"itype":"m-16","vcpus":16,"spot":false,"spin_up_us":5}"#,
            r#"{"t_us":40,"ev":"instance-released","instance":1}"#,
            r#"{"t_us":200,"ev":"run-end","events_processed":5,"scheduled_total":5,"max_queue_depth":0}"#,
        ]);
        let stats = replay_file(&text).unwrap();
        assert_eq!(stats.spin_ups, 2);
        assert_eq!(stats.releases, 1);
    }

    #[test]
    fn release_recorded_before_its_spin_up_is_flagged() {
        let text = trace(&[
            r#"{"t_us":2,"ev":"instance-released","instance":0}"#,
            r#"{"t_us":5,"ev":"instance-spin-up","instance":0,"itype":"m-16","vcpus":16,"spot":false,"spin_up_us":5}"#,
            r#"{"t_us":9,"ev":"run-end","events_processed":3,"scheduled_total":3,"max_queue_depth":0}"#,
        ]);
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("unknown instance 0"), "{err}");
    }

    #[test]
    fn truncated_body_is_flagged() {
        let mut text = trace(&[
            r#"{"t_us":1,"ev":"run-end","events_processed":1,"scheduled_total":1,"max_queue_depth":0}"#,
        ]);
        text = text.replace("\"events\":1", "\"events\":2");
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("declares 2 events"), "{err}");
    }

    #[test]
    fn missing_run_end_is_flagged() {
        let text = trace(&[r#"{"t_us":1,"ev":"progress","events_processed":1,"queue_depth":0}"#]);
        let err = replay_file(&text).unwrap_err();
        assert!(err.contains("no run-end"), "{err}");
    }
}
