//! Shadow ledgers and the conservation identities they certify.
//!
//! The [`Auditor`] is a cheap-to-clone handle (mirroring the telemetry
//! `Tracer`) that the scheduler and runner feed with *semantic* events:
//! jobs admitted/completed, core-seconds credited/lost, cores bound and
//! unbound on instances, instances acquired/idled/released. From those it
//! maintains four ledgers:
//!
//! 1. **Work**: core-seconds demanded by arriving batch jobs vs.
//!    core-seconds credited to them (tick decrements plus the remainder
//!    completed at finish). Preemption losses are tracked separately and
//!    cross-checked against the scheduler's own counter.
//! 2. **Cores**: per-instance bound cores, with checked arithmetic —
//!    over-binding past capacity and unbinding more than is bound are both
//!    violations (the exact bugs `saturating_sub` used to mask).
//! 3. **Queue**: admissions vs. completions vs. requeues, and queue
//!    entries vs. exits.
//! 4. **Lifecycle / billing**: per-instance acquired→busy→idle→released
//!    state machine, and instance-seconds observed by the scheduler vs.
//!    instance-seconds billed by the provider's usage records.
//!
//! Violations are detected eagerly at the hook that breaks an invariant
//! and buffered; [`Auditor::step_check`] surfaces them per event-loop step
//! under strict mode, and [`Auditor::finalize`] asserts the end-of-run
//! identities.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use hcloud_sim::SimTime;

use crate::mode::AuditMode;

/// Relative tolerance for f64 work-ledger comparisons. Tick decrements
/// telescope per job, so the only drift is summation rounding — far below
/// this, while any real double/missed credit is at least one job's work.
const WORK_REL_EPS: f64 = 1e-7;
/// Absolute floor for the same comparisons (tiny runs).
const WORK_ABS_EPS: f64 = 1e-6;

fn work_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= WORK_ABS_EPS + WORK_REL_EPS * a.abs().max(b.abs())
}

/// A broken conservation invariant, stamped with the sim time of the
/// event that broke it.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Sim time of the offending event (or the makespan, for end-of-run
    /// identity failures).
    pub at: SimTime,
    /// What went wrong.
    pub kind: AuditViolationKind,
}

impl AuditViolation {
    pub fn new(at: SimTime, kind: AuditViolationKind) -> AuditViolation {
        AuditViolation { at, kind }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit violation at t={:.3}s: {}",
            self.at.as_secs_f64(),
            self.kind
        )
    }
}

impl std::error::Error for AuditViolation {}

/// The violation taxonomy, one variant per invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolationKind {
    /// Unbinding more cores from an instance than are bound — the
    /// double-release/over-release class that `saturating_sub` clamps
    /// silently.
    CoreUnderflow {
        instance: u64,
        bound: u32,
        unbind: u32,
    },
    /// Binding pushed an instance past its core capacity.
    CoreOvercommit {
        instance: u64,
        bound: u32,
        capacity: u32,
    },
    /// An instance finished the run with cores still bound.
    CoreLeak { instance: u64, bound: u32 },
    /// The same instance id was acquired twice.
    DuplicateAcquire { instance: u64 },
    /// A hook referenced an instance the ledger has never seen.
    UnknownInstance { instance: u64, action: &'static str },
    /// A hook used an instance after its release.
    UseAfterRelease { instance: u64, action: &'static str },
    /// An instance was released twice.
    DoubleRelease { instance: u64 },
    /// An instance was released while jobs still held cores on it.
    ReleaseWhileBusy { instance: u64, bound: u32 },
    /// An instance was parked as idle-retained while cores were bound.
    IdleWhileBusy { instance: u64, bound: u32 },
    /// The same job was admitted twice through the arrival path.
    DuplicateAdmit { job: u64 },
    /// A job completed that was never admitted.
    UnknownJob { job: u64, action: &'static str },
    /// The same job completed twice.
    DuplicateCompletion { job: u64 },
    /// A work amount was negative or non-finite.
    NonFiniteWork { job: u64, amount: f64 },
    /// More core-seconds were credited than were ever demanded.
    OverCredit { demanded: f64, credited: f64 },
    /// End of run: demanded core-seconds do not equal credited
    /// core-seconds (work was lost or double-counted).
    WorkConservation { demanded: f64, credited: f64 },
    /// End of run: the lost-work ledger disagrees with the scheduler's
    /// `work_lost_core_secs` counter.
    LostWorkMismatch { ledger: f64, counters: f64 },
    /// End of run: instance-seconds observed by the scheduler disagree
    /// with instance-seconds billed by the provider's usage records
    /// (in exact micro-vCPU-seconds).
    InstanceSecondsMismatch { observed: u128, billed: u128 },
    /// End of run: the spot partition of the observed instance-seconds
    /// disagrees with the spot-flagged usage records billed by the
    /// provider — spot work billed at on-demand rates or vice versa.
    SpotSecondsMismatch { observed: u128, billed: u128 },
    /// A duration measurement ran backwards (`now` precedes the
    /// timestamp it is measured from) — the silent-underflow class that
    /// `saturating_since` clamps to zero; reported by the scheduler's
    /// checked arithmetic.
    TimeInversion {
        job: u64,
        context: &'static str,
        at_us: u64,
        earlier_us: u64,
    },
    /// More queue exits than queue entries, or entries left unmatched at
    /// end of run.
    QueueConservation { entered: u64, left: u64 },
    /// End of run: not every admitted job completed.
    JobsConservation { admitted: u64, completed: u64 },
    /// End of run: the per-tenant shadow ledgers do not sum to the
    /// global ledger for `field` (a work event was attributed to the
    /// run but not to a tenant bucket, or vice versa).
    TenantLedgerMismatch {
        field: &'static str,
        tenants: f64,
        global: f64,
    },
}

impl fmt::Display for AuditViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AuditViolationKind::*;
        match self {
            CoreUnderflow {
                instance,
                bound,
                unbind,
            } => write!(
                f,
                "core underflow on instance {instance}: unbinding {unbind} cores with only {bound} bound"
            ),
            CoreOvercommit {
                instance,
                bound,
                capacity,
            } => write!(
                f,
                "core overcommit on instance {instance}: {bound} cores bound on {capacity} vCPUs"
            ),
            CoreLeak { instance, bound } => write!(
                f,
                "core leak: instance {instance} ended the run with {bound} cores still bound"
            ),
            DuplicateAcquire { instance } => {
                write!(f, "instance {instance} acquired twice")
            }
            UnknownInstance { instance, action } => {
                write!(f, "{action} on unknown instance {instance}")
            }
            UseAfterRelease { instance, action } => {
                write!(f, "{action} on released instance {instance}")
            }
            DoubleRelease { instance } => write!(f, "instance {instance} released twice"),
            ReleaseWhileBusy { instance, bound } => write!(
                f,
                "instance {instance} released with {bound} cores still bound"
            ),
            IdleWhileBusy { instance, bound } => write!(
                f,
                "instance {instance} parked idle with {bound} cores still bound"
            ),
            DuplicateAdmit { job } => write!(f, "job {job} admitted twice"),
            UnknownJob { job, action } => write!(f, "{action} for unknown job {job}"),
            DuplicateCompletion { job } => write!(f, "job {job} completed twice"),
            NonFiniteWork { job, amount } => {
                write!(f, "non-finite or negative work {amount} for job {job}")
            }
            OverCredit { demanded, credited } => write!(
                f,
                "over-credit: {credited} core-seconds credited against {demanded} demanded"
            ),
            WorkConservation { demanded, credited } => write!(
                f,
                "work not conserved: {demanded} core-seconds demanded, {credited} credited"
            ),
            LostWorkMismatch { ledger, counters } => write!(
                f,
                "lost-work mismatch: ledger {ledger} core-seconds vs scheduler counter {counters}"
            ),
            InstanceSecondsMismatch { observed, billed } => write!(
                f,
                "billing mismatch: {observed} micro-vCPU-seconds observed vs {billed} billed"
            ),
            SpotSecondsMismatch { observed, billed } => write!(
                f,
                "spot billing mismatch: {observed} spot micro-vCPU-seconds observed vs {billed} billed as spot"
            ),
            TimeInversion {
                job,
                context,
                at_us,
                earlier_us,
            } => write!(
                f,
                "time inversion in {context} for job {job}: now {at_us}us precedes reference {earlier_us}us"
            ),
            QueueConservation { entered, left } => write!(
                f,
                "queue not conserved: {entered} entries vs {left} exits"
            ),
            JobsConservation {
                admitted,
                completed,
            } => write!(
                f,
                "jobs not conserved: {admitted} admitted vs {completed} completed"
            ),
            TenantLedgerMismatch {
                field,
                tenants,
                global,
            } => write!(
                f,
                "tenant ledgers do not sum to global {field}: {tenants} vs {global}"
            ),
        }
    }
}

/// Lifecycle record for one instance, keyed by provider id.
#[derive(Debug, Clone)]
struct InstanceState {
    vcpus: u32,
    acquired: SimTime,
    released: Option<SimTime>,
    bound: u32,
    spot: bool,
}

/// End-of-run ledger totals, for audit trace events and tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditSummary {
    pub demanded_core_secs: f64,
    pub credited_core_secs: f64,
    pub lost_core_secs: f64,
    pub jobs_admitted: u64,
    pub jobs_completed: u64,
    pub jobs_requeued: u64,
    pub queue_entered: u64,
    pub queue_left: u64,
    pub instances_acquired: u64,
    pub instances_released: u64,
    pub violations: u64,
}

/// One tenant's shadow of the work/job ledgers. The `None` bucket
/// collects untenanted (bypassed or unassigned) jobs, so the buckets
/// always partition the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantLedger {
    pub demanded: f64,
    pub credited: f64,
    pub lost: f64,
    pub admitted: u64,
    pub completed: u64,
}

#[derive(Debug, Default)]
struct Ledgers {
    demanded: f64,
    credited: f64,
    lost: f64,
    admitted: BTreeSet<u64>,
    completed: BTreeSet<u64>,
    jobs_requeued: u64,
    queue_entered: u64,
    queue_left: u64,
    instances: BTreeMap<u64, InstanceState>,
    instances_released: u64,
    /// Per-tenant shadows, keyed by tenant id (`None` = untenanted).
    /// Only reconciled against the globals once any tenant hook fires,
    /// so auditor users that predate tenancy are unaffected.
    tenants: BTreeMap<Option<u64>, TenantLedger>,
    tenant_tracking: bool,
    /// Spot partition of the billed micro-vCPU-seconds, fed by the
    /// runner from the spot-flagged usage records before `finalize`.
    spot_billed_micro_vcpu_secs: u128,
    violations: Vec<AuditViolation>,
}

impl Ledgers {
    fn violate(&mut self, at: SimTime, kind: AuditViolationKind) {
        self.violations.push(AuditViolation::new(at, kind));
    }
}

/// A cheap-to-clone handle onto one run's conservation ledgers.
///
/// Each simulated run owns one set of ledgers; the scheduler and the
/// runner share them through clones (single-threaded within a run). With
/// [`AuditMode::Off`] every hook reduces to a single predictable branch.
#[derive(Debug, Clone)]
pub struct Auditor {
    mode: AuditMode,
    inner: Rc<RefCell<Ledgers>>,
}

impl Auditor {
    /// An auditor that checks nothing; this is the hot-path default.
    pub fn disabled() -> Auditor {
        Auditor::new(AuditMode::Off)
    }

    pub fn new(mode: AuditMode) -> Auditor {
        Auditor {
            mode,
            inner: Rc::new(RefCell::new(Ledgers::default())),
        }
    }

    pub fn mode(&self) -> AuditMode {
        self.mode
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode.is_enabled()
    }

    /// Record a violation detected outside the auditor (e.g. by the
    /// scheduler's own checked arithmetic).
    pub fn report(&self, v: AuditViolation) {
        if self.is_enabled() {
            self.inner.borrow_mut().violations.push(v);
        }
    }

    // ----- work & job ledger hooks -------------------------------------

    /// A job entered the system through the arrival path with `work`
    /// core-seconds of demand (0 for latency-critical jobs).
    pub fn job_admitted(&self, at: SimTime, job: u64, work: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        if !work.is_finite() || work < 0.0 {
            l.violate(at, AuditViolationKind::NonFiniteWork { job, amount: work });
            return;
        }
        if !l.admitted.insert(job) {
            l.violate(at, AuditViolationKind::DuplicateAdmit { job });
            return;
        }
        l.demanded += work;
    }

    /// A job genuinely completed (stale finish events excluded).
    pub fn job_completed(&self, at: SimTime, job: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        if !l.admitted.contains(&job) {
            l.violate(
                at,
                AuditViolationKind::UnknownJob {
                    job,
                    action: "completion",
                },
            );
            return;
        }
        if !l.completed.insert(job) {
            l.violate(at, AuditViolationKind::DuplicateCompletion { job });
        }
    }

    /// A job was kicked back through admission (preemption recovery).
    pub fn job_requeued(&self, _at: SimTime, _job: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.borrow_mut().jobs_requeued += 1;
    }

    /// `core_secs` of a job's remaining work were credited as executed.
    pub fn work_executed(&self, at: SimTime, job: u64, core_secs: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        if !core_secs.is_finite() || core_secs < 0.0 {
            l.violate(
                at,
                AuditViolationKind::NonFiniteWork {
                    job,
                    amount: core_secs,
                },
            );
            return;
        }
        l.credited += core_secs;
        if l.credited > l.demanded && !work_close(l.credited, l.demanded) {
            let (demanded, credited) = (l.demanded, l.credited);
            l.violate(at, AuditViolationKind::OverCredit { demanded, credited });
        }
    }

    /// In-flight progress was discarded by a preemption.
    pub fn work_lost(&self, at: SimTime, job: u64, core_secs: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        if !core_secs.is_finite() || core_secs < 0.0 {
            l.violate(
                at,
                AuditViolationKind::NonFiniteWork {
                    job,
                    amount: core_secs,
                },
            );
            return;
        }
        l.lost += core_secs;
    }

    // ----- per-tenant shadow ledger hooks ------------------------------
    //
    // The scheduler calls these right beside the matching global hooks,
    // passing the job's tenant (`None` for untenanted jobs). Finalize
    // then asserts that the buckets sum exactly back to the globals —
    // catching any path that books work to the run but not to a tenant.

    /// Tenant shadow of [`Auditor::job_admitted`].
    pub fn tenant_job_admitted(&self, _at: SimTime, tenant: Option<u64>, _job: u64, work: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        l.tenant_tracking = true;
        let t = l.tenants.entry(tenant).or_default();
        t.admitted += 1;
        if work.is_finite() && work >= 0.0 {
            t.demanded += work;
        }
    }

    /// Tenant shadow of [`Auditor::job_completed`].
    pub fn tenant_job_completed(&self, _at: SimTime, tenant: Option<u64>, _job: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        l.tenant_tracking = true;
        l.tenants.entry(tenant).or_default().completed += 1;
    }

    /// Tenant shadow of [`Auditor::work_executed`].
    pub fn tenant_work_executed(
        &self,
        _at: SimTime,
        tenant: Option<u64>,
        _job: u64,
        core_secs: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        l.tenant_tracking = true;
        if core_secs.is_finite() && core_secs >= 0.0 {
            l.tenants.entry(tenant).or_default().credited += core_secs;
        }
    }

    /// Tenant shadow of [`Auditor::work_lost`].
    pub fn tenant_work_lost(&self, _at: SimTime, tenant: Option<u64>, _job: u64, core_secs: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        l.tenant_tracking = true;
        if core_secs.is_finite() && core_secs >= 0.0 {
            l.tenants.entry(tenant).or_default().lost += core_secs;
        }
    }

    /// The per-tenant shadow ledgers (`None` key = untenanted bucket),
    /// ascending by tenant id.
    pub fn tenant_ledgers(&self) -> Vec<(Option<u64>, TenantLedger)> {
        let l = self.inner.borrow();
        l.tenants.iter().map(|(&k, &v)| (k, v)).collect()
    }

    // ----- queue ledger hooks ------------------------------------------

    pub fn queue_entered(&self, _at: SimTime, _job: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.borrow_mut().queue_entered += 1;
    }

    pub fn queue_left(&self, at: SimTime, _job: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        l.queue_left += 1;
        if l.queue_left > l.queue_entered {
            let (entered, left) = (l.queue_entered, l.queue_left);
            l.violate(at, AuditViolationKind::QueueConservation { entered, left });
        }
    }

    // ----- instance lifecycle / billing hooks --------------------------

    /// An instance was acquired from the provider (billing starts).
    pub fn instance_acquired(&self, at: SimTime, instance: u64, vcpus: u32) {
        self.track_acquire(at, instance, vcpus, false);
    }

    /// A spot instance was acquired; its seconds land in the spot
    /// billing partition reconciled at [`Auditor::finalize`].
    pub fn instance_acquired_spot(&self, at: SimTime, instance: u64, vcpus: u32) {
        self.track_acquire(at, instance, vcpus, true);
    }

    fn track_acquire(&self, at: SimTime, instance: u64, vcpus: u32, spot: bool) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        if l.instances.contains_key(&instance) {
            l.violate(at, AuditViolationKind::DuplicateAcquire { instance });
            return;
        }
        l.instances.insert(
            instance,
            InstanceState {
                vcpus,
                acquired: at,
                released: None,
                bound: 0,
                spot,
            },
        );
    }

    /// The spot partition of the billed micro-vCPU-seconds (Σ over
    /// spot-flagged usage records of `(to - from) × vcpus`). Call once
    /// before [`Auditor::finalize`]; runs without spot usage may skip it.
    pub fn spot_billed(&self, micro_vcpu_secs: u128) {
        if !self.is_enabled() {
            return;
        }
        self.inner.borrow_mut().spot_billed_micro_vcpu_secs = micro_vcpu_secs;
    }

    /// `cores` were bound to a job on `instance`.
    pub fn cores_bound(&self, at: SimTime, instance: u64, cores: u32) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        let Some(st) = l.instances.get_mut(&instance) else {
            l.violate(
                at,
                AuditViolationKind::UnknownInstance {
                    instance,
                    action: "core bind",
                },
            );
            return;
        };
        if st.released.is_some() {
            l.violate(
                at,
                AuditViolationKind::UseAfterRelease {
                    instance,
                    action: "core bind",
                },
            );
            return;
        }
        st.bound += cores;
        if st.bound > st.vcpus {
            let (bound, capacity) = (st.bound, st.vcpus);
            l.violate(
                at,
                AuditViolationKind::CoreOvercommit {
                    instance,
                    bound,
                    capacity,
                },
            );
        }
    }

    /// `cores` were unbound from `instance`.
    pub fn cores_unbound(&self, at: SimTime, instance: u64, cores: u32) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        let Some(st) = l.instances.get_mut(&instance) else {
            l.violate(
                at,
                AuditViolationKind::UnknownInstance {
                    instance,
                    action: "core unbind",
                },
            );
            return;
        };
        if cores > st.bound {
            let bound = st.bound;
            st.bound = 0;
            l.violate(
                at,
                AuditViolationKind::CoreUnderflow {
                    instance,
                    bound,
                    unbind: cores,
                },
            );
            return;
        }
        st.bound -= cores;
    }

    /// An on-demand instance was parked idle-retained (no jobs).
    pub fn instance_idle(&self, at: SimTime, instance: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        let Some(st) = l.instances.get_mut(&instance) else {
            l.violate(
                at,
                AuditViolationKind::UnknownInstance {
                    instance,
                    action: "idle retention",
                },
            );
            return;
        };
        if st.released.is_some() {
            l.violate(
                at,
                AuditViolationKind::UseAfterRelease {
                    instance,
                    action: "idle retention",
                },
            );
            return;
        }
        if st.bound != 0 {
            let bound = st.bound;
            l.violate(at, AuditViolationKind::IdleWhileBusy { instance, bound });
        }
    }

    /// An instance was released back to the provider (billing stops).
    pub fn instance_released(&self, at: SimTime, instance: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.inner.borrow_mut();
        let Some(st) = l.instances.get_mut(&instance) else {
            l.violate(
                at,
                AuditViolationKind::UnknownInstance {
                    instance,
                    action: "release",
                },
            );
            return;
        };
        if st.released.is_some() {
            l.violate(at, AuditViolationKind::DoubleRelease { instance });
            return;
        }
        st.released = Some(at);
        let bound = st.bound;
        l.instances_released += 1;
        if bound != 0 {
            l.violate(at, AuditViolationKind::ReleaseWhileBusy { instance, bound });
        }
    }

    // ----- checks ------------------------------------------------------

    /// Strict-mode step check: surface the first buffered violation.
    /// Cheap (one branch + one emptiness test) when nothing is wrong.
    pub fn step_check(&self) -> Result<(), AuditViolation> {
        if !self.mode.is_strict() {
            return Ok(());
        }
        let l = self.inner.borrow();
        match l.violations.first() {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    /// End-of-run identity checks.
    ///
    /// * `makespan` closes still-open billing intervals, exactly as the
    ///   provider's `usage_records(makespan)` does;
    /// * `billed_micro_vcpu_secs` is Σ over usage records of
    ///   `(to - from) × vcpus`, in integer micro-vCPU-seconds;
    /// * `counters_lost_core_secs` is the scheduler's own
    ///   `work_lost_core_secs` counter, cross-checked against the ledger.
    pub fn finalize(
        &self,
        makespan: SimTime,
        billed_micro_vcpu_secs: u128,
        counters_lost_core_secs: f64,
    ) -> Result<(), AuditViolation> {
        if !self.is_enabled() {
            return Ok(());
        }
        let mut l = self.inner.borrow_mut();
        let admitted = l.admitted.len() as u64;
        let completed = l.completed.len() as u64;
        if admitted != completed {
            l.violate(
                makespan,
                AuditViolationKind::JobsConservation {
                    admitted,
                    completed,
                },
            );
        }
        if l.queue_entered != l.queue_left {
            let (entered, left) = (l.queue_entered, l.queue_left);
            l.violate(
                makespan,
                AuditViolationKind::QueueConservation { entered, left },
            );
        }
        if !work_close(l.demanded, l.credited) {
            let (demanded, credited) = (l.demanded, l.credited);
            l.violate(
                makespan,
                AuditViolationKind::WorkConservation { demanded, credited },
            );
        }
        if !work_close(l.lost, counters_lost_core_secs) {
            let ledger = l.lost;
            l.violate(
                makespan,
                AuditViolationKind::LostWorkMismatch {
                    ledger,
                    counters: counters_lost_core_secs,
                },
            );
        }
        let mut observed: u128 = 0;
        let mut observed_spot: u128 = 0;
        let mut leaks: Vec<(u64, u32)> = Vec::new();
        for (&id, st) in &l.instances {
            // Same clipping arithmetic as `Cloud::usage_records`.
            let to = st
                .released
                .unwrap_or(makespan)
                .min(makespan)
                .max(st.acquired);
            let micro = (to.saturating_since(st.acquired).as_micros() as u128) * st.vcpus as u128;
            observed += micro;
            if st.spot {
                observed_spot += micro;
            }
            if st.bound != 0 {
                leaks.push((id, st.bound));
            }
        }
        for (instance, bound) in leaks {
            l.violate(makespan, AuditViolationKind::CoreLeak { instance, bound });
        }
        if observed != billed_micro_vcpu_secs {
            l.violate(
                makespan,
                AuditViolationKind::InstanceSecondsMismatch {
                    observed,
                    billed: billed_micro_vcpu_secs,
                },
            );
        }
        if observed_spot != l.spot_billed_micro_vcpu_secs {
            let billed = l.spot_billed_micro_vcpu_secs;
            l.violate(
                makespan,
                AuditViolationKind::SpotSecondsMismatch {
                    observed: observed_spot,
                    billed,
                },
            );
        }
        if l.tenant_tracking {
            // The tenant buckets (including the untenanted `None`
            // bucket) must partition the global work and job ledgers.
            let sums = l
                .tenants
                .values()
                .fold(TenantLedger::default(), |a, t| TenantLedger {
                    demanded: a.demanded + t.demanded,
                    credited: a.credited + t.credited,
                    lost: a.lost + t.lost,
                    admitted: a.admitted + t.admitted,
                    completed: a.completed + t.completed,
                });
            let checks = [
                ("demanded core-seconds", sums.demanded, l.demanded),
                ("credited core-seconds", sums.credited, l.credited),
                ("lost core-seconds", sums.lost, l.lost),
                (
                    "jobs admitted",
                    sums.admitted as f64,
                    l.admitted.len() as f64,
                ),
                (
                    "jobs completed",
                    sums.completed as f64,
                    l.completed.len() as f64,
                ),
            ];
            for (field, tenants, global) in checks {
                if !work_close(tenants, global) {
                    l.violate(
                        makespan,
                        AuditViolationKind::TenantLedgerMismatch {
                            field,
                            tenants,
                            global,
                        },
                    );
                }
            }
        }
        match l.violations.first() {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    /// Ledger totals, for audit trace events and tests.
    pub fn summary(&self) -> AuditSummary {
        let l = self.inner.borrow();
        AuditSummary {
            demanded_core_secs: l.demanded,
            credited_core_secs: l.credited,
            lost_core_secs: l.lost,
            jobs_admitted: l.admitted.len() as u64,
            jobs_completed: l.completed.len() as u64,
            jobs_requeued: l.jobs_requeued,
            queue_entered: l.queue_entered,
            queue_left: l.queue_left,
            instances_acquired: l.instances.len() as u64,
            instances_released: l.instances_released,
            violations: l.violations.len() as u64,
        }
    }

    /// All buffered violations, in detection order.
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.inner.borrow().violations.clone()
    }
}

impl Default for Auditor {
    fn default() -> Self {
        Auditor::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_auditor_checks_nothing() {
        let a = Auditor::disabled();
        a.cores_unbound(t(1), 7, 99); // would be a violation if enabled
        assert_eq!(a.summary(), AuditSummary::default());
        assert!(a.step_check().is_ok());
        assert!(a.finalize(t(10), 12345, 9.9).is_ok());
    }

    #[test]
    fn clean_run_passes_both_modes() {
        for mode in [AuditMode::Final, AuditMode::Strict] {
            let a = Auditor::new(mode);
            a.instance_acquired(t(0), 0, 16);
            a.job_admitted(t(1), 1, 100.0);
            a.cores_bound(t(1), 0, 4);
            a.work_executed(t(5), 1, 60.0);
            a.work_executed(t(9), 1, 40.0);
            a.job_completed(t(9), 1);
            a.cores_unbound(t(9), 0, 4);
            a.instance_idle(t(9), 0);
            a.instance_released(t(10), 0);
            assert!(a.step_check().is_ok());
            // 10 s × 16 vCPUs on the one instance.
            let billed = 10_000_000u128 * 16;
            a.finalize(t(12), billed, 0.0).unwrap();
        }
    }

    #[test]
    fn clones_share_ledgers() {
        let a = Auditor::new(AuditMode::Strict);
        let b = a.clone();
        a.instance_acquired(t(0), 3, 8);
        b.cores_bound(t(1), 3, 4);
        assert_eq!(a.summary().instances_acquired, 1);
        a.cores_unbound(t(2), 3, 5);
        assert!(b.step_check().is_err(), "violations visible to all clones");
    }

    #[test]
    fn core_underflow_is_caught() {
        let a = Auditor::new(AuditMode::Strict);
        a.instance_acquired(t(0), 1, 8);
        a.cores_bound(t(1), 1, 2);
        a.cores_unbound(t(2), 1, 3);
        let v = a.step_check().unwrap_err();
        assert!(matches!(
            v.kind,
            AuditViolationKind::CoreUnderflow {
                instance: 1,
                bound: 2,
                unbind: 3
            }
        ));
        assert_eq!(v.at, t(2));
    }

    #[test]
    fn overcommit_and_lifecycle_violations() {
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired(t(0), 1, 4);
        a.cores_bound(t(1), 1, 5);
        a.instance_released(t(2), 1);
        a.instance_released(t(3), 1);
        a.cores_bound(t(4), 1, 1);
        a.cores_bound(t(4), 2, 1);
        let kinds = a.violations();
        assert!(matches!(
            kinds[0].kind,
            AuditViolationKind::CoreOvercommit {
                bound: 5,
                capacity: 4,
                ..
            }
        ));
        assert!(matches!(
            kinds[1].kind,
            AuditViolationKind::ReleaseWhileBusy { bound: 5, .. }
        ));
        assert!(matches!(
            kinds[2].kind,
            AuditViolationKind::DoubleRelease { .. }
        ));
        assert!(matches!(
            kinds[3].kind,
            AuditViolationKind::UseAfterRelease { .. }
        ));
        assert!(matches!(
            kinds[4].kind,
            AuditViolationKind::UnknownInstance { instance: 2, .. }
        ));
        // Final mode defers: step_check only trips under strict.
        assert!(a.step_check().is_ok());
        assert!(a.finalize(t(5), 0, 0.0).is_err());
    }

    #[test]
    fn work_conservation_violation_at_finalize() {
        let a = Auditor::new(AuditMode::Final);
        a.job_admitted(t(0), 1, 100.0);
        a.work_executed(t(5), 1, 60.0);
        a.job_completed(t(5), 1);
        let err = a.finalize(t(6), 0, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::WorkConservation { .. }
        ));
    }

    #[test]
    fn over_credit_is_eager() {
        let a = Auditor::new(AuditMode::Strict);
        a.job_admitted(t(0), 1, 10.0);
        a.work_executed(t(1), 1, 10.5);
        assert!(matches!(
            a.step_check().unwrap_err().kind,
            AuditViolationKind::OverCredit { .. }
        ));
    }

    #[test]
    fn tiny_float_drift_is_tolerated() {
        let a = Auditor::new(AuditMode::Strict);
        a.job_admitted(t(0), 1, 1.0e6);
        a.work_executed(t(1), 1, 1.0e6 * (1.0 + 1e-9));
        a.job_completed(t(1), 1);
        assert!(a.step_check().is_ok());
        a.finalize(t(2), 0, 0.0).unwrap();
    }

    #[test]
    fn billing_mismatch_at_finalize() {
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired(t(0), 0, 4);
        a.instance_released(t(10), 0);
        let billed_short = 9_000_000u128 * 4;
        let err = a.finalize(t(20), billed_short, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::InstanceSecondsMismatch { .. }
        ));
    }

    #[test]
    fn open_instances_bill_to_makespan() {
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired(t(0), 0, 4);
        // Never released: clipped at makespan, like usage_records.
        a.finalize(t(20), 20_000_000u128 * 4, 0.0).unwrap();
    }

    #[test]
    fn queue_exit_without_entry_is_eager() {
        let a = Auditor::new(AuditMode::Strict);
        a.queue_entered(t(0), 1);
        a.queue_left(t(1), 1);
        assert!(a.step_check().is_ok());
        a.queue_left(t(2), 2);
        assert!(matches!(
            a.step_check().unwrap_err().kind,
            AuditViolationKind::QueueConservation {
                entered: 1,
                left: 2
            }
        ));
    }

    #[test]
    fn tenant_ledgers_reconcile_when_complete() {
        let a = Auditor::new(AuditMode::Final);
        // Two tenants plus one untenanted job.
        a.job_admitted(t(0), 1, 50.0);
        a.tenant_job_admitted(t(0), Some(7), 1, 50.0);
        a.job_admitted(t(0), 2, 30.0);
        a.tenant_job_admitted(t(0), Some(8), 2, 30.0);
        a.job_admitted(t(0), 3, 20.0);
        a.tenant_job_admitted(t(0), None, 3, 20.0);
        for (job, tenant, work) in [(1, Some(7), 50.0), (2, Some(8), 30.0), (3, None, 20.0)] {
            a.work_executed(t(5), job, work);
            a.tenant_work_executed(t(5), tenant, job, work);
            a.job_completed(t(5), job);
            a.tenant_job_completed(t(5), tenant, job);
        }
        a.finalize(t(6), 0, 0.0).unwrap();
        let buckets = a.tenant_ledgers();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].0, None);
        assert_eq!(buckets[1].0, Some(7));
        assert_eq!(buckets[1].1.demanded, 50.0);
        assert_eq!(buckets[1].1.completed, 1);
    }

    #[test]
    fn missing_tenant_attribution_fails_finalize() {
        let a = Auditor::new(AuditMode::Final);
        a.job_admitted(t(0), 1, 50.0);
        a.tenant_job_admitted(t(0), Some(7), 1, 50.0);
        a.work_executed(t(5), 1, 50.0);
        // Forgot tenant_work_executed: the credited sums diverge.
        a.job_completed(t(5), 1);
        a.tenant_job_completed(t(5), Some(7), 1);
        let err = a.finalize(t(6), 0, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::TenantLedgerMismatch {
                field: "credited core-seconds",
                ..
            }
        ));
    }

    #[test]
    fn tenant_checks_are_inert_without_tenant_hooks() {
        // Pre-tenancy callers never touch the tenant hooks; finalize
        // must not demand reconciliation from them.
        let a = Auditor::new(AuditMode::Final);
        a.job_admitted(t(0), 1, 10.0);
        a.work_executed(t(1), 1, 10.0);
        a.job_completed(t(1), 1);
        a.finalize(t(2), 0, 0.0).unwrap();
        assert!(a.tenant_ledgers().is_empty());
    }

    #[test]
    fn tenant_lost_work_sums_to_global() {
        let a = Auditor::new(AuditMode::Final);
        a.job_admitted(t(0), 1, 40.0);
        a.tenant_job_admitted(t(0), Some(3), 1, 40.0);
        a.work_lost(t(2), 1, 12.0);
        a.tenant_work_lost(t(2), Some(3), 1, 12.0);
        a.work_executed(t(5), 1, 40.0);
        a.tenant_work_executed(t(5), Some(3), 1, 40.0);
        a.job_completed(t(5), 1);
        a.tenant_job_completed(t(5), Some(3), 1);
        a.finalize(t(6), 0, 12.0).unwrap();
        assert_eq!(a.tenant_ledgers()[0].1.lost, 12.0);
    }

    #[test]
    fn incomplete_jobs_fail_finalize() {
        let a = Auditor::new(AuditMode::Final);
        a.job_admitted(t(0), 1, 0.0);
        let err = a.finalize(t(5), 0, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::JobsConservation {
                admitted: 1,
                completed: 0
            }
        ));
    }

    #[test]
    fn spot_partition_reconciles_when_fed() {
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired(t(0), 0, 16);
        a.instance_acquired_spot(t(2), 1, 8);
        a.instance_released(t(10), 0);
        a.instance_released(t(7), 1);
        let od = 10_000_000u128 * 16;
        let spot = 5_000_000u128 * 8;
        a.spot_billed(spot);
        a.finalize(t(12), od + spot, 0.0).unwrap();
    }

    #[test]
    fn spot_seconds_billed_as_on_demand_fail_finalize() {
        // A spot instance whose seconds were never fed through
        // `spot_billed` — i.e. billed at the on-demand rate.
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired_spot(t(0), 1, 4);
        a.instance_released(t(10), 1);
        let err = a.finalize(t(12), 10_000_000u128 * 4, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::SpotSecondsMismatch { billed: 0, .. }
        ));
    }

    #[test]
    fn on_demand_seconds_billed_as_spot_fail_finalize() {
        let a = Auditor::new(AuditMode::Final);
        a.instance_acquired(t(0), 1, 4);
        a.instance_released(t(10), 1);
        a.spot_billed(10_000_000u128 * 4);
        let err = a.finalize(t(12), 10_000_000u128 * 4, 0.0).unwrap_err();
        assert!(matches!(
            err.kind,
            AuditViolationKind::SpotSecondsMismatch { observed: 0, .. }
        ));
    }

    #[test]
    fn time_inversion_violation_formats_context() {
        let v = AuditViolation::new(
            t(5),
            AuditViolationKind::TimeInversion {
                job: 42,
                context: "completion time",
                at_us: 100,
                earlier_us: 900,
            },
        );
        let msg = format!("{v}");
        assert!(msg.contains("completion time"), "{msg}");
        assert!(msg.contains("job 42"), "{msg}");
    }

    mod long_horizon_exactness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The u128 micro-vCPU-second path stays exact over ~500 h
            /// horizons and hundreds of instances: the ledger's observed
            /// total equals an independently-summed billed total with
            /// `==`, never a float tolerance. (500 h = 1.8e9 µs; times
            /// 64 vCPUs × hundreds of instances overflows u64 × u32
            /// products unless everything stays in u128.)
            #[test]
            fn billed_micro_vcpu_seconds_stay_exact(
                spans in prop::collection::vec(
                    (0u64..1_800_000u64, 1u64..1_800_000u64, 1u32..64u32, any::<bool>()),
                    1..200,
                )
            ) {
                let a = Auditor::new(AuditMode::Final);
                let horizon = 1_800_000u64; // 500 h in seconds
                let mut billed: u128 = 0;
                let mut spot_billed: u128 = 0;
                for (i, &(from, len, vcpus, spot)) in spans.iter().enumerate() {
                    let to = (from + len).min(horizon);
                    if spot {
                        a.instance_acquired_spot(t(from), i as u64, vcpus);
                    } else {
                        a.instance_acquired(t(from), i as u64, vcpus);
                    }
                    a.instance_released(t(to), i as u64);
                    let micro = (to - from) as u128 * 1_000_000u128 * vcpus as u128;
                    billed += micro;
                    if spot {
                        spot_billed += micro;
                    }
                }
                a.spot_billed(spot_billed);
                a.finalize(t(horizon), billed, 0.0).unwrap();
            }
        }
    }
}
