//! # hcloud-audit — the conservation-audit oracle
//!
//! The simulator's headline numbers (cost vs. performance across the five
//! provisioning strategies) are only as trustworthy as its conservation of
//! work, cores, and dollars. This crate is the end-to-end backstop: shadow
//! ledgers fed by the scheduler and runner, plus the identities that must
//! hold over them:
//!
//! * **Work**: core-seconds demanded by arriving batch jobs
//!   `==` core-seconds credited as executed (tick decrements + the
//!   remainder completed at finish); preemption losses cross-checked
//!   against the scheduler's `work_lost_core_secs` counter.
//! * **Cores**: per-instance bound cores stay within `[0, vCPUs]` under
//!   checked — never saturating — arithmetic.
//! * **Queue**: queue exits never outrun entries, and every admitted job
//!   completes exactly once.
//! * **Billing**: instance-seconds observed by the scheduler `==`
//!   instance-seconds billed by the provider's usage records, exactly, in
//!   integer micro-vCPU-seconds.
//!
//! The switchboard is [`AuditMode`], parsed from `HCLOUD_AUDIT` with the
//! same loud-failure contract as the other `HCLOUD_*` knobs: `off`
//! (default — byte-identical behaviour to an unaudited build), `final`
//! (identities checked at end of run), `strict` (violations abort at the
//! offending event). Violations are typed [`AuditViolation`]s stamped
//! with sim time.
//!
//! [`replay`] runs the trace-level subset of these checks over recorded
//! flight-recorder JSONL files (`hcloud-cli audit`).

pub mod ledger;
pub mod mode;
pub mod replay;

pub use ledger::{AuditSummary, AuditViolation, AuditViolationKind, Auditor, TenantLedger};
pub use mode::AuditMode;
pub use replay::{replay_file, ReplayStats};
