//! Property tests for the conservation-audit oracle.
//!
//! Two layers:
//!
//! * **Whole-system**: randomized `(fault plan, strategy, policy, seed)`
//!   points run real simulations under a strict auditor. Every
//!   conservation identity (work, billing, queue, jobs, per-instance
//!   cores) must hold on every clean run, faulted or not.
//! * **Ledger-level**: the instance-lifecycle ledger stays clean across
//!   a thousand random retention/reuse interleavings that follow the
//!   scheduler's retention-token rule — and flags the stale-timer
//!   release the rule exists to prevent.

use hcloud::runner::{run_scenario, RunCtx};
use hcloud::{MappingPolicy, RunConfig, StrategyKind};
use hcloud_audit::{AuditMode, AuditViolationKind, Auditor};
use hcloud_faults::FaultPlanId;
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::SimTime;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};
use proptest::prelude::*;
use rand::Rng;

/// A scenario small enough that a proptest case stays fast.
fn tiny_scenario(kind: ScenarioKind, seed: u64) -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(kind, 0.05, 10),
        &RngFactory::new(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fault plan x strategy x mapping policy x seed: the run
    /// completes and every conservation identity holds under a strict
    /// audit.
    #[test]
    fn randomized_runs_satisfy_every_conservation_identity(
        fault_idx in 0..FaultPlanId::ALL.len(),
        strategy_idx in 0..StrategyKind::ALL.len(),
        policy_idx in 0..MappingPolicy::paper_set().len(),
        kind_idx in 0..3usize,
        seed in 0u64..1000,
    ) {
        let faults = FaultPlanId::ALL[fault_idx];
        let strategy = StrategyKind::ALL[strategy_idx];
        let (_, policy) = MappingPolicy::paper_set()[policy_idx];
        let kind = [
            ScenarioKind::Static,
            ScenarioKind::LowVariability,
            ScenarioKind::HighVariability,
        ][kind_idx];
        let scenario = tiny_scenario(kind, seed);
        let config = RunConfig::new(strategy)
            .with_policy(policy)
            .with_faults(faults.plan());
        let auditor = Auditor::new(AuditMode::Strict);
        let factory = RngFactory::new(seed);
        let result = run_scenario(&scenario, &config, &RunCtx::new(&factory).with_auditor(&auditor));
        prop_assert!(
            result.is_ok(),
            "{faults:?}/{strategy}/{policy:?}/seed{seed}: {}",
            result.unwrap_err()
        );
        let summary = auditor.summary();
        prop_assert_eq!(summary.violations, 0);
        prop_assert_eq!(summary.jobs_admitted, scenario.jobs().len() as u64);
        prop_assert_eq!(summary.jobs_completed, summary.jobs_admitted);
        prop_assert_eq!(summary.queue_entered, summary.queue_left);
    }
}

/// Aggressive idle-retention churn (short and long retention windows,
/// many seeds) reuses pool slots constantly; the lifecycle ledger proves
/// no stale retention timer ever releases a reused instance.
#[test]
fn retention_churn_never_releases_a_reused_instance() {
    for &retention_mult in &[0.0, 0.5, 1.0, 4.0] {
        for seed in 0..4u64 {
            let scenario = tiny_scenario(ScenarioKind::HighVariability, seed);
            let config =
                RunConfig::new(StrategyKind::HybridMixed).with_retention_mult(retention_mult);
            let auditor = Auditor::new(AuditMode::Strict);
            let factory = RngFactory::new(seed);
            run_scenario(
                &scenario,
                &config,
                &RunCtx::new(&factory).with_auditor(&auditor),
            )
            .unwrap_or_else(|v| panic!("retention x{retention_mult} seed {seed}: {v}"));
            let summary = auditor.summary();
            assert_eq!(summary.violations, 0);
            assert!(
                summary.instances_released <= summary.instances_acquired,
                "retention x{retention_mult} seed {seed}"
            );
        }
    }
}

/// A thousand random interleavings of acquire / idle-park / timer-fire
/// over a small slot pool, following the retention-token rule (a timer
/// only releases the instance it was armed for, and only while that
/// instance still occupies the slot). The lifecycle ledger must stay
/// clean throughout.
#[test]
fn lifecycle_ledger_clean_across_random_retention_interleavings() {
    let mut rng = SimRng::from_seed_u64(0xA0D17);
    let auditor = Auditor::new(AuditMode::Strict);
    const SLOTS: usize = 8;
    let mut slots: Vec<Option<u64>> = vec![None; SLOTS];
    // Timers armed as (slot, cloud id at arming time). A fired timer is
    // stale when the slot has since been released and re-acquired.
    let mut timers: Vec<(usize, u64)> = Vec::new();
    let mut next_id = 0u64;
    for step in 0..1000u64 {
        let at = SimTime::from_secs(step + 1);
        match rng.gen_range(0..3) {
            0 => {
                if let Some(slot) = slots.iter().position(Option::is_none) {
                    let id = next_id;
                    next_id += 1;
                    auditor.instance_acquired(at, id, 4);
                    slots[slot] = Some(id);
                }
            }
            1 => {
                let occupied: Vec<usize> = (0..SLOTS).filter(|&s| slots[s].is_some()).collect();
                if !occupied.is_empty() {
                    let slot = occupied[rng.gen_range(0..occupied.len())];
                    let id = slots[slot].expect("occupied");
                    auditor.instance_idle(at, id);
                    timers.push((slot, id));
                }
            }
            _ => {
                if !timers.is_empty() {
                    let (slot, id) = timers.swap_remove(rng.gen_range(0..timers.len()));
                    // The token rule: release only if this exact instance
                    // still holds the slot; stale timers are ignored.
                    if slots[slot] == Some(id) {
                        auditor.instance_released(at, id);
                        slots[slot] = None;
                    }
                }
            }
        }
        auditor
            .step_check()
            .unwrap_or_else(|v| panic!("step {step}: {v}"));
    }
    assert!(auditor.violations().is_empty());
    let summary = auditor.summary();
    assert!(summary.instances_acquired > 100, "churn actually happened");
    assert!(summary.instances_released <= summary.instances_acquired);
}

/// The failure mode the token rule prevents, shown to be caught: honoring
/// a stale timer after a slot was reused releases the old instance a
/// second time, and the ledger flags it immediately.
#[test]
fn stale_timer_release_is_flagged_as_double_release() {
    let auditor = Auditor::new(AuditMode::Final);
    auditor.instance_acquired(SimTime::from_secs(0), 0, 4);
    auditor.instance_idle(SimTime::from_secs(10), 0);
    // The armed timer fires: instance 0 released, slot freed.
    auditor.instance_released(SimTime::from_secs(20), 0);
    // The slot is reused by a fresh acquisition.
    auditor.instance_acquired(SimTime::from_secs(30), 1, 4);
    // A buggy scheduler honors the stale timer anyway.
    auditor.instance_released(SimTime::from_secs(40), 0);
    let violations = auditor.violations();
    assert_eq!(violations.len(), 1);
    assert!(
        matches!(
            violations[0].kind,
            AuditViolationKind::DoubleRelease { instance: 0 }
        ),
        "{}",
        violations[0]
    );
}
