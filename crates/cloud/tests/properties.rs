//! Property-based tests for the cloud substrate.

use hcloud_cloud::{Cloud, CloudConfig, ExternalLoadModel, InstanceType, SpotMarket};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// External load stays within its documented bounds for any mean.
    #[test]
    fn external_level_bounds(mean in 0.0f64..=1.0, seed in any::<u64>(), server in any::<u64>(), t in 0u64..1_000_000) {
        let m = ExternalLoadModel::with_mean(mean);
        let f = RngFactory::new(seed);
        let level = m.level(&f, server, SimTime::from_secs(t));
        prop_assert!((0.0..=0.95).contains(&level), "level {level}");
    }

    /// Pressure scales with the external share and vanishes for full
    /// servers.
    #[test]
    fn pressure_respects_share(seed in any::<u64>(), server in any::<u64>(), t in 0u64..100_000) {
        let m = ExternalLoadModel::default();
        let f = RngFactory::new(seed);
        let t = SimTime::from_secs(t);
        let zero = m.pressure(&f, server, t, 0.0);
        prop_assert_eq!(zero.sum(), 0.0);
        let half = m.pressure(&f, server, t, 0.5).sum();
        let most = m.pressure(&f, server, t, 15.0 / 16.0).sum();
        prop_assert!(most >= half - 1e-12);
    }

    /// Spin-up samples are non-negative and zero under the instant model.
    #[test]
    fn spin_up_samples_bounded(seed in any::<u64>(), vcpus_idx in 0usize..5) {
        use hcloud_cloud::SpinUpModel;
        use hcloud_cloud::instance_type::VALID_SIZES;
        let itype = InstanceType::standard(VALID_SIZES[vcpus_idx]);
        let mut rng = hcloud_sim::rng::SimRng::from_seed_u64(seed);
        let d = SpinUpModel::default().sample(itype, &mut rng);
        prop_assert!(d.as_secs_f64() >= 0.0);
        prop_assert!(d.as_secs_f64() < 3600.0, "absurd spin-up {d}");
        let zero = SpinUpModel::instant().sample(itype, &mut rng);
        prop_assert_eq!(zero, SimDuration::ZERO);
    }

    /// Spot terminations never precede the acquisition instant, and
    /// higher bids never terminate earlier.
    #[test]
    fn spot_termination_ordering(seed in any::<u64>(), from in 0u64..100_000, bid in 0.1f64..1.5) {
        let m = SpotMarket::default();
        let f = RngFactory::new(seed);
        let from = SimTime::from_secs(from);
        let horizon = SimDuration::from_hours(4);
        let itype = InstanceType::standard(4);
        let low = m.first_termination(&f, itype, bid, from, horizon);
        let high = m.first_termination(&f, itype, bid + 0.5, from, horizon);
        if let Some(t) = low {
            prop_assert!(t >= from);
        }
        match (low, high) {
            (Some(a), Some(b)) => prop_assert!(b >= a, "higher bid terminated earlier"),
            (None, Some(_)) => prop_assert!(false, "higher bid terminated but lower survived"),
            _ => {}
        }
    }

    /// Usage records never have negative durations and spot records carry
    /// sub-unit multipliers on average.
    #[test]
    fn usage_records_are_sane(seed in any::<u64>(), release_after in 1u64..5000) {
        let mut cloud = Cloud::new(CloudConfig::default(), RngFactory::new(seed));
        let a = cloud.acquire(InstanceType::standard(2), SimTime::ZERO);
        let s = cloud.acquire_spot(InstanceType::standard(2), 0.6, SimTime::ZERO);
        cloud.release(a, SimTime::from_secs(release_after));
        cloud.release(s, SimTime::from_secs(release_after));
        for rec in cloud.usage_records(SimTime::from_secs(10_000)) {
            prop_assert!(rec.to >= rec.from);
            prop_assert!(rec.rate_multiplier > 0.0);
        }
    }

    /// Partitioning only ever reduces external pressure.
    #[test]
    fn partitioning_reduces_pressure(seed in any::<u64>(), iso in 0.0f64..=1.0, t in 0u64..50_000) {
        let mk = |partitioning: f64| {
            Cloud::new(
                CloudConfig {
                    partitioning,
                    ..CloudConfig::default()
                },
                RngFactory::new(seed),
            )
        };
        let mut plain = mk(0.0);
        let mut shielded = mk(iso);
        let a = plain.acquire(InstanceType::standard(1), SimTime::ZERO);
        let b = shielded.acquire(InstanceType::standard(1), SimTime::ZERO);
        let t = SimTime::from_secs(t);
        let p = plain.external_pressure(a, t).sum();
        let q = shielded.external_pressure(b, t).sum();
        prop_assert!(q <= p + 1e-12, "partitioned pressure {q} exceeds plain {p}");
    }
}
