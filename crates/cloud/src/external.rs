//! The external-load (interference) process.
//!
//! Section 2.2: "We model interference by imposing external load that
//! fluctuates ±10% around a 25% utilization." On top of that band the
//! model adds what Figures 1–2 demonstrate real clouds have:
//!
//! * **spatial variability** — each server gets a persistent load offset
//!   and a persistent per-resource mix (some neighbours are network-heavy,
//!   some cache-heavy);
//! * **temporal variability** — the level is re-drawn every `interval`
//!   (default 10 s), with occasional heavy spikes producing the long tails
//!   of the violin plots.
//!
//! The level is a **pure function** of `(rng factory, server seed, time)`:
//! no state is stored, two strategies observing the same server at the
//! same instant see the same interference, and experiments are exactly
//! repeatable — the property the paper's container methodology provides.

use hcloud_interference::ResourceVector;
use hcloud_sim::dist::{Normal, Sample, TruncatedNormal, Uniform};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

/// Configuration of the external-load process.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalLoadModel {
    /// Mean external utilization (the paper's default: 0.25).
    pub mean: f64,
    /// Half-width of the fluctuation band (the paper's ±10% ⇒ 0.10).
    pub fluctuation: f64,
    /// Std-dev of the persistent per-server offset (spatial variability).
    pub spatial_sigma: f64,
    /// Per-interval probability of an interference spike.
    pub spike_prob: f64,
    /// Spike magnitude range (added to the level).
    pub spike_range: (f64, f64),
    /// How often the temporal component is re-drawn.
    pub interval: SimDuration,
}

impl Default for ExternalLoadModel {
    fn default() -> Self {
        ExternalLoadModel {
            mean: 0.25,
            fluctuation: 0.10,
            spatial_sigma: 0.04,
            spike_prob: 0.015,
            spike_range: (0.25, 0.65),
            interval: SimDuration::from_secs(10),
        }
    }
}

impl ExternalLoadModel {
    /// The default process with a different mean utilization — the
    /// Figure 14b sweep knob (0–100% external load).
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&mean),
            "external mean must be in [0,1], got {mean}"
        );
        ExternalLoadModel {
            mean,
            ..ExternalLoadModel::default()
        }
    }

    /// A process with no external load at all (reserved servers).
    pub fn none() -> Self {
        ExternalLoadModel {
            mean: 0.0,
            fluctuation: 0.0,
            spatial_sigma: 0.0,
            spike_prob: 0.0,
            ..ExternalLoadModel::default()
        }
    }

    /// The external utilization level of server `server_seed` at `t`,
    /// in `[0, 0.95]`.
    pub fn level(&self, factory: &RngFactory, server_seed: u64, t: SimTime) -> f64 {
        if self.mean == 0.0 && self.spike_prob == 0.0 {
            return 0.0;
        }
        let spatial = {
            let mut rng = factory.indexed_stream("external.spatial", server_seed);
            Normal::new(0.0, self.spatial_sigma).sample(&mut rng)
        };
        let k = t.as_micros() / self.interval.as_micros().max(1);
        let idx = server_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k);
        let mut rng = factory.indexed_stream("external.temporal", idx);
        let temporal = if self.fluctuation > 0.0 {
            TruncatedNormal::new(
                0.0,
                self.fluctuation / 2.0,
                -self.fluctuation,
                self.fluctuation,
            )
            .sample(&mut rng)
        } else {
            0.0
        };
        let spike = if rng.gen::<f64>() < self.spike_prob {
            Uniform::new(self.spike_range.0, self.spike_range.1).sample(&mut rng)
        } else {
            0.0
        };
        (self.mean + spatial + temporal + spike).clamp(0.0, 0.95)
    }

    /// The per-resource mix direction of server `server_seed`: entries in
    /// `[0.6, 1.4]` with unit mean, persistent per server.
    pub fn mix(&self, factory: &RngFactory, server_seed: u64) -> ResourceVector {
        let mut rng = factory.indexed_stream("external.mix", server_seed);
        let raw = ResourceVector::from_fn(|_| Uniform::new(0.6, 1.4).sample(&mut rng));
        raw.scale(1.0 / raw.mean())
    }

    /// The external pressure vector an instance occupying `1 − share` of
    /// the server experiences: the level, capped by the share external
    /// tenants can occupy, spread along the server's resource mix.
    ///
    /// `share` is [`crate::InstanceType::external_share`]: 0 for a full
    /// server (⇒ zero pressure), 15/16 for a 1-vCPU slice.
    pub fn pressure(
        &self,
        factory: &RngFactory,
        server_seed: u64,
        t: SimTime,
        share: f64,
    ) -> ResourceVector {
        debug_assert!((0.0..=1.0).contains(&share), "share must be in [0,1]");
        if share == 0.0 {
            return ResourceVector::ZERO;
        }
        let level = self.level(factory, server_seed, t) * share;
        self.mix(factory, server_seed).scale(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> RngFactory {
        RngFactory::new(2024)
    }

    #[test]
    fn level_is_deterministic() {
        let m = ExternalLoadModel::default();
        let t = SimTime::from_secs(333);
        assert_eq!(m.level(&factory(), 5, t), m.level(&factory(), 5, t));
    }

    #[test]
    fn level_stays_constant_within_interval() {
        let m = ExternalLoadModel::default();
        let a = m.level(&factory(), 9, SimTime::from_secs(100));
        let b = m.level(&factory(), 9, SimTime::from_secs(109));
        assert_eq!(a, b);
    }

    #[test]
    fn level_varies_across_intervals_and_servers() {
        let m = ExternalLoadModel::default();
        let t = SimTime::from_secs(100);
        let a = m.level(&factory(), 1, t);
        let b = m.level(&factory(), 2, t);
        let c = m.level(&factory(), 1, SimTime::from_secs(200));
        assert!(a != b || a != c, "no variability observed");
    }

    #[test]
    fn long_run_mean_near_configured_mean() {
        let m = ExternalLoadModel::default();
        let f = factory();
        let n = 5000;
        let sum: f64 = (0..n)
            .map(|i| m.level(&f, i % 50, SimTime::from_secs(10 * i)))
            .sum();
        let mean = sum / n as f64;
        // Spikes push the mean slightly above 0.25.
        assert!((0.22..0.32).contains(&mean), "mean level {mean}");
    }

    #[test]
    fn levels_respect_bounds() {
        let m = ExternalLoadModel::default();
        let f = factory();
        for i in 0..2000 {
            let l = m.level(&f, i, SimTime::from_secs(i));
            assert!((0.0..=0.95).contains(&l), "level {l} out of bounds");
        }
    }

    #[test]
    fn none_model_is_silent() {
        let m = ExternalLoadModel::none();
        let f = factory();
        assert_eq!(m.level(&f, 1, SimTime::from_secs(5)), 0.0);
        assert_eq!(
            m.pressure(&f, 1, SimTime::from_secs(5), 0.9375),
            ResourceVector::ZERO
        );
    }

    #[test]
    fn full_server_sees_no_pressure() {
        let m = ExternalLoadModel::default();
        assert_eq!(
            m.pressure(&factory(), 3, SimTime::from_secs(50), 0.0),
            ResourceVector::ZERO
        );
    }

    #[test]
    fn pressure_scales_with_share() {
        let m = ExternalLoadModel::default();
        let f = factory();
        let t = SimTime::from_secs(77);
        let small = m.pressure(&f, 4, t, 15.0 / 16.0);
        let half = m.pressure(&f, 4, t, 0.5);
        assert!(small.sum() > half.sum());
    }

    #[test]
    fn mix_has_unit_mean_and_is_persistent() {
        let m = ExternalLoadModel::default();
        let f = factory();
        let mix = m.mix(&f, 11);
        assert!((mix.mean() - 1.0).abs() < 1e-9);
        assert_eq!(mix, m.mix(&f, 11));
        assert_ne!(mix, m.mix(&f, 12));
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let m = ExternalLoadModel::default();
        let f = factory();
        let n = 20_000u64;
        let spikes = (0..n)
            .filter(|&i| m.level(&f, i, SimTime::from_secs(10 * i)) > m.mean + m.fluctuation + 0.1)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((0.005..0.05).contains(&rate), "spike rate {rate}");
    }
}
