//! Instance spin-up (instantiation) overheads.
//!
//! Section 3.2: spin-up "is typically 12–19 seconds for GCE, although the
//! 95th percentile of spin-up overheads is 2 minutes. Smaller instances
//! tend to incur higher overheads." A single log-normal cannot put its p95
//! at ~8× its mean, so the model is a two-component mixture: a fast path
//! (log-normal around the per-size mean) and a rare slow path (log-normal
//! around ~2 minutes), matching both the body and the tail.

use hcloud_sim::dist::{LogNormal, Sample};
use hcloud_sim::SimDuration;
use rand::Rng;

use crate::instance_type::InstanceType;

/// The spin-up overhead model.
#[derive(Debug, Clone, PartialEq)]
pub struct SpinUpModel {
    /// Global multiplier on sampled overheads (the Figure 14a sweep knob).
    /// `1.0` reproduces GCE defaults; `0.0` makes spin-up free.
    scale: f64,
    /// Probability of hitting the slow path.
    slow_path_prob: f64,
    slow_path: LogNormal,
}

impl Default for SpinUpModel {
    fn default() -> Self {
        SpinUpModel {
            scale: 1.0,
            slow_path_prob: 0.06,
            // Slow path centered near the paper's 2-minute p95.
            slow_path: LogNormal::with_mean(115.0, 0.25),
        }
    }
}

impl SpinUpModel {
    /// A model whose *mean* overhead is rescaled so the fast-path mean of a
    /// full-server instance equals `mean_secs` (used by the Figure 14a
    /// sensitivity sweep, 0–120 s).
    pub fn with_mean_secs(mean_secs: f64) -> Self {
        assert!(mean_secs >= 0.0, "spin-up mean must be non-negative");
        let default_full = SpinUpModel::default().fast_mean_secs(InstanceType::full_server());
        SpinUpModel {
            scale: mean_secs / default_full,
            ..SpinUpModel::default()
        }
    }

    /// A model with no spin-up overhead at all (reserved resources are
    /// "readily available as jobs arrive", Section 3.1).
    pub fn instant() -> Self {
        SpinUpModel {
            scale: 0.0,
            ..SpinUpModel::default()
        }
    }

    /// The global scale multiplier.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Fast-path mean spin-up in seconds for an instance type. Smaller
    /// instances are slower: 12 s for a full server up to 19 s for micro.
    pub fn fast_mean_secs(&self, itype: InstanceType) -> f64 {
        let base = match itype.vcpus() {
            16 => 12.0,
            8 => 13.0,
            4 => 15.0,
            2 => 17.0,
            _ => {
                if itype.is_micro() {
                    19.0
                } else {
                    18.0
                }
            }
        };
        base * self.scale
    }

    /// The *expected* spin-up duration for sizing decisions (e.g. the
    /// hard-limit queueing comparison of Section 4.2 uses the expected
    /// overhead of a 16-vCPU instance).
    pub fn expected(&self, itype: InstanceType) -> SimDuration {
        let fast = self.fast_mean_secs(itype);
        let slow = self.slow_path.mean() * self.scale;
        let mean = fast * (1.0 - self.slow_path_prob) + slow * self.slow_path_prob;
        SimDuration::from_secs_f64(mean)
    }

    /// Samples one spin-up duration for an instance of `itype`.
    pub fn sample<R: Rng + ?Sized>(&self, itype: InstanceType, rng: &mut R) -> SimDuration {
        if self.scale == 0.0 {
            return SimDuration::ZERO;
        }
        let secs = if rng.gen::<f64>() < self.slow_path_prob {
            self.slow_path.sample(rng) * self.scale
        } else {
            LogNormal::with_mean(self.fast_mean_secs(itype), 0.30).sample(rng)
        };
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::rng::SimRng;
    use hcloud_sim::stats::percentile;

    fn samples(model: &SpinUpModel, itype: InstanceType, n: usize) -> Vec<f64> {
        let mut rng = SimRng::from_seed_u64(42);
        (0..n)
            .map(|_| model.sample(itype, &mut rng).as_secs_f64())
            .collect()
    }

    #[test]
    fn default_matches_paper_bands() {
        let m = SpinUpModel::default();
        let xs = samples(&m, InstanceType::full_server(), 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let p95 = percentile(&xs, 95.0).expect("20k samples are non-empty");
        // "typically 12-19 seconds ... 95th percentile is 2 minutes"
        assert!((12.0..25.0).contains(&mean), "mean spin-up {mean}");
        assert!((80.0..150.0).contains(&p95), "p95 spin-up {p95}");
    }

    #[test]
    fn smaller_instances_spin_up_slower() {
        let m = SpinUpModel::default();
        assert!(
            m.fast_mean_secs(InstanceType::MICRO) > m.fast_mean_secs(InstanceType::standard(16))
        );
        assert!(
            m.fast_mean_secs(InstanceType::standard(1))
                > m.fast_mean_secs(InstanceType::standard(8))
        );
    }

    #[test]
    fn instant_model_is_zero() {
        let m = SpinUpModel::instant();
        let mut rng = SimRng::from_seed_u64(7);
        assert_eq!(
            m.sample(InstanceType::standard(4), &mut rng),
            SimDuration::ZERO
        );
        assert_eq!(m.expected(InstanceType::standard(4)).as_micros(), 0);
    }

    #[test]
    fn with_mean_rescales() {
        let m = SpinUpModel::with_mean_secs(60.0);
        let xs = samples(&m, InstanceType::full_server(), 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // Mixture mean is above the fast-path mean of 60.
        assert!((60.0..110.0).contains(&mean), "rescaled mean {mean}");
    }

    #[test]
    fn expected_lies_between_fast_and_slow() {
        let m = SpinUpModel::default();
        let e = m.expected(InstanceType::standard(16)).as_secs_f64();
        assert!(e > m.fast_mean_secs(InstanceType::standard(16)));
        assert!(e < 115.0);
    }

    #[test]
    fn samples_are_positive() {
        let m = SpinUpModel::default();
        assert!(samples(&m, InstanceType::MICRO, 1000)
            .iter()
            .all(|&s| s > 0.0));
    }
}
