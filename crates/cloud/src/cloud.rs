//! The cloud front-end: acquiring, releasing and querying instances.
//!
//! [`Cloud`] is the interface provisioning strategies program against. It
//! hands out reserved instances (ready immediately, dedicated servers, no
//! external interference — Section 3.1) and on-demand instances (spin-up
//! overhead, external interference proportional to how much of the server
//! is left to other tenants). It also answers the two questions HCloud's
//! policies keep asking:
//!
//! * what **external pressure** is this instance under right now, and
//! * what **resource quality** is it therefore delivering.

use std::fmt;

use hcloud_faults::{AcquireFault, FaultInjector};
use hcloud_interference::{ResourceVector, SlowdownModel};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_telemetry::{trace_event, TraceKind, Tracer};

use crate::external::ExternalLoadModel;
use crate::instance_type::InstanceType;
use crate::provider::ProviderProfile;
use crate::spinup::SpinUpModel;
use crate::spot::SpotMarket;

/// Opaque handle to an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(u64);

impl InstanceId {
    /// The numeric handle, for telemetry and diagnostics.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The arena position behind this id. Cloud ids are append-only and
    /// never retired (released instances stay on the books for usage
    /// accounting), so an id is never stale.
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Cloud configuration: the substrate models behind the front-end.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CloudConfig {
    /// Spin-up overhead model for on-demand instances.
    pub spin_up: SpinUpModel,
    /// External-load process on shared servers.
    pub external: ExternalLoadModel,
    /// Contention → slowdown model.
    pub slowdown: SlowdownModel,
    /// Provider profile shaping variability and speeds.
    pub provider: ProviderProfile,
    /// The spot market (Section 5.5 extension).
    pub spot: SpotMarket,
    /// Degree of shared-resource partitioning in `[0, 1]` (Section 5.5:
    /// cache/memory/network partitioning reduces unpredictability).
    /// Scales down external pressure on the partitionable resources
    /// (LLC, memory bandwidth, network bandwidth).
    pub partitioning: f64,
}

/// One instance and its lifecycle timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    id: InstanceId,
    itype: InstanceType,
    reserved: bool,
    spot: bool,
    requested_at: SimTime,
    ready_at: SimTime,
    released_at: Option<SimTime>,
    /// When the spot market outbids this instance (spot instances only).
    terminates_at: Option<SimTime>,
    server_seed: u64,
    /// Injected straggler fate: `(onset, slowdown factor)` if this
    /// instance degrades.
    perf_fault: Option<(SimTime, f64)>,
}

impl Instance {
    /// The instance's handle.
    pub fn id(&self) -> InstanceId {
        self.id
    }
    /// The instance type.
    pub fn itype(&self) -> InstanceType {
        self.itype
    }
    /// Whether this is a reserved (vs on-demand) instance.
    pub fn is_reserved(&self) -> bool {
        self.reserved
    }
    /// When the instance was requested (billing starts here).
    pub fn requested_at(&self) -> SimTime {
        self.requested_at
    }
    /// When the instance becomes usable (after spin-up).
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }
    /// When the instance was released, if it has been.
    pub fn released_at(&self) -> Option<SimTime> {
        self.released_at
    }
    /// Whether the instance is still held at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.released_at.is_none_or(|t| t > now)
    }
    /// The spin-up overhead this instance paid.
    pub fn spin_up_overhead(&self) -> SimDuration {
        self.ready_at - self.requested_at
    }
    /// Whether this is a spot instance.
    pub fn is_spot(&self) -> bool {
        self.spot
    }
    /// When the spot market terminates this instance, if ever.
    pub fn terminates_at(&self) -> Option<SimTime> {
        self.terminates_at
    }
    /// The injected straggler fate `(onset, slowdown factor)`, if any.
    pub fn performance_fault(&self) -> Option<(SimTime, f64)> {
        self.perf_fault
    }
}

/// Why an acquisition attempt failed (fault injection only — without an
/// active fault plan, acquisition never fails).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcquireFailure {
    /// The provider transiently rejected the request.
    OutOfCapacity,
    /// The spin-up hung; the caller wasted `waited` before giving up.
    SpinUpTimeout {
        /// Wall time lost on the abandoned attempt.
        waited: SimDuration,
    },
}

/// A billing-relevant usage interval, consumed by `hcloud-pricing`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageRecord {
    /// The instance type used.
    pub itype: InstanceType,
    /// Whether the usage was on reserved resources.
    pub reserved: bool,
    /// Start of the interval (instance request time).
    pub from: SimTime,
    /// End of the interval (release time, or observation end).
    pub to: SimTime,
    /// Multiplier on the on-demand rate: 1.0 for ordinary on-demand
    /// usage, the time-averaged market multiplier for spot usage.
    pub rate_multiplier: f64,
    /// Whether this interval ran on a spot instance. Not part of any
    /// run digest — purely a billing/audit partition key.
    pub spot: bool,
}

impl UsageRecord {
    /// An ordinary (non-spot) usage record.
    pub fn new(itype: InstanceType, reserved: bool, from: SimTime, to: SimTime) -> UsageRecord {
        UsageRecord {
            itype,
            reserved,
            from,
            to,
            rate_multiplier: 1.0,
            spot: false,
        }
    }

    /// The billed duration.
    pub fn duration(&self) -> SimDuration {
        self.to.saturating_since(self.from)
    }
}

/// The simulated cloud provider.
#[derive(Debug, Clone)]
pub struct Cloud {
    config: CloudConfig,
    external: ExternalLoadModel,
    factory: RngFactory,
    spin_rng: SimRng,
    instances: Vec<Instance>,
    tracer: Tracer,
    injector: FaultInjector,
}

impl Cloud {
    /// Creates a cloud with the given configuration and RNG factory.
    ///
    /// The provider profile's variability multipliers are applied to the
    /// external-load model once, here.
    pub fn new(config: CloudConfig, factory: RngFactory) -> Self {
        Cloud::with_tracer(config, factory, Tracer::disabled())
    }

    /// Like [`Cloud::new`], but instance-lifecycle events (spin-up,
    /// release) are recorded into `tracer`.
    pub fn with_tracer(config: CloudConfig, factory: RngFactory, tracer: Tracer) -> Self {
        Cloud::with_instruments(config, factory, tracer, FaultInjector::disabled())
    }

    /// Like [`Cloud::with_tracer`], but acquisitions, spin-ups, spot
    /// terminations and delivered quality are additionally subject to the
    /// given fault injector. A disabled injector consumes no randomness
    /// and leaves every code path byte-identical to [`Cloud::new`].
    pub fn with_instruments(
        config: CloudConfig,
        factory: RngFactory,
        tracer: Tracer,
        injector: FaultInjector,
    ) -> Self {
        let external = config.provider.shape_external(&config.external);
        let spin_rng = factory.stream("cloud.spin_up");
        Cloud {
            config,
            external,
            factory,
            spin_rng,
            instances: Vec::new(),
            tracer,
            injector,
        }
    }

    /// The fault injector driving this cloud (disabled by default).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The configuration this cloud was built with.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// The (provider-shaped) external-load model in effect.
    pub fn external_model(&self) -> &ExternalLoadModel {
        &self.external
    }

    /// The contention model in effect.
    pub fn slowdown_model(&self) -> &SlowdownModel {
        &self.config.slowdown
    }

    /// Provisions `count` reserved full-server instances, ready
    /// immediately at `now` (reserved resources have no spin-up and no
    /// external interference).
    pub fn provision_reserved(&mut self, count: usize, now: SimTime) -> Vec<InstanceId> {
        (0..count)
            .map(|_| self.push_instance(InstanceType::full_server(), true, false, now, now, None))
            .collect()
    }

    /// Acquires one on-demand instance of `itype`. The instance is usable
    /// from [`Instance::ready_at`], after a sampled spin-up overhead.
    ///
    /// This path never fails: acquisition-level faults (capacity errors,
    /// timeouts) only apply through [`Cloud::try_acquire`]. Schedulers use
    /// it as the forced final fallback after a bounded retry loop, so a
    /// hostile fault plan can delay work but never live-lock the run.
    pub fn acquire(&mut self, itype: InstanceType, now: SimTime) -> InstanceId {
        self.spin_up_on_demand(itype, now, 1.0)
    }

    /// Acquires one on-demand instance, subject to fault injection.
    ///
    /// With an active fault plan, the attempt may be rejected outright
    /// ([`AcquireFailure::OutOfCapacity`]), hang and get abandoned
    /// ([`AcquireFailure::SpinUpTimeout`]), or succeed with a spiked
    /// spin-up. Without one, this is exactly [`Cloud::acquire`].
    pub fn try_acquire(
        &mut self,
        itype: InstanceType,
        now: SimTime,
    ) -> Result<InstanceId, AcquireFailure> {
        match self.injector.next_acquire_fault() {
            Some(AcquireFault::OutOfCapacity) => Err(AcquireFailure::OutOfCapacity),
            Some(AcquireFault::SpinUpTimeout(waited)) => {
                Err(AcquireFailure::SpinUpTimeout { waited })
            }
            Some(AcquireFault::SpinUpSpike(factor)) => {
                Ok(self.spin_up_on_demand(itype, now, factor))
            }
            None => Ok(self.spin_up_on_demand(itype, now, 1.0)),
        }
    }

    /// Samples spin-up (spiked by `spike` when > 1), creates the instance
    /// and records its lifecycle events.
    fn spin_up_on_demand(&mut self, itype: InstanceType, now: SimTime, spike: f64) -> InstanceId {
        let mut overhead = self.config.spin_up.sample(itype, &mut self.spin_rng);
        if spike > 1.0 {
            overhead = overhead.mul_f64(spike);
        }
        let id = self.push_instance(itype, false, false, now, now + overhead, None);
        trace_event!(
            self.tracer,
            now,
            TraceKind::InstanceSpinUp {
                instance: id.0,
                itype: itype.to_string(),
                vcpus: itype.vcpus(),
                spot: false,
                spin_up_us: overhead.as_micros(),
            }
        );
        if spike > 1.0 {
            trace_event!(
                self.tracer,
                now,
                TraceKind::FaultSpinUpSpike {
                    instance: id.0,
                    factor: spike,
                    spin_up_us: overhead.as_micros(),
                }
            );
        }
        id
    }

    /// Acquires one **spot** instance of `itype` at a bid of
    /// `bid_multiplier ×` the on-demand rate. The returned instance has a
    /// pre-determined [`Instance::terminates_at`] (the first market spike
    /// above the bid within 12 hours, if any); the caller must stop using
    /// it at that instant.
    pub fn acquire_spot(
        &mut self,
        itype: InstanceType,
        bid_multiplier: f64,
        now: SimTime,
    ) -> InstanceId {
        assert!(bid_multiplier > 0.0, "spot bid must be positive");
        let overhead = self.config.spin_up.sample(itype, &mut self.spin_rng);
        let ready = now + overhead;
        let market = self.config.spot.first_termination(
            &self.factory,
            itype,
            bid_multiplier,
            ready,
            SimDuration::from_hours(12),
        );
        // A correlated preemption storm revokes the instance even if the
        // market alone would have let it live.
        let storm = self.injector.storm_termination(ready);
        let terminates = match (market, storm) {
            (Some(m), Some(s)) => Some(m.min(s)),
            (m, s) => m.or(s),
        };
        let id = self.push_instance(itype, false, true, now, ready, terminates);
        trace_event!(
            self.tracer,
            now,
            TraceKind::InstanceSpinUp {
                instance: id.0,
                itype: itype.to_string(),
                vcpus: itype.vcpus(),
                spot: true,
                spin_up_us: overhead.as_micros(),
            }
        );
        if let Some(s) = storm {
            if market.is_none_or(|m| s < m) {
                trace_event!(
                    self.tracer,
                    now,
                    TraceKind::FaultStormPreemption {
                        instance: id.0,
                        termination_us: s.as_micros(),
                    }
                );
            }
        }
        id
    }

    fn push_instance(
        &mut self,
        itype: InstanceType,
        reserved: bool,
        spot: bool,
        requested_at: SimTime,
        ready_at: SimTime,
        terminates_at: Option<SimTime>,
    ) -> InstanceId {
        let id = InstanceId(self.instances.len() as u64);
        // Straggler fate is drawn per instance (pure in the id), but only
        // rented capacity degrades — the reserved pool is owned hardware.
        let perf_fault = if reserved {
            None
        } else {
            self.injector.degradation(id.0, ready_at)
        };
        if let Some((onset, factor)) = perf_fault {
            trace_event!(
                self.tracer,
                requested_at,
                TraceKind::FaultDegradation {
                    instance: id.0,
                    onset_us: onset.as_micros(),
                    factor,
                }
            );
        }
        self.instances.push(Instance {
            id,
            itype,
            reserved,
            spot,
            requested_at,
            ready_at,
            released_at: None,
            terminates_at,
            server_seed: id.0,
            perf_fault,
        });
        id
    }

    /// Releases an instance. Billing stops at `now`.
    ///
    /// # Panics
    /// Panics if the instance was already released.
    pub fn release(&mut self, id: InstanceId, now: SimTime) {
        let inst = self.slot_mut(id);
        assert!(inst.released_at.is_none(), "instance {id} released twice");
        inst.released_at = Some(now.max(inst.requested_at));
        trace_event!(
            self.tracer,
            now,
            TraceKind::InstanceReleased { instance: id.0 }
        );
    }

    /// Looks up an instance.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this cloud.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        self.slot(id)
    }

    /// Arena internals: the only places raw indexing is allowed.
    fn slot(&self, id: InstanceId) -> &Instance {
        &self.instances[id.index()]
    }

    fn slot_mut(&mut self, id: InstanceId) -> &mut Instance {
        &mut self.instances[id.index()]
    }

    /// All instances ever issued, in acquisition order (the y-axis of
    /// Figure 20).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The external pressure vector on `id` at `t`. Zero for reserved
    /// instances and full-server on-demand instances.
    pub fn external_pressure(&self, id: InstanceId, t: SimTime) -> ResourceVector {
        let inst = self.instance(id);
        if inst.reserved {
            return ResourceVector::ZERO;
        }
        let raw = self.external.pressure(
            &self.factory,
            inst.server_seed,
            t,
            inst.itype.external_share(),
        );
        if self.config.partitioning <= 0.0 {
            return raw;
        }
        // Resource partitioning (Section 5.5): caps on the partitionable
        // shared resources shield the instance from that fraction of
        // external pressure.
        use hcloud_interference::Resource;
        let iso = self.config.partitioning.clamp(0.0, 1.0);
        let mut shielded = raw;
        for r in [
            Resource::CacheLlc,
            Resource::MemBandwidth,
            Resource::NetBandwidth,
        ] {
            shielded[r] *= 1.0 - iso;
        }
        shielded
    }

    /// The resource quality `q ∈ (0, 1]` instance `id` delivers at `t`
    /// considering external interference only (co-scheduled jobs are the
    /// scheduler's own knowledge and are added by the caller).
    ///
    /// A degraded (straggler) instance delivers proportionally less once
    /// its onset time passes, so the QoS monitor sees the fault through
    /// the same signal as ordinary interference.
    pub fn delivered_quality(&self, id: InstanceId, t: SimTime) -> f64 {
        let pressure = self.external_pressure(id, t);
        self.config.slowdown.delivered_quality(&pressure) / self.fault_slowdown(id, t)
    }

    /// The injected straggler slowdown on `id` at `t`: `1.0` for healthy
    /// instances, the degradation factor once onset has passed.
    pub fn fault_slowdown(&self, id: InstanceId, t: SimTime) -> f64 {
        match self.instance(id).perf_fault {
            Some((onset, factor)) if t >= onset => factor,
            _ => 1.0,
        }
    }

    /// Number of instances still held at `now`.
    pub fn active_count(&self, now: SimTime) -> usize {
        self.instances.iter().filter(|i| i.is_active(now)).count()
    }

    /// Total vCPUs across instances still held at `now`, split as
    /// `(reserved, on_demand)`.
    pub fn active_vcpus(&self, now: SimTime) -> (u32, u32) {
        let mut reserved = 0;
        let mut on_demand = 0;
        for i in self.instances.iter().filter(|i| i.is_active(now)) {
            if i.reserved {
                reserved += i.itype.vcpus();
            } else {
                on_demand += i.itype.vcpus();
            }
        }
        (reserved, on_demand)
    }

    /// Usage records for billing, closing still-active instances at
    /// `observation_end`.
    pub fn usage_records(&self, observation_end: SimTime) -> Vec<UsageRecord> {
        self.instances
            .iter()
            .map(|i| {
                let to = i
                    .released_at
                    .unwrap_or(observation_end)
                    .min(observation_end)
                    .max(i.requested_at);
                let rate_multiplier = if i.spot {
                    self.config
                        .spot
                        .average_multiplier(&self.factory, i.itype, i.requested_at, to)
                } else {
                    1.0
                };
                UsageRecord {
                    itype: i.itype,
                    reserved: i.reserved,
                    from: i.requested_at,
                    to,
                    rate_multiplier,
                    spot: i.spot,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Cloud {
        Cloud::new(CloudConfig::default(), RngFactory::new(7))
    }

    #[test]
    fn reserved_instances_are_ready_immediately() {
        let mut c = cloud();
        let now = SimTime::from_secs(10);
        let ids = c.provision_reserved(3, now);
        assert_eq!(ids.len(), 3);
        for id in ids {
            let inst = c.instance(id);
            assert!(inst.is_reserved());
            assert_eq!(inst.ready_at(), now);
            assert_eq!(inst.spin_up_overhead(), SimDuration::ZERO);
            assert!(inst.itype().is_full_server());
        }
    }

    #[test]
    fn on_demand_pays_spin_up() {
        let mut c = cloud();
        let now = SimTime::from_secs(0);
        let id = c.acquire(InstanceType::standard(4), now);
        let inst = c.instance(id);
        assert!(!inst.is_reserved());
        assert!(inst.ready_at() > now, "spin-up should be non-zero");
        assert!(inst.spin_up_overhead() >= SimDuration::from_secs(1));
    }

    #[test]
    fn reserved_sees_no_external_pressure() {
        let mut c = cloud();
        let id = c.provision_reserved(1, SimTime::ZERO)[0];
        let t = SimTime::from_secs(500);
        assert_eq!(c.external_pressure(id, t), ResourceVector::ZERO);
        assert_eq!(c.delivered_quality(id, t), 1.0);
    }

    #[test]
    fn full_server_on_demand_sees_no_external_pressure() {
        let mut c = cloud();
        let id = c.acquire(InstanceType::full_server(), SimTime::ZERO);
        let t = SimTime::from_secs(500);
        assert_eq!(c.external_pressure(id, t), ResourceVector::ZERO);
    }

    #[test]
    fn small_instances_see_pressure_and_lower_quality() {
        let mut c = cloud();
        let small = c.acquire(InstanceType::standard(1), SimTime::ZERO);
        // Average over time: individual instants can be quiet.
        let mean_q: f64 = (1..=50)
            .map(|k| c.delivered_quality(small, SimTime::from_secs(10 * k)))
            .sum::<f64>()
            / 50.0;
        assert!(mean_q < 0.99, "small instance quality mean {mean_q}");
        assert!(mean_q > 0.5);
    }

    #[test]
    fn bigger_slices_deliver_better_quality_on_average() {
        let mut c = cloud();
        let mut mean_for = |itype: InstanceType| {
            let id = c.acquire(itype, SimTime::ZERO);
            (1..=200)
                .map(|k| c.delivered_quality(id, SimTime::from_secs(10 * k)))
                .sum::<f64>()
                / 200.0
        };
        let q1 = mean_for(InstanceType::standard(1));
        let q8 = mean_for(InstanceType::standard(8));
        let q16 = mean_for(InstanceType::standard(16));
        assert!(q1 < q8, "q1={q1} q8={q8}");
        assert!(q8 < q16, "q8={q8} q16={q16}");
        assert_eq!(q16, 1.0);
    }

    #[test]
    fn release_and_activity_accounting() {
        let mut c = cloud();
        let a = c.acquire(InstanceType::standard(2), SimTime::ZERO);
        let _b = c.acquire(InstanceType::standard(4), SimTime::ZERO);
        assert_eq!(c.active_count(SimTime::from_secs(1)), 2);
        c.release(a, SimTime::from_secs(100));
        assert_eq!(c.active_count(SimTime::from_secs(200)), 1);
        let (res, od) = c.active_vcpus(SimTime::from_secs(200));
        assert_eq!((res, od), (0, 4));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut c = cloud();
        let a = c.acquire(InstanceType::standard(2), SimTime::ZERO);
        c.release(a, SimTime::from_secs(1));
        c.release(a, SimTime::from_secs(2));
    }

    #[test]
    fn usage_records_clip_to_observation_end() {
        let mut c = cloud();
        let a = c.acquire(InstanceType::standard(2), SimTime::from_secs(10));
        c.release(a, SimTime::from_secs(50));
        let _b = c.acquire(InstanceType::standard(4), SimTime::from_secs(20));
        let records = c.usage_records(SimTime::from_secs(40));
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].to, SimTime::from_secs(40)); // clipped
        assert_eq!(records[1].duration(), SimDuration::from_secs(20));
    }

    #[test]
    fn determinism_across_identical_clouds() {
        let mut c1 = cloud();
        let mut c2 = cloud();
        let a1 = c1.acquire(InstanceType::standard(2), SimTime::ZERO);
        let a2 = c2.acquire(InstanceType::standard(2), SimTime::ZERO);
        assert_eq!(c1.instance(a1).ready_at(), c2.instance(a2).ready_at());
        let t = SimTime::from_secs(123);
        assert_eq!(c1.external_pressure(a1, t), c2.external_pressure(a2, t));
    }
}
