//! Cloud provider profiles.
//!
//! Figures 1–2 contrast Amazon EC2 and Google Compute Engine: "EC2
//! achieves higher average performance than GCE \[for Hadoop\], but
//! exhibits worse tail performance", while for memcached "GCE now achieves
//! better average and tail performance", and on EC2 "several \[micro\]
//! jobs fail to complete due to the internal EC2 scheduler terminating the
//! VM". [`ProviderProfile`] captures those differences as multipliers on
//! the external-load process plus workload-class speed factors.

use crate::external::ExternalLoadModel;

/// Tunable characteristics of a cloud provider.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderProfile {
    /// Human-readable name ("GCE", "EC2").
    pub name: &'static str,
    /// Speed multiplier for batch work (>1 ⇒ faster completion).
    pub batch_speed: f64,
    /// Speed multiplier for latency-critical service (>1 ⇒ lower latency).
    pub latency_speed: f64,
    /// Multiplier on the external model's spike probability (tail
    /// heaviness).
    pub spike_prob_mult: f64,
    /// Multiplier on spatial variability.
    pub spatial_mult: f64,
    /// Probability a micro-instance job is killed by the provider's
    /// internal scheduler before completing (EC2 micro behaviour).
    pub micro_kill_prob: f64,
}

impl ProviderProfile {
    /// Google Compute Engine: the paper's main evaluation platform.
    /// Baseline speeds, moderate variability, no micro terminations.
    pub fn gce() -> Self {
        ProviderProfile {
            name: "GCE",
            batch_speed: 1.0,
            latency_speed: 1.0,
            spike_prob_mult: 1.0,
            spatial_mult: 1.0,
            micro_kill_prob: 0.0,
        }
    }

    /// Amazon EC2: faster batch on average but heavier tails, worse
    /// latency service, and micro instances that sometimes get terminated.
    pub fn ec2() -> Self {
        ProviderProfile {
            name: "EC2",
            batch_speed: 1.15,
            latency_speed: 0.85,
            spike_prob_mult: 2.5,
            spatial_mult: 1.6,
            micro_kill_prob: 0.12,
        }
    }

    /// Applies this profile's variability multipliers to an external-load
    /// model.
    pub fn shape_external(&self, base: &ExternalLoadModel) -> ExternalLoadModel {
        ExternalLoadModel {
            spike_prob: (base.spike_prob * self.spike_prob_mult).min(1.0),
            spatial_sigma: base.spatial_sigma * self.spatial_mult,
            ..base.clone()
        }
    }
}

impl Default for ProviderProfile {
    fn default() -> Self {
        ProviderProfile::gce()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_has_heavier_tails_than_gce() {
        let base = ExternalLoadModel::default();
        let gce = ProviderProfile::gce().shape_external(&base);
        let ec2 = ProviderProfile::ec2().shape_external(&base);
        assert!(ec2.spike_prob > gce.spike_prob);
        assert!(ec2.spatial_sigma > gce.spatial_sigma);
    }

    #[test]
    fn speed_factors_match_figures_1_and_2() {
        let gce = ProviderProfile::gce();
        let ec2 = ProviderProfile::ec2();
        // Fig 1: EC2 faster on batch. Fig 2: GCE better on memcached.
        assert!(ec2.batch_speed > gce.batch_speed);
        assert!(ec2.latency_speed < gce.latency_speed);
        // Only EC2 kills micro instances.
        assert_eq!(gce.micro_kill_prob, 0.0);
        assert!(ec2.micro_kill_prob > 0.0);
    }

    #[test]
    fn default_is_gce() {
        assert_eq!(ProviderProfile::default(), ProviderProfile::gce());
    }

    #[test]
    fn shape_external_clamps_spike_prob() {
        let base = ExternalLoadModel {
            spike_prob: 0.9,
            ..ExternalLoadModel::default()
        };
        let shaped = ProviderProfile::ec2().shape_external(&base);
        assert!(shaped.spike_prob <= 1.0);
    }
}
