//! # hcloud-cloud — the cloud provider substrate
//!
//! The HCloud paper evaluates on Google Compute Engine, partitioning the
//! largest (16-vCPU) servers into smaller instances with Linux containers
//! and injecting controlled external interference (Section 2.2). This crate
//! reproduces that environment as a deterministic model:
//!
//! * [`instance_type`] — the instance catalog (micro, st1–st16, and the
//!   compute-/memory-optimized families OdM may request);
//! * [`spinup`] — VM instantiation overheads: 12–19 s means with a 2-minute
//!   95th percentile, higher for smaller instances (Section 3.2);
//! * [`external`] — the external-load process: interference fluctuating
//!   ±10% around a 25% mean, with spatial (per-server) and temporal
//!   variability and occasional heavy spikes — the source of the
//!   unpredictability in Figures 1–2;
//! * [`provider`] — provider profiles (GCE, EC2) differing in average
//!   performance, tail heaviness, and micro-instance failures;
//! * [`cloud`] — the [`cloud::Cloud`] front-end: acquire/release instances,
//!   query readiness, external pressure and delivered resource quality.
//!
//! Everything is a pure function of `(master seed, instance id, time)`, so
//! experiments are reproducible and the external interference is
//! *repeatable across provisioning strategies* — the property the paper
//! engineered its container methodology to get.

pub mod cloud;
pub mod external;
pub mod instance_type;
pub mod provider;
pub mod spinup;
pub mod spot;

pub use cloud::{AcquireFailure, Cloud, CloudConfig, Instance, InstanceId, UsageRecord};
pub use external::ExternalLoadModel;
pub use instance_type::{Family, InstanceType};
pub use provider::ProviderProfile;
pub use spinup::SpinUpModel;
pub use spot::SpotMarket;
