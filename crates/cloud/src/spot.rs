//! Spot-instance market model (the paper's Section 5.5 extension).
//!
//! "Spot instances consist of unallocated resources that cloud providers
//! make available through a bidding interface. Spot instances do not have
//! availability guarantees, and may be terminated at any point if the
//! market price exceeds the bidding price. Incorporating spot instances
//! in provisioning for non-critical tasks or jobs with very relaxed
//! performance requirements can further improve cost-efficiency. We will
//! consider how spot instances interact with the current provisioning
//! strategies in future work."
//!
//! [`SpotMarket`] models the market price as a per-family piecewise
//! process: a discounted base level (mean ~30–40% of the on-demand rate)
//! with lognormal wiggle and occasional demand spikes that shoot past the
//! on-demand price — the shape Ben-Yehuda et al. (the paper's reference
//! \[9\]) measured on EC2. Like the external-load process, the price is a
//! **pure function** of `(rng factory, family, time)`, so termination
//! times are deterministic and strategies can be compared fairly.

use hcloud_sim::dist::{LogNormal, Sample, Uniform};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

use crate::instance_type::{Family, InstanceType};

/// The spot-market price process.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotMarket {
    /// Mean price as a multiple of the on-demand rate (~0.35 on EC2).
    pub discount_mean: f64,
    /// Lognormal sigma of the per-interval wiggle.
    pub volatility: f64,
    /// Per-interval probability of a demand spike.
    pub spike_prob: f64,
    /// Spike price range, as multiples of the on-demand rate.
    pub spike_range: (f64, f64),
    /// Repricing interval.
    pub interval: SimDuration,
}

impl Default for SpotMarket {
    fn default() -> Self {
        SpotMarket {
            discount_mean: 0.35,
            volatility: 0.20,
            spike_prob: 0.02,
            spike_range: (1.1, 3.0),
            interval: SimDuration::from_mins(5),
        }
    }
}

impl SpotMarket {
    /// The market price of `family` at `t`, as a multiple of the
    /// on-demand rate. Deterministic in `(factory, family, t)`.
    pub fn price_multiplier(&self, factory: &RngFactory, family: Family, t: SimTime) -> f64 {
        let k = t.as_micros() / self.interval.as_micros().max(1);
        let fam = match family {
            Family::Standard => 0u64,
            Family::ComputeOptimized => 1,
            Family::MemoryOptimized => 2,
        };
        let idx = fam.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k);
        let mut rng = factory.indexed_stream("spot.price", idx);
        if rng.gen::<f64>() < self.spike_prob {
            return Uniform::new(self.spike_range.0, self.spike_range.1).sample(&mut rng);
        }
        LogNormal::with_mean(self.discount_mean, self.volatility).sample(&mut rng)
    }

    /// The first instant at or after `from` (searching up to `horizon`)
    /// at which the market price exceeds `bid_multiplier` — i.e. when an
    /// instance bid at that level gets terminated. `None` if the bid
    /// survives the whole horizon.
    pub fn first_termination(
        &self,
        factory: &RngFactory,
        itype: InstanceType,
        bid_multiplier: f64,
        from: SimTime,
        horizon: SimDuration,
    ) -> Option<SimTime> {
        let end = from.saturating_add(horizon);
        let mut k = from.as_micros() / self.interval.as_micros().max(1);
        loop {
            let t = SimTime::from_micros(k * self.interval.as_micros());
            if t > end {
                return None;
            }
            let probe = t.max(from);
            if self.price_multiplier(factory, itype.family(), probe) > bid_multiplier {
                return Some(probe);
            }
            k += 1;
        }
    }

    /// The average price multiplier over `[from, to)`, for billing spot
    /// usage.
    pub fn average_multiplier(
        &self,
        factory: &RngFactory,
        itype: InstanceType,
        from: SimTime,
        to: SimTime,
    ) -> f64 {
        if to <= from {
            return self.discount_mean;
        }
        let step = self.interval;
        let mut t = from;
        let mut sum = 0.0;
        let mut n = 0usize;
        while t < to {
            sum += self.price_multiplier(factory, itype.family(), t).min(3.0);
            n += 1;
            t += step;
        }
        if n == 0 {
            self.discount_mean
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> RngFactory {
        RngFactory::new(77)
    }

    #[test]
    fn prices_are_deterministic_and_positive() {
        let m = SpotMarket::default();
        let t = SimTime::from_secs(1234);
        let a = m.price_multiplier(&factory(), Family::Standard, t);
        let b = m.price_multiplier(&factory(), Family::Standard, t);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn long_run_mean_is_discounted() {
        let m = SpotMarket::default();
        let f = factory();
        let n = 5000u64;
        let mean: f64 = (0..n)
            .map(|k| m.price_multiplier(&f, Family::Standard, SimTime::from_secs(300 * k)))
            .sum::<f64>()
            / n as f64;
        assert!(
            (0.3..0.55).contains(&mean),
            "spot should be deeply discounted on average, got {mean}"
        );
    }

    #[test]
    fn families_price_independently() {
        let m = SpotMarket::default();
        let f = factory();
        let t = SimTime::from_secs(900);
        let st = m.price_multiplier(&f, Family::Standard, t);
        let mem = m.price_multiplier(&f, Family::MemoryOptimized, t);
        // Different streams; equality would be a (vanishingly unlikely)
        // coincidence.
        assert_ne!(st, mem);
    }

    #[test]
    fn low_bids_terminate_quickly_high_bids_survive() {
        let m = SpotMarket::default();
        let f = factory();
        let itype = InstanceType::standard(4);
        let horizon = SimDuration::from_hours(6);
        let low = m.first_termination(&f, itype, 0.2, SimTime::ZERO, horizon);
        let high = m.first_termination(&f, itype, 10.0, SimTime::ZERO, horizon);
        assert!(low.is_some(), "a 0.2x bid must be outbid quickly");
        assert_eq!(high, None, "a 10x bid survives any spike");
    }

    #[test]
    fn termination_is_at_or_after_acquisition() {
        let m = SpotMarket::default();
        let f = factory();
        let from = SimTime::from_secs(4321);
        if let Some(t) = m.first_termination(
            &f,
            InstanceType::standard(2),
            0.4,
            from,
            SimDuration::from_hours(4),
        ) {
            assert!(t >= from);
        }
    }

    #[test]
    fn average_multiplier_is_bounded() {
        let m = SpotMarket::default();
        let f = factory();
        let avg = m.average_multiplier(
            &f,
            InstanceType::standard(4),
            SimTime::ZERO,
            SimTime::from_secs(3600 * 5),
        );
        assert!((0.2..1.0).contains(&avg), "avg multiplier {avg}");
        // Degenerate interval falls back to the mean.
        assert_eq!(
            m.average_multiplier(&f, InstanceType::standard(4), SimTime::ZERO, SimTime::ZERO),
            m.discount_mean
        );
    }
}
