//! The instance catalog.
//!
//! The paper's experiments use 1-vCPU micro instances, 1–8 vCPU standard
//! instances (`st1`–`st8`), and 16-vCPU memory-optimized instances (`m16`)
//! for Figures 1–2; the provisioning strategies partition 16-vCPU servers
//! into `{1, 2, 4, 8, 16}`-vCPU slices (Section 2.2), and OdM may request
//! standard, compute-optimized, or memory-optimized types (Section 3.3).

use std::fmt;

/// An instance family, mirroring the standard / compute-optimized /
/// memory-optimized split on GCE and EC2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Balanced vCPU:memory ratio (GCE `n1-standard`).
    Standard,
    /// Higher vCPU:memory ratio (GCE `n1-highcpu`).
    ComputeOptimized,
    /// Lower vCPU:memory ratio (GCE `n1-highmem`).
    MemoryOptimized,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 3] = [
        Family::Standard,
        Family::ComputeOptimized,
        Family::MemoryOptimized,
    ];

    /// Memory per vCPU in GB for this family.
    pub fn memory_per_vcpu_gb(self) -> f64 {
        match self {
            Family::Standard => 3.75,
            Family::ComputeOptimized => 0.9,
            Family::MemoryOptimized => 6.5,
        }
    }

    /// Short prefix used in type names (`st`, `c`, `m`).
    fn prefix(self) -> &'static str {
        match self {
            Family::Standard => "st",
            Family::ComputeOptimized => "c",
            Family::MemoryOptimized => "m",
        }
    }
}

/// A concrete instance type: a family, a size, and whether it is the
/// shared-core "micro" type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceType {
    family: Family,
    vcpus: u32,
    micro: bool,
}

/// Number of vCPUs on a full physical server (the largest instance).
pub const SERVER_VCPUS: u32 = 16;

/// The slice sizes servers may be partitioned into (Section 2.2: "we only
/// partition servers at the granularity of existing GCE instances").
pub const VALID_SIZES: [u32; 5] = [1, 2, 4, 8, 16];

impl InstanceType {
    /// The shared-core 1-vCPU micro instance.
    pub const MICRO: InstanceType = InstanceType {
        family: Family::Standard,
        vcpus: 1,
        micro: true,
    };

    /// Creates a standard instance with `vcpus` vCPUs.
    ///
    /// # Panics
    /// Panics if `vcpus` is not one of [`VALID_SIZES`].
    pub fn standard(vcpus: u32) -> InstanceType {
        InstanceType::new(Family::Standard, vcpus)
    }

    /// Creates an instance of the given family and size.
    ///
    /// # Panics
    /// Panics if `vcpus` is not one of [`VALID_SIZES`].
    pub fn new(family: Family, vcpus: u32) -> InstanceType {
        assert!(
            VALID_SIZES.contains(&vcpus),
            "invalid instance size {vcpus}; sizes are {VALID_SIZES:?}"
        );
        InstanceType {
            family,
            vcpus,
            micro: false,
        }
    }

    /// The largest standard instance (a full server). SR, OdF and the
    /// reserved portion of the hybrids use only this type.
    pub fn full_server() -> InstanceType {
        InstanceType::standard(SERVER_VCPUS)
    }

    /// The 16-vCPU memory-optimized instance from Figures 1–2.
    pub fn m16() -> InstanceType {
        InstanceType::new(Family::MemoryOptimized, SERVER_VCPUS)
    }

    /// The family.
    pub fn family(self) -> Family {
        self.family
    }

    /// Number of vCPUs.
    pub fn vcpus(self) -> u32 {
        self.vcpus
    }

    /// Whether this is the shared-core micro type.
    pub fn is_micro(self) -> bool {
        self.micro
    }

    /// Memory allocation in GB.
    pub fn memory_gb(self) -> f64 {
        if self.micro {
            0.6
        } else {
            self.family.memory_per_vcpu_gb() * self.vcpus as f64
        }
    }

    /// Whether the instance occupies a full server (and therefore sees no
    /// external interference beyond the network).
    pub fn is_full_server(self) -> bool {
        self.vcpus == SERVER_VCPUS
    }

    /// The fraction of a server left to external tenants: 0 for a full
    /// server, 15/16 for a 1-vCPU slice. This caps how much external
    /// pressure an instance can experience, which is why larger instances
    /// are more predictable (Figures 1–2).
    pub fn external_share(self) -> f64 {
        1.0 - self.vcpus as f64 / SERVER_VCPUS as f64
    }

    /// The smallest valid instance size with at least `vcpus` vCPUs.
    /// Returns `None` if the request exceeds a full server.
    pub fn smallest_fitting(vcpus: u32) -> Option<u32> {
        VALID_SIZES.iter().copied().find(|&s| s >= vcpus)
    }

    /// The catalog used in Figures 1–2: micro, st1, st2, st8, m16.
    pub fn figure12_catalog() -> Vec<InstanceType> {
        vec![
            InstanceType::MICRO,
            InstanceType::standard(1),
            InstanceType::standard(2),
            InstanceType::standard(8),
            InstanceType::m16(),
        ]
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micro {
            write!(f, "micro")
        } else {
            write!(f, "{}{}", self.family.prefix(), self.vcpus)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(InstanceType::MICRO.to_string(), "micro");
        assert_eq!(InstanceType::standard(8).to_string(), "st8");
        assert_eq!(InstanceType::m16().to_string(), "m16");
        assert_eq!(
            InstanceType::new(Family::ComputeOptimized, 4).to_string(),
            "c4"
        );
    }

    #[test]
    #[should_panic(expected = "invalid instance size")]
    fn rejects_off_catalog_sizes() {
        InstanceType::standard(3);
    }

    #[test]
    fn external_share_shrinks_with_size() {
        let shares: Vec<f64> = VALID_SIZES
            .iter()
            .map(|&s| InstanceType::standard(s).external_share())
            .collect();
        for w in shares.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(InstanceType::full_server().external_share(), 0.0);
        assert!(InstanceType::full_server().is_full_server());
    }

    #[test]
    fn smallest_fitting_rounds_up() {
        assert_eq!(InstanceType::smallest_fitting(1), Some(1));
        assert_eq!(InstanceType::smallest_fitting(3), Some(4));
        assert_eq!(InstanceType::smallest_fitting(9), Some(16));
        assert_eq!(InstanceType::smallest_fitting(17), None);
    }

    #[test]
    fn memory_scales_with_family() {
        assert!(InstanceType::m16().memory_gb() > InstanceType::standard(16).memory_gb());
        assert!(
            InstanceType::new(Family::ComputeOptimized, 16).memory_gb()
                < InstanceType::standard(16).memory_gb()
        );
        assert!(InstanceType::MICRO.memory_gb() < 1.0);
    }

    #[test]
    fn figure12_catalog_is_ordered_small_to_large() {
        let cat = InstanceType::figure12_catalog();
        assert_eq!(cat.len(), 5);
        for w in cat.windows(2) {
            assert!(w[0].vcpus() <= w[1].vcpus());
        }
    }
}
