//! The per-run fault sampling engine.

use hcloud_sim::dist::{Exponential, Sample};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

use crate::plan::FaultPlan;

/// How far ahead storm and dropout windows are precomputed. Far beyond any
/// scenario the harness runs (the longest paper scenario is hours).
const WINDOW_HORIZON: SimDuration = SimDuration::from_hours(24 * 7);

/// Hard cap on precomputed windows, bounding memory under extreme
/// intensities.
const MAX_WINDOWS: usize = 100_000;

/// A fault injected into a single instance-acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcquireFault {
    /// The provider rejected the request outright (transient).
    OutOfCapacity,
    /// The spin-up hung and was abandoned after this much wall time.
    SpinUpTimeout(SimDuration),
    /// The spin-up completes, but this much slower than sampled.
    SpinUpSpike(f64),
}

/// Deterministic fault sampler for one simulation run.
///
/// Every fault class draws from its own named stream of the dedicated
/// `faults` factory, so an off plan consumes no randomness (off runs stay
/// byte-identical to builds without fault injection) and an enabled plan
/// reproduces the same schedule for any `HCLOUD_JOBS` worker count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    factory: RngFactory,
    /// Precomputed `[start, end)` storm windows, sorted.
    storms: Vec<(SimTime, SimTime)>,
    /// Precomputed `[start, end)` monitor-dropout windows, sorted.
    dropouts: Vec<(SimTime, SimTime)>,
    /// Acquisition attempts seen so far; indexes the per-attempt stream.
    acquisitions: u64,
}

/// Draws Poisson-process `[start, end)` windows over [`WINDOW_HORIZON`].
fn windows(
    factory: &RngFactory,
    stream: &str,
    mean_interval: SimDuration,
    duration: SimDuration,
    intensity: f64,
) -> Vec<(SimTime, SimTime)> {
    let mut rng = factory.stream(stream);
    let gap = Exponential::with_mean(mean_interval.as_secs_f64() / intensity);
    let horizon = SimTime::ZERO + WINDOW_HORIZON;
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    while out.len() < MAX_WINDOWS {
        t += SimDuration::from_secs_f64(gap.sample(&mut rng));
        if t >= horizon {
            break;
        }
        let end = t + duration;
        out.push((t, end));
        // Advance past the window (at least one tick, so zero-length
        // windows under extreme intensity can't stall the loop).
        t = end + SimDuration::from_micros(1);
    }
    out
}

/// First window with `end > t`, if any (sorted windows).
fn next_window(windows: &[(SimTime, SimTime)], t: SimTime) -> Option<(SimTime, SimTime)> {
    let idx = windows.partition_point(|&(_, end)| end <= t);
    windows.get(idx).copied()
}

impl FaultInjector {
    /// Builds the injector for one run. `factory` must be a factory
    /// dedicated to fault injection (conventionally `root.child("faults")`)
    /// so its streams never collide with model streams.
    pub fn new(plan: FaultPlan, factory: RngFactory) -> Self {
        let mut storms = Vec::new();
        let mut dropouts = Vec::new();
        if !plan.is_off() {
            if let Some(s) = &plan.storms {
                storms = windows(
                    &factory,
                    "storms",
                    s.mean_interval,
                    s.duration,
                    plan.intensity,
                );
            }
            if let Some(d) = &plan.monitor {
                dropouts = windows(
                    &factory,
                    "dropouts",
                    d.mean_interval,
                    d.duration,
                    plan.intensity,
                );
            }
        }
        FaultInjector {
            plan,
            factory,
            storms,
            dropouts,
            acquisitions: 0,
        }
    }

    /// An injector that never injects anything (and never draws).
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::off(), RngFactory::new(0))
    }

    /// Whether any fault class is active.
    pub fn is_enabled(&self) -> bool {
        !self.plan.is_off()
    }

    /// The plan this injector samples from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Samples the fault (if any) for the next acquisition attempt.
    ///
    /// Each attempt draws from its own indexed stream, so the outcome
    /// depends only on the master seed and the attempt's ordinal — never
    /// on how many random numbers other subsystems consumed.
    pub fn next_acquire_fault(&mut self) -> Option<AcquireFault> {
        if self.plan.is_off() {
            return None;
        }
        let seq = self.acquisitions;
        self.acquisitions += 1;
        let mut rng = self.factory.indexed_stream("acquire", seq);
        if let Some(c) = &self.plan.capacity {
            if rng.gen::<f64>() < self.plan.scaled_prob(c.error_prob) {
                return Some(AcquireFault::OutOfCapacity);
            }
        }
        if let Some(s) = &self.plan.spin_up {
            if rng.gen::<f64>() < self.plan.scaled_prob(s.timeout_prob) {
                return Some(AcquireFault::SpinUpTimeout(s.timeout));
            }
            if rng.gen::<f64>() < self.plan.scaled_prob(s.spike_prob) {
                return Some(AcquireFault::SpinUpSpike(s.spike_factor));
            }
        }
        None
    }

    /// Straggler fate for an instance: `(onset time, slowdown factor)` if
    /// the instance degrades. Pure in `instance_seed` — re-querying the
    /// same instance gives the same answer without consuming state.
    pub fn degradation(&self, instance_seed: u64, ready: SimTime) -> Option<(SimTime, f64)> {
        let d = self.plan.degradation.as_ref()?;
        if self.plan.is_off() {
            return None;
        }
        let mut rng = self.factory.indexed_stream("degradation", instance_seed);
        if rng.gen::<f64>() >= self.plan.scaled_prob(d.prob) {
            return None;
        }
        let onset = Exponential::with_mean(d.mean_onset.as_secs_f64().max(1e-6));
        let delay = SimDuration::from_secs_f64(onset.sample(&mut rng));
        Some((ready + delay, d.slowdown))
    }

    /// When a spot instance becoming ready at `from` is hit by the next
    /// preemption storm: `from` itself if a storm is already raging, else
    /// the next storm's onset (if any within the horizon).
    pub fn storm_termination(&self, from: SimTime) -> Option<SimTime> {
        let (start, _) = next_window(&self.storms, from)?;
        Some(start.max(from))
    }

    /// Whether `t` falls inside a preemption-storm window.
    pub fn in_storm(&self, t: SimTime) -> bool {
        next_window(&self.storms, t).is_some_and(|(start, _)| start <= t)
    }

    /// Whether the QoS monitor signal is dropped at `t`.
    pub fn monitor_dropped(&self, t: SimTime) -> bool {
        next_window(&self.dropouts, t).is_some_and(|(start, _)| start <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanId;

    fn injector(id: FaultPlanId, seed: u64) -> FaultInjector {
        FaultInjector::new(id.plan(), RngFactory::new(seed).child("faults"))
    }

    #[test]
    fn disabled_injector_injects_nothing() {
        let mut inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for _ in 0..100 {
            assert_eq!(inj.next_acquire_fault(), None);
        }
        assert_eq!(inj.degradation(7, SimTime::ZERO), None);
        assert_eq!(inj.storm_termination(SimTime::ZERO), None);
        assert!(!inj.monitor_dropped(SimTime::from_secs(100)));
    }

    #[test]
    fn schedules_are_reproducible_for_the_same_seed() {
        let mk = || injector(FaultPlanId::FullChaos, 42);
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(a.storms, b.storms);
        assert_eq!(a.dropouts, b.dropouts);
        for _ in 0..500 {
            assert_eq!(a.next_acquire_fault(), b.next_acquire_fault());
        }
        for seed in 0..50 {
            assert_eq!(
                a.degradation(seed, SimTime::from_secs(30)),
                b.degradation(seed, SimTime::from_secs(30))
            );
        }
    }

    #[test]
    fn different_seeds_give_different_storm_schedules() {
        assert_ne!(
            injector(FaultPlanId::PreemptionStorms, 1).storms,
            injector(FaultPlanId::PreemptionStorms, 2).storms
        );
    }

    #[test]
    fn acquire_faults_occur_at_plausible_rates() {
        let mut inj = injector(FaultPlanId::FlakySpinups, 7);
        let mut timeouts = 0;
        let mut capacity = 0;
        let mut spikes = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            match inj.next_acquire_fault() {
                Some(AcquireFault::OutOfCapacity) => capacity += 1,
                Some(AcquireFault::SpinUpTimeout(d)) => {
                    assert!(d > SimDuration::ZERO);
                    timeouts += 1;
                }
                Some(AcquireFault::SpinUpSpike(f)) => {
                    assert!(f > 1.0);
                    spikes += 1;
                }
                None => {}
            }
        }
        // flaky-spinups: capacity 8%, timeout 6% (of non-capacity), spike 10%.
        assert!(
            (0.06..0.10).contains(&(capacity as f64 / N as f64)),
            "{capacity}"
        );
        assert!(
            (0.04..0.08).contains(&(timeouts as f64 / N as f64)),
            "{timeouts}"
        );
        assert!(
            (0.06..0.11).contains(&(spikes as f64 / N as f64)),
            "{spikes}"
        );
    }

    #[test]
    fn degradation_is_pure_in_the_instance_seed() {
        let inj = injector(FaultPlanId::DegradedFleet, 3);
        let ready = SimTime::from_secs(12);
        for seed in 0..200 {
            let first = inj.degradation(seed, ready);
            assert_eq!(first, inj.degradation(seed, ready), "seed {seed}");
            if let Some((onset, factor)) = first {
                assert!(onset >= ready);
                assert!(factor > 1.0);
            }
        }
        let hits = (0..2000)
            .filter(|&s| inj.degradation(s, ready).is_some())
            .count();
        assert!((100..400).contains(&hits), "~12% of 2000, got {hits}");
    }

    #[test]
    fn storm_windows_cover_termination_queries() {
        let inj = injector(FaultPlanId::PreemptionStorms, 11);
        assert!(!inj.storms.is_empty(), "storms scheduled within horizon");
        let (start, end) = inj.storms[0];
        assert!(start < end);
        // Before the first storm: terminate at its onset.
        assert_eq!(inj.storm_termination(SimTime::ZERO), Some(start));
        // Inside a storm: terminate immediately.
        assert_eq!(inj.storm_termination(start), Some(start));
        assert!(inj.in_storm(start));
        // Windows are sorted and disjoint.
        for pair in inj.storms.windows(2) {
            assert!(pair[0].1 <= pair[1].0);
        }
    }

    #[test]
    fn dropout_windows_gate_the_monitor() {
        let inj = injector(FaultPlanId::MonitorBlackout, 13);
        assert!(!inj.dropouts.is_empty());
        let (start, end) = inj.dropouts[0];
        assert!(inj.monitor_dropped(start));
        assert!(!inj.monitor_dropped(end), "windows are half-open");
        if start > SimTime::ZERO {
            assert!(!inj.monitor_dropped(SimTime::ZERO));
        }
    }

    #[test]
    fn intensity_scales_storm_frequency() {
        let mk = |i: f64| {
            FaultInjector::new(
                FaultPlanId::PreemptionStorms.plan().with_intensity(i),
                RngFactory::new(5).child("faults"),
            )
        };
        let calm = mk(0.5).storms.len();
        let wild = mk(4.0).storms.len();
        assert!(wild > calm * 2, "intensity 4 vs 0.5: {wild} vs {calm}");
        assert!(mk(0.0).storms.is_empty(), "zero intensity means no storms");
    }
}
