//! Fault plans: typed, named bundles of fault schedules.

use std::fmt;

use hcloud_sim::SimDuration;

/// Identifier for a built-in fault plan, selectable via `HCLOUD_FAULTS`.
///
/// This is a `Copy` handle (suitable for experiment contexts that must stay
/// `Copy`); call [`FaultPlanId::plan`] to materialize the full schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlanId {
    /// No fault injection (the default).
    #[default]
    Off,
    /// Correlated spot-preemption storms only.
    PreemptionStorms,
    /// Spin-up latency spikes, hard spin-up timeouts and transient
    /// out-of-capacity errors on acquisition.
    FlakySpinups,
    /// Instance performance degradation / straggler onset.
    DegradedFleet,
    /// QoS-monitor signal dropouts.
    MonitorBlackout,
    /// Every fault class at moderate intensity.
    FullChaos,
}

impl FaultPlanId {
    /// Every built-in plan, in presentation order.
    pub const ALL: [FaultPlanId; 6] = [
        FaultPlanId::Off,
        FaultPlanId::PreemptionStorms,
        FaultPlanId::FlakySpinups,
        FaultPlanId::DegradedFleet,
        FaultPlanId::MonitorBlackout,
        FaultPlanId::FullChaos,
    ];

    /// The wire/env name of the plan.
    pub fn name(self) -> &'static str {
        match self {
            FaultPlanId::Off => "off",
            FaultPlanId::PreemptionStorms => "preemption-storms",
            FaultPlanId::FlakySpinups => "flaky-spinups",
            FaultPlanId::DegradedFleet => "degraded-fleet",
            FaultPlanId::MonitorBlackout => "monitor-blackout",
            FaultPlanId::FullChaos => "full-chaos",
        }
    }

    /// One-line description for `hcloud-cli faults`.
    pub fn description(self) -> &'static str {
        match self {
            FaultPlanId::Off => "no fault injection (default)",
            FaultPlanId::PreemptionStorms => {
                "correlated spot-preemption storms that evict every spot instance"
            }
            FaultPlanId::FlakySpinups => {
                "spin-up latency spikes, hard spin-up timeouts, transient out-of-capacity errors"
            }
            FaultPlanId::DegradedFleet => {
                "straggler onset: some instances silently degrade after a while"
            }
            FaultPlanId::MonitorBlackout => {
                "QoS-monitor signal dropouts that stale the quality distributions"
            }
            FaultPlanId::FullChaos => "every fault class at moderate intensity",
        }
    }

    /// Parses an `HCLOUD_FAULTS` value. `None` (unset) means off; any
    /// value that is not a built-in plan name is a hard error — a typoed
    /// fault plan silently running fault-free would invalidate a whole
    /// resilience study.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        let Some(value) = value else {
            return Ok(FaultPlanId::Off);
        };
        FaultPlanId::ALL
            .iter()
            .copied()
            .find(|id| id.name() == value)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultPlanId::ALL.iter().map(|id| id.name()).collect();
                format!(
                    "invalid HCLOUD_FAULTS {value:?}: expected one of {}",
                    names.join(", ")
                )
            })
    }

    /// Materializes the full fault schedule for this plan.
    pub fn plan(self) -> FaultPlan {
        let storms = StormSchedule {
            mean_interval: SimDuration::from_mins(40),
            duration: SimDuration::from_mins(4),
        };
        let spin_up = SpinUpFaultSchedule {
            spike_prob: 0.10,
            spike_factor: 6.0,
            timeout_prob: 0.06,
            timeout: SimDuration::from_secs(120),
        };
        let capacity = CapacitySchedule { error_prob: 0.08 };
        let degradation = DegradationSchedule {
            prob: 0.12,
            mean_onset: SimDuration::from_mins(10),
            slowdown: 1.8,
        };
        let monitor = DropoutSchedule {
            mean_interval: SimDuration::from_mins(30),
            duration: SimDuration::from_mins(5),
        };
        let base = FaultPlan::named(self.name());
        match self {
            FaultPlanId::Off => base,
            FaultPlanId::PreemptionStorms => FaultPlan {
                storms: Some(storms),
                ..base
            },
            FaultPlanId::FlakySpinups => FaultPlan {
                spin_up: Some(spin_up),
                capacity: Some(capacity),
                ..base
            },
            FaultPlanId::DegradedFleet => FaultPlan {
                degradation: Some(degradation),
                ..base
            },
            FaultPlanId::MonitorBlackout => FaultPlan {
                monitor: Some(monitor),
                ..base
            },
            FaultPlanId::FullChaos => FaultPlan {
                storms: Some(storms),
                spin_up: Some(spin_up),
                capacity: Some(capacity),
                degradation: Some(degradation),
                monitor: Some(monitor),
                ..base
            },
        }
    }
}

impl fmt::Display for FaultPlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Correlated spot-preemption storms.
///
/// Storm onsets follow a Poisson process; during a storm window every spot
/// instance is preempted (the market-sampled termination time is overridden
/// by the storm), modeling the provider reclaiming a whole capacity pool at
/// once rather than instances failing independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSchedule {
    /// Mean gap between storm onsets.
    pub mean_interval: SimDuration,
    /// How long each storm lasts.
    pub duration: SimDuration,
}

/// Spin-up latency spikes and hard spin-up timeouts, layered on top of
/// [`SpinUpModel::sample`]'s log-normal draw.
///
/// [`SpinUpModel::sample`]: https://docs.rs/hcloud-cloud
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpinUpFaultSchedule {
    /// Probability that an acquisition's spin-up is spiked.
    pub spike_prob: f64,
    /// Multiplier applied to the sampled spin-up overhead on a spike.
    pub spike_factor: f64,
    /// Probability that an acquisition times out entirely.
    pub timeout_prob: f64,
    /// Wall time wasted before a timed-out acquisition is abandoned.
    pub timeout: SimDuration,
}

/// Transient out-of-capacity errors on instance acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitySchedule {
    /// Probability that an acquisition attempt is rejected outright.
    pub error_prob: f64,
}

/// Instance performance degradation (straggler onset).
///
/// A degraded instance silently slows down by `slowdown` once its onset
/// time passes — delivered quality drops and batch progress stalls, so the
/// scheduler's QoS machinery has to notice and react.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSchedule {
    /// Probability that a freshly acquired instance is a straggler.
    pub prob: f64,
    /// Mean delay (exponential) between readiness and degradation onset.
    pub mean_onset: SimDuration,
    /// Performance divisor once degraded (1.8 = 1.8x slower).
    pub slowdown: f64,
}

/// QoS-monitor signal dropouts.
///
/// During a dropout window the scheduler receives no quality samples, so
/// the per-type quality distributions the P8 dynamic policy relies on go
/// stale (the policy must degrade gracefully to its static soft limit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutSchedule {
    /// Mean gap between dropout onsets.
    pub mean_interval: SimDuration,
    /// How long each dropout lasts.
    pub duration: SimDuration,
}

/// A typed bundle of fault schedules, the unit of configuration carried by
/// `RunConfig::faults`.
///
/// `intensity` scales every schedule at sampling time: probabilities are
/// multiplied (and clamped to 0.95 so retry loops always terminate), storm
/// and dropout onset rates are multiplied. Intensity `0.0` disables the
/// plan entirely; `1.0` is the plan as written.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name, for display and cache keys.
    pub name: &'static str,
    /// Global scale on fault probability/frequency.
    pub intensity: f64,
    /// Correlated spot-preemption storms.
    pub storms: Option<StormSchedule>,
    /// Spin-up spikes and timeouts.
    pub spin_up: Option<SpinUpFaultSchedule>,
    /// Transient out-of-capacity errors.
    pub capacity: Option<CapacitySchedule>,
    /// Straggler onset.
    pub degradation: Option<DegradationSchedule>,
    /// QoS-monitor dropouts.
    pub monitor: Option<DropoutSchedule>,
}

impl FaultPlan {
    fn named(name: &'static str) -> Self {
        FaultPlan {
            name,
            intensity: 1.0,
            storms: None,
            spin_up: None,
            capacity: None,
            degradation: None,
            monitor: None,
        }
    }

    /// The empty plan: injects nothing, consumes no randomness.
    pub fn off() -> Self {
        FaultPlan::named("off")
    }

    /// Whether this plan injects nothing at all.
    pub fn is_off(&self) -> bool {
        self.intensity <= 0.0
            || (self.storms.is_none()
                && self.spin_up.is_none()
                && self.capacity.is_none()
                && self.degradation.is_none()
                && self.monitor.is_none())
    }

    /// Returns the plan with its intensity scaled (see [`FaultPlan`]).
    ///
    /// # Panics
    /// Panics if `intensity` is negative or non-finite.
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "fault intensity must be a non-negative finite number, got {intensity}"
        );
        self.intensity = intensity;
        self
    }

    /// A probability from a schedule, scaled by intensity and clamped so
    /// that repeated independent draws always eventually succeed.
    pub(crate) fn scaled_prob(&self, p: f64) -> f64 {
        (p * self.intensity).clamp(0.0, 0.95)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_env_means_off() {
        assert_eq!(FaultPlanId::parse(None), Ok(FaultPlanId::Off));
    }

    #[test]
    fn every_builtin_name_round_trips() {
        for id in FaultPlanId::ALL {
            assert_eq!(FaultPlanId::parse(Some(id.name())), Ok(id));
            assert_eq!(format!("{id}"), id.name());
        }
    }

    #[test]
    fn malformed_values_are_hard_errors() {
        let err = FaultPlanId::parse(Some("chaos")).unwrap_err();
        assert!(err.contains("invalid HCLOUD_FAULTS"), "{err}");
        assert!(err.contains("full-chaos"), "error lists valid names: {err}");
        assert!(FaultPlanId::parse(Some("")).is_err());
        assert!(FaultPlanId::parse(Some("OFF")).is_err(), "case-sensitive");
    }

    #[test]
    fn off_plans_know_they_are_off() {
        assert!(FaultPlan::off().is_off());
        assert!(FaultPlanId::Off.plan().is_off());
        assert!(FaultPlan::default().is_off());
        assert!(FaultPlanId::FullChaos.plan().with_intensity(0.0).is_off());
        for id in FaultPlanId::ALL {
            if id != FaultPlanId::Off {
                assert!(!id.plan().is_off(), "{id} should be active");
            }
        }
    }

    #[test]
    fn intensity_scales_and_clamps_probabilities() {
        let plan = FaultPlanId::FlakySpinups.plan();
        let p = plan.spin_up.expect("flaky-spinups has spin-up faults");
        assert_eq!(plan.scaled_prob(p.timeout_prob), p.timeout_prob);
        let double = plan.clone().with_intensity(2.0);
        assert!((double.scaled_prob(p.timeout_prob) - 2.0 * p.timeout_prob).abs() < 1e-12);
        let extreme = plan.with_intensity(1e9);
        assert_eq!(extreme.scaled_prob(p.timeout_prob), 0.95);
    }

    #[test]
    #[should_panic(expected = "fault intensity must be a non-negative")]
    fn negative_intensity_is_rejected() {
        let _ = FaultPlan::off().with_intensity(-1.0);
    }

    #[test]
    fn full_chaos_enables_every_class() {
        let plan = FaultPlanId::FullChaos.plan();
        assert!(plan.storms.is_some());
        assert!(plan.spin_up.is_some());
        assert!(plan.capacity.is_some());
        assert!(plan.degradation.is_some());
        assert!(plan.monitor.is_some());
    }
}
