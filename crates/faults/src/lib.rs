//! # hcloud-faults — deterministic fault injection for the simulation
//!
//! HCloud's central argument is that on-demand and hybrid provisioning must
//! survive a hostile substrate: spot terminations, long-tailed spin-up
//! times (Fig. 14 of the paper), transient capacity shortages and
//! instance-quality variability. This crate layers a **deterministic,
//! seeded fault-injection engine** on top of the simulation so those
//! conditions can be reproduced bit-for-bit.
//!
//! The building blocks:
//!
//! * [`FaultPlan`] — a typed bundle of fault schedules: correlated
//!   spot-preemption storms, spin-up latency spikes and hard spin-up
//!   timeouts, transient out-of-capacity errors on acquisition, instance
//!   performance degradation (straggler onset), and QoS-monitor signal
//!   dropouts. A plan with no schedules is "off" and injects nothing.
//! * [`FaultPlanId`] — the built-in named plans selectable through the
//!   `HCLOUD_FAULTS=off|<plan-name>` environment variable (malformed
//!   values are a hard error, like `HCLOUD_SEED`/`HCLOUD_TRACE`).
//! * [`FaultInjector`] — the per-run sampling engine. Every fault class
//!   draws from its own named [`rng::RngFactory`] stream (all under the
//!   `faults` child factory), so
//!   - an **off** plan consumes no randomness at all and leaves every
//!     existing stream untouched (byte-identical runs), and
//!   - an enabled plan produces the same schedule for any worker count
//!     (`HCLOUD_JOBS`), because streams depend only on the master seed.
//!
//! [`rng::RngFactory`]: hcloud_sim::rng::RngFactory

mod injector;
mod plan;

pub use injector::{AcquireFault, FaultInjector};
pub use plan::{
    CapacitySchedule, DegradationSchedule, DropoutSchedule, FaultPlan, FaultPlanId,
    SpinUpFaultSchedule, StormSchedule,
};
