//! Hourly list prices per instance type.
//!
//! Rates follow the GCE list-price structure of the paper's era:
//! `n1-standard-1` at $0.05/hour, high-memory at a ~1.25× per-vCPU
//! premium, high-cpu at a ~0.76× per-vCPU discount, and the shared-core
//! micro at $0.008/hour. Prices scale linearly with vCPUs within a family.

use hcloud_cloud::{Family, InstanceType};

/// The on-demand hourly price table.
#[derive(Debug, Clone, PartialEq)]
pub struct Rates {
    /// Dollars per standard vCPU-hour.
    pub standard_vcpu_hour: f64,
    /// Per-vCPU multiplier for memory-optimized instances.
    pub memory_optimized_mult: f64,
    /// Per-vCPU multiplier for compute-optimized instances.
    pub compute_optimized_mult: f64,
    /// Flat hourly price of the shared-core micro instance.
    pub micro_hour: f64,
}

impl Default for Rates {
    fn default() -> Self {
        Rates {
            standard_vcpu_hour: 0.05,
            memory_optimized_mult: 1.25,
            compute_optimized_mult: 0.76,
            micro_hour: 0.008,
        }
    }
}

impl Rates {
    /// The on-demand hourly price of `itype`.
    pub fn on_demand_hourly(&self, itype: InstanceType) -> f64 {
        if itype.is_micro() {
            return self.micro_hour;
        }
        let mult = match itype.family() {
            Family::Standard => 1.0,
            Family::MemoryOptimized => self.memory_optimized_mult,
            Family::ComputeOptimized => self.compute_optimized_mult,
        };
        self.standard_vcpu_hour * mult * itype.vcpus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_prices_scale_with_vcpus() {
        let r = Rates::default();
        assert!((r.on_demand_hourly(InstanceType::standard(1)) - 0.05).abs() < 1e-12);
        assert!((r.on_demand_hourly(InstanceType::standard(16)) - 0.80).abs() < 1e-12);
    }

    #[test]
    fn family_multipliers_apply() {
        let r = Rates::default();
        let st = r.on_demand_hourly(InstanceType::standard(16));
        let mem = r.on_demand_hourly(InstanceType::m16());
        let cpu = r.on_demand_hourly(InstanceType::new(Family::ComputeOptimized, 16));
        assert!(mem > st && cpu < st);
    }

    #[test]
    fn micro_is_flat_priced() {
        let r = Rates::default();
        assert_eq!(r.on_demand_hourly(InstanceType::MICRO), 0.008);
    }
}
