//! Pricing models and cost accounting.
//!
//! Three models, mirroring Section 5.3:
//!
//! * **Reserved + on-demand** (AWS-style, the paper's default): reserved
//!   capacity bills at `on-demand / ratio` per hour (ratio ≈ 2.74) but
//!   commits to 1-year terms charged upfront; on-demand bills hourly.
//! * **Sustained-use discounts** (GCE-style): everything is on-demand, but
//!   the effective hourly rate drops the larger the fraction of the
//!   billing month an instance is in use (up to 30% off for a full month).
//! * **On-demand only** (Azure-style): flat hourly billing.
//!
//! Two billing horizons, matching the paper's two kinds of cost figures:
//!
//! * [`run_cost`] — per-run hourly billing (Figures 5, 11, 12, 17), where
//!   reserved usage is charged at its per-hour rate;
//! * [`commitment_cost`] — absolute cost over a multi-week deployment
//!   (Figure 13), where reserved capacity pays full 1-year terms upfront
//!   (doubling past 52 weeks) and the per-run on-demand spend repeats for
//!   the duration.

use hcloud_cloud::{InstanceType, UsageRecord};
use hcloud_sim::SimDuration;

use crate::rates::Rates;

/// AWS-style reserved + on-demand pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservedOnDemandPricing {
    /// The per-hour price ratio of on-demand to reserved resources
    /// (Section 5.1: "the current average cost ratio ... is 2.74").
    pub od_to_reserved_ratio: f64,
    /// Reservation term (1 year — "the shortest contract for reserved
    /// resources on EC2", Section 3.1).
    pub term: SimDuration,
}

impl Default for ReservedOnDemandPricing {
    fn default() -> Self {
        ReservedOnDemandPricing {
            od_to_reserved_ratio: 2.74,
            term: SimDuration::from_hours(24 * 7 * 52),
        }
    }
}

impl ReservedOnDemandPricing {
    /// A model with a different on-demand:reserved ratio (the Figure 12
    /// sweep knob).
    ///
    /// # Panics
    /// Panics if `ratio` is not strictly positive.
    pub fn with_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "price ratio must be positive, got {ratio}");
        ReservedOnDemandPricing {
            od_to_reserved_ratio: ratio,
            ..ReservedOnDemandPricing::default()
        }
    }

    /// The reserved hourly price of `itype`.
    pub fn reserved_hourly(&self, rates: &Rates, itype: InstanceType) -> f64 {
        rates.on_demand_hourly(itype) / self.od_to_reserved_ratio
    }

    /// Upfront cost of reserving `itype` for enough whole terms to cover
    /// `duration` (a 60-week deployment pays two 1-year terms).
    pub fn upfront_cost(&self, rates: &Rates, itype: InstanceType, duration: SimDuration) -> f64 {
        let terms = (duration.as_hours_f64() / self.term.as_hours_f64())
            .ceil()
            .max(1.0);
        self.reserved_hourly(rates, itype) * self.term.as_hours_f64() * terms
    }
}

/// GCE-style sustained-use discounts.
///
/// GCE discounts each successive quarter of a month of usage: the first
/// 25% bills at 100%, then 80%, 60%, 40% — an instance used a full month
/// pays an effective 70%. [`SustainedUsePricing::effective_multiplier`]
/// implements that schedule on the fraction of the billing window used.
#[derive(Debug, Clone, PartialEq)]
pub struct SustainedUsePricing {
    /// Per-quarter rate multipliers.
    pub tier_multipliers: [f64; 4],
}

impl Default for SustainedUsePricing {
    fn default() -> Self {
        SustainedUsePricing {
            tier_multipliers: [1.0, 0.8, 0.6, 0.4],
        }
    }
}

impl SustainedUsePricing {
    /// The average rate multiplier for an instance in use for `fraction`
    /// of the billing month.
    pub fn effective_multiplier(&self, fraction: f64) -> f64 {
        let f = fraction.clamp(0.0, 1.0);
        if f == 0.0 {
            return 1.0;
        }
        let mut billed = 0.0;
        let mut remaining = f;
        for &m in &self.tier_multipliers {
            let in_tier = remaining.min(0.25);
            billed += in_tier * m;
            remaining -= in_tier;
            if remaining <= 0.0 {
                break;
            }
        }
        billed / f
    }
}

/// One of the three pricing models.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingModel {
    /// AWS-style reserved + on-demand (the paper's default).
    ReservedOnDemand(ReservedOnDemandPricing),
    /// GCE-style on-demand with sustained-use discounts.
    SustainedUse(SustainedUsePricing),
    /// Azure-style on-demand only.
    OnDemandOnly,
}

impl PricingModel {
    /// The paper's default model with the default 2.74 ratio.
    pub fn aws() -> Self {
        PricingModel::ReservedOnDemand(ReservedOnDemandPricing::default())
    }
    /// The GCE model.
    pub fn gce() -> Self {
        PricingModel::SustainedUse(SustainedUsePricing::default())
    }
    /// The Azure model.
    pub fn azure() -> Self {
        PricingModel::OnDemandOnly
    }
}

/// Cost split by resource role.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Dollars attributed to reserved capacity.
    pub reserved: f64,
    /// Dollars attributed to on-demand capacity.
    pub on_demand: f64,
}

impl CostBreakdown {
    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.reserved + self.on_demand
    }
}

/// Per-run hourly billing of a set of usage records over a run of length
/// `run_duration` (Figures 5, 11, 12, 17).
///
/// Under the AWS-style model, reserved capacity bills its per-hour
/// reserved rate for the **whole run** (reservations can't be released
/// mid-run); on-demand bills per usage hour. Under the GCE model the
/// sustained-use multiplier applies per record based on the fraction of
/// the run it spans (the paper assumes runs last at least a month so the
/// discounts take effect). Under Azure everything bills flat hourly.
pub fn run_cost(
    records: &[UsageRecord],
    rates: &Rates,
    model: &PricingModel,
    run_duration: SimDuration,
) -> CostBreakdown {
    let mut cost = CostBreakdown::default();
    let run_hours = run_duration.as_hours_f64();
    for rec in records {
        let od_rate = rates.on_demand_hourly(rec.itype) * rec.rate_multiplier;
        let hours = rec.duration().as_hours_f64();
        match model {
            PricingModel::ReservedOnDemand(p) => {
                if rec.reserved {
                    cost.reserved += p.reserved_hourly(rates, rec.itype) * run_hours;
                } else {
                    cost.on_demand += od_rate * hours;
                }
            }
            PricingModel::SustainedUse(p) => {
                // Reserved-role instances are held for the whole run and
                // earn the full sustained discount; short-lived on-demand
                // instances earn it pro-rata.
                let billed_hours = if rec.reserved { run_hours } else { hours };
                let fraction = (billed_hours / run_hours).clamp(0.0, 1.0);
                let charge = od_rate * billed_hours * p.effective_multiplier(fraction);
                if rec.reserved {
                    cost.reserved += charge;
                } else {
                    cost.on_demand += charge;
                }
            }
            PricingModel::OnDemandOnly => {
                let billed_hours = if rec.reserved { run_hours } else { hours };
                let charge = od_rate * billed_hours;
                if rec.reserved {
                    cost.reserved += charge;
                } else {
                    cost.on_demand += charge;
                }
            }
        }
    }
    cost
}

/// Absolute deployment cost when the workload (captured by `records` over
/// a run of `run_duration`) repeats for `total_duration` (Figure 13).
///
/// Only meaningful for the reserved + on-demand model: reserved capacity
/// pays upfront whole-term charges; the on-demand spend of one run is
/// scaled to the deployment length.
pub fn commitment_cost(
    records: &[UsageRecord],
    rates: &Rates,
    pricing: &ReservedOnDemandPricing,
    run_duration: SimDuration,
    total_duration: SimDuration,
) -> CostBreakdown {
    let mut cost = CostBreakdown::default();
    let repeats = total_duration.as_hours_f64() / run_duration.as_hours_f64();
    for rec in records {
        if rec.reserved {
            cost.reserved += pricing.upfront_cost(rates, rec.itype, total_duration);
        } else {
            cost.on_demand += rates.on_demand_hourly(rec.itype)
                * rec.rate_multiplier
                * rec.duration().as_hours_f64()
                * repeats;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::SimTime;

    fn record(itype: InstanceType, reserved: bool, from_h: u64, to_h: u64) -> UsageRecord {
        UsageRecord::new(
            itype,
            reserved,
            SimTime::ZERO + SimDuration::from_hours(from_h),
            SimTime::ZERO + SimDuration::from_hours(to_h),
        )
    }

    #[test]
    fn spot_records_bill_at_their_multiplier() {
        let rates = Rates::default();
        let mut rec = record(InstanceType::standard(4), false, 0, 2);
        rec.rate_multiplier = 0.35;
        let c = run_cost(
            &[rec],
            &rates,
            &PricingModel::aws(),
            SimDuration::from_hours(2),
        );
        assert!((c.on_demand - 0.20 * 2.0 * 0.35).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn reserved_is_cheaper_per_hour() {
        let rates = Rates::default();
        let p = ReservedOnDemandPricing::default();
        let full = InstanceType::full_server();
        assert!(p.reserved_hourly(&rates, full) < rates.on_demand_hourly(full));
        assert!(
            (rates.on_demand_hourly(full) / p.reserved_hourly(&rates, full) - 2.74).abs() < 1e-9
        );
    }

    #[test]
    fn run_cost_charges_reserved_for_whole_run() {
        let rates = Rates::default();
        let model = PricingModel::aws();
        // Reserved instance "used" only 1 of 2 hours still bills 2 hours.
        let recs = vec![record(InstanceType::full_server(), true, 0, 1)];
        let c = run_cost(&recs, &rates, &model, SimDuration::from_hours(2));
        let expected = 0.80 / 2.74 * 2.0;
        assert!((c.reserved - expected).abs() < 1e-9, "{c:?}");
        assert_eq!(c.on_demand, 0.0);
    }

    #[test]
    fn run_cost_charges_on_demand_per_hour() {
        let rates = Rates::default();
        let model = PricingModel::aws();
        let recs = vec![record(InstanceType::standard(4), false, 0, 1)];
        let c = run_cost(&recs, &rates, &model, SimDuration::from_hours(2));
        assert!((c.on_demand - 0.20).abs() < 1e-9);
        assert_eq!(c.reserved, 0.0);
    }

    #[test]
    fn sustained_use_schedule_matches_gce() {
        let p = SustainedUsePricing::default();
        assert_eq!(p.effective_multiplier(0.25), 1.0);
        assert!((p.effective_multiplier(0.5) - 0.9).abs() < 1e-9);
        assert!((p.effective_multiplier(1.0) - 0.7).abs() < 1e-9);
        assert_eq!(p.effective_multiplier(0.0), 1.0);
    }

    #[test]
    fn gce_model_discounts_long_running_instances() {
        let rates = Rates::default();
        let run = SimDuration::from_hours(2);
        let long = vec![record(InstanceType::full_server(), true, 0, 2)];
        let gce = run_cost(&long, &rates, &PricingModel::gce(), run);
        let azure = run_cost(&long, &rates, &PricingModel::azure(), run);
        assert!((gce.reserved - azure.reserved * 0.7).abs() < 1e-9);
    }

    #[test]
    fn azure_bills_flat() {
        let rates = Rates::default();
        let recs = vec![
            record(InstanceType::full_server(), true, 0, 2),
            record(InstanceType::standard(2), false, 0, 1),
        ];
        let c = run_cost(
            &recs,
            &rates,
            &PricingModel::azure(),
            SimDuration::from_hours(2),
        );
        assert!((c.reserved - 1.6).abs() < 1e-9);
        assert!((c.on_demand - 0.1).abs() < 1e-9);
    }

    #[test]
    fn price_ratio_sweep_changes_reserved_cost_only() {
        let rates = Rates::default();
        let recs = vec![
            record(InstanceType::full_server(), true, 0, 2),
            record(InstanceType::standard(2), false, 0, 1),
        ];
        let run = SimDuration::from_hours(2);
        let cheap = run_cost(
            &recs,
            &rates,
            &PricingModel::ReservedOnDemand(ReservedOnDemandPricing::with_ratio(4.0)),
            run,
        );
        let pricey = run_cost(
            &recs,
            &rates,
            &PricingModel::ReservedOnDemand(ReservedOnDemandPricing::with_ratio(0.5)),
            run,
        );
        assert!(cheap.reserved < pricey.reserved);
        assert_eq!(cheap.on_demand, pricey.on_demand);
    }

    #[test]
    fn upfront_terms_double_past_one_year() {
        let rates = Rates::default();
        let p = ReservedOnDemandPricing::default();
        let full = InstanceType::full_server();
        let one = p.upfront_cost(&rates, full, SimDuration::from_hours(24 * 7 * 30));
        let two = p.upfront_cost(&rates, full, SimDuration::from_hours(24 * 7 * 60));
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn commitment_cost_scales_on_demand_with_duration() {
        let rates = Rates::default();
        let p = ReservedOnDemandPricing::default();
        let recs = vec![record(InstanceType::standard(4), false, 0, 1)];
        let run = SimDuration::from_hours(2);
        let c10 = commitment_cost(&recs, &rates, &p, run, SimDuration::from_hours(24 * 7 * 10));
        let c20 = commitment_cost(&recs, &rates, &p, run, SimDuration::from_hours(24 * 7 * 20));
        assert!((c20.on_demand / c10.on_demand - 2.0).abs() < 1e-9);
        assert_eq!(c10.reserved, 0.0);
    }

    #[test]
    fn commitment_reserved_is_flat_within_term() {
        let rates = Rates::default();
        let p = ReservedOnDemandPricing::default();
        let recs = vec![record(InstanceType::full_server(), true, 0, 2)];
        let run = SimDuration::from_hours(2);
        let c10 = commitment_cost(&recs, &rates, &p, run, SimDuration::from_hours(24 * 7 * 10));
        let c40 = commitment_cost(&recs, &rates, &p, run, SimDuration::from_hours(24 * 7 * 40));
        assert_eq!(c10.reserved, c40.reserved);
    }

    #[test]
    #[should_panic(expected = "price ratio must be positive")]
    fn zero_ratio_rejected() {
        ReservedOnDemandPricing::with_ratio(0.0);
    }

    /// Long-horizon sweep: at a ~500 h run the micro-second timestamps
    /// (1.8e15 µs) still sit well inside f64's 2^53 exact-integer range,
    /// so `duration().as_hours_f64()` loses nothing and per-record
    /// billing accumulates to the closed form within float rounding.
    #[test]
    fn billing_keeps_precision_at_500h_horizons() {
        let rates = Rates::default();
        let model = PricingModel::aws();
        let run = SimDuration::from_hours(500);

        // 10k identical one-hour on-demand records spread across the
        // horizon: the f64 sum must match n × (single-record cost) to
        // relative 1e-12 — catastrophic cancellation or µs truncation
        // would blow well past that.
        let records: Vec<UsageRecord> = (0..10_000u64)
            .map(|k| {
                let start = k % 499;
                record(InstanceType::standard(4), false, start, start + 1)
            })
            .collect();
        let single = run_cost(&records[..1], &rates, &model, run).on_demand;
        let total = run_cost(&records, &rates, &model, run).on_demand;
        let expected = single * records.len() as f64;
        assert!(
            (total - expected).abs() <= expected * 1e-12,
            "10k-record sum drifted: {total} vs {expected}"
        );

        // A sub-second record at the far end of the horizon still bills
        // its exact duration: hour 499 + 1 ms is representable to the µs.
        let mut late = record(InstanceType::standard(4), false, 499, 499);
        late.to = late.from + SimDuration::from_millis(1);
        let c = run_cost(&[late], &rates, &model, run).on_demand;
        let want = rates.on_demand_hourly(InstanceType::standard(4)) * (0.001 / 3600.0);
        assert!(
            (c - want).abs() <= want * 1e-9,
            "late ms record: {c} vs {want}"
        );

        // Reserved billing over the whole 500 h run is exact in hours.
        let res = vec![record(InstanceType::full_server(), true, 0, 500)];
        let c = run_cost(&res, &rates, &model, run).reserved;
        let want = 0.80 / 2.74 * 500.0;
        assert!((c - want).abs() <= want * 1e-12, "{c} vs {want}");
    }
}
