//! # hcloud-pricing — cloud pricing models and cost accounting
//!
//! Section 2.3 / 5.3: the paper evaluates under the **AWS-style** pricing
//! model (long-term reservations + on-demand, on-demand:reserved per-hour
//! ratio ≈ 2.74), and revisits the results under the **GCE** model
//! (on-demand with sustained-use monthly discounts) and the **Azure**
//! model (on-demand only). This crate implements all three plus the cost
//! accounting that turns [`hcloud_cloud::UsageRecord`]s into the dollar
//! figures of Figures 5, 11, 12, 13 and 17:
//!
//! * [`rates`] — per-instance-type hourly list prices;
//! * [`model`] — the three pricing models and [`model::CostBreakdown`];
//!   per-run billing ([`model::run_cost`]) and long-horizon commitment
//!   billing with 1-year reservation terms ([`model::commitment_cost`]).

pub mod model;
pub mod rates;

pub use model::{
    commitment_cost, run_cost, CostBreakdown, PricingModel, ReservedOnDemandPricing,
    SustainedUsePricing,
};
pub use rates::Rates;
