//! Property tests for the tenancy layer's conservation story.
//!
//! Whatever the strategy, fault plan, tenant count, or seed, a tenanted
//! run must (a) complete every job, (b) pass the strict conservation
//! auditor — whose finalize pass reconciles each per-tenant ledger
//! against the global admission/completion/work totals — and (c) keep
//! the global tenancy counters exactly equal to the sum of the
//! per-tenant stats they aggregate. Preempted work re-entering the
//! fault-requeue path with carryover is the easiest place to double- or
//! drop-count, so the fault plans are part of the search space.

use hcloud::runner::{run_scenario, RunCtx};
use hcloud::{RunConfig, StrategyKind};
use hcloud_audit::{AuditMode, Auditor};
use hcloud_faults::FaultPlanId;
use hcloud_sim::rng::RngFactory;
use hcloud_tenancy::TenancyPlan;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

/// A small tenanted scenario: Zipf-weighted tenants over a pool tight
/// enough that the gate actually defers and borrows.
fn tenanted_scenario(seed: u64, tenants: usize) -> Scenario {
    let scenario = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.04, 10),
        &RngFactory::new(seed),
    );
    let mut plan = TenancyPlan::zipf(tenants, 1.1, 48, 0.5);
    let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
    plan.assign_jobs(&ids, &mut RngFactory::new(seed).stream("tenant-assign"));
    scenario.with_tenancy(plan)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
    #[test]
    fn tenant_ledgers_reconcile_with_globals(
        seed in 0u64..1024,
        strategy_idx in 0usize..StrategyKind::ALL.len(),
        fault_idx in 0usize..FaultPlanId::ALL.len(),
        tenants in 1usize..10,
    ) {
        use proptest::prelude::{prop_assert, prop_assert_eq};

        let strategy = StrategyKind::ALL[strategy_idx];
        let fault_plan = FaultPlanId::ALL[fault_idx];
        let scenario = tenanted_scenario(seed, tenants);
        let config = RunConfig::new(strategy).with_faults(fault_plan.plan());
        let factory = RngFactory::new(seed);
        let auditor = Auditor::new(AuditMode::Strict);
        let r = run_scenario(
            &scenario,
            &config,
            &RunCtx::new(&factory).with_auditor(&auditor),
        );
        let r = match r {
            Ok(r) => r,
            Err(v) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                "{strategy}/{}: audit violation: {v}", fault_plan.name()
            ))),
        };

        // (a) No job stranded behind the gate, whatever the chaos.
        prop_assert_eq!(r.outcomes.len(), scenario.jobs().len(),
            "{}/{}: some jobs never finished", strategy, fault_plan.name());

        // (b) The strict auditor's per-tenant ledgers reconciled.
        let summary = auditor.summary();
        prop_assert_eq!(summary.violations, 0,
            "{}/{}: auditor flagged violations", strategy, fault_plan.name());

        // (c) Global tenancy counters are exactly the per-tenant sums.
        let stats = &r.tenant_stats;
        prop_assert!(!stats.is_empty(), "tenanted run must report tenant stats");
        let deferred: u64 = stats.iter().map(|t| t.deferred).sum();
        let drained: u64 = stats.iter().map(|t| t.drained).sum();
        let borrowed: u64 = stats.iter().map(|t| t.borrowed_admissions).sum();
        let victims: u64 = stats.iter().map(|t| t.victims).sum();
        let reclaims: u64 = stats.iter().map(|t| t.reclaims).sum();
        prop_assert_eq!(r.counters.tenant_deferred_jobs as u64, deferred);
        prop_assert_eq!(r.counters.tenant_drained_jobs as u64, drained);
        prop_assert_eq!(r.counters.tenant_borrowed_admissions as u64, borrowed);
        prop_assert_eq!(r.counters.tenant_preemptions as u64, victims);
        // One scan books one reclaim per starved tenant and one victim
        // per preempted job, so the counts need not match — but neither
        // can be nonzero without the other.
        prop_assert_eq!(victims > 0, reclaims > 0,
            "preemptions and reclaims appear together or not at all");
    }
}
