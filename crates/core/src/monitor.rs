//! Per-instance-type resource-quality monitoring.
//!
//! Section 4.2: "we compare the 90th percentile of quality of that
//! instance type (monitored over time) against the target quality (QT)
//! the job needs." [`QualityMonitor`] keeps a bounded rolling window of
//! delivered-quality observations per instance type and answers quantile
//! queries. Until enough observations accumulate it answers with a
//! conservative prior (small instances presumed mediocre, full servers
//! presumed excellent).
//!
//! Note the paper's convention: an instance type is good enough for a job
//! when `Q90 > QT`, where `Q90` here is the high quantile of *delivered
//! quality* — i.e. "90% of the time this instance type delivers at least
//! this much". To be conservative we use the **10th percentile of
//! delivered quality** as the guarantee level (equivalently the 90th
//! percentile of degradation), which matches the paper's intent: tighten
//! the constraint and more jobs stay on reserved.

use std::collections::HashMap;

use hcloud_cloud::InstanceType;
use hcloud_sim::stats::RollingQuantiles;

/// Rolling quality observations per instance type.
///
/// Each per-type window is a [`RollingQuantiles`]: `record` is O(log n)
/// and `q90` reads the exact 10th percentile from the maintained
/// order-statistics tree instead of cloning + sorting the window on every
/// query (the scheduler asks per placement decision).
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    window: usize,
    samples: HashMap<InstanceType, RollingQuantiles>,
}

impl Default for QualityMonitor {
    fn default() -> Self {
        QualityMonitor::new(512)
    }
}

impl QualityMonitor {
    /// Creates a monitor keeping up to `window` samples per type.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "monitor window must be positive");
        QualityMonitor {
            window,
            samples: HashMap::new(),
        }
    }

    /// Records a delivered-quality observation `q ∈ [0, 1]` for `itype`.
    pub fn record(&mut self, itype: InstanceType, q: f64) {
        debug_assert!((0.0..=1.0).contains(&q), "quality {q} out of range");
        let window = self.window;
        self.samples
            .entry(itype)
            .or_insert_with(|| RollingQuantiles::new(window))
            .push(q);
    }

    /// Number of samples held for `itype`.
    pub fn sample_count(&self, itype: InstanceType) -> usize {
        self.samples.get(&itype).map_or(0, RollingQuantiles::len)
    }

    /// The quality level `itype` delivers at least 90% of the time
    /// (the `Q90` the dynamic policy compares against a job's `QT`).
    ///
    /// With fewer than 10 observations, returns a prior based on how much
    /// of the server the instance shares with external tenants.
    pub fn q90(&self, itype: InstanceType) -> f64 {
        match self.samples.get(&itype) {
            // 10th percentile of delivered quality =
            // guaranteed-90%-of-the-time level. An empty window (only
            // reachable if the ≥10 guard changes) degrades to the prior
            // rather than feeding a sentinel into the P8 comparison.
            Some(b) if b.len() >= 10 => b.percentile(10.0).unwrap_or_else(|| Self::prior(itype)),
            _ => Self::prior(itype),
        }
    }

    /// The cold-start prior: full servers deliver ~1.0; the more of the
    /// server is shared, the lower the presumed guarantee.
    pub fn prior(itype: InstanceType) -> f64 {
        1.0 - 0.35 * itype.external_share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_orders_by_size() {
        let p1 = QualityMonitor::prior(InstanceType::standard(1));
        let p8 = QualityMonitor::prior(InstanceType::standard(8));
        let p16 = QualityMonitor::prior(InstanceType::full_server());
        assert!(p1 < p8 && p8 < p16);
        assert_eq!(p16, 1.0);
    }

    #[test]
    fn cold_monitor_returns_prior() {
        let m = QualityMonitor::default();
        assert_eq!(
            m.q90(InstanceType::standard(2)),
            QualityMonitor::prior(InstanceType::standard(2))
        );
    }

    #[test]
    fn q90_reflects_low_tail() {
        let mut m = QualityMonitor::default();
        let t = InstanceType::standard(2);
        // 90 good observations, 10 bad ones.
        for _ in 0..90 {
            m.record(t, 0.95);
        }
        for _ in 0..10 {
            m.record(t, 0.40);
        }
        let q = m.q90(t);
        assert!(q < 0.95, "q90 {q} must reflect the bad tail");
        assert!(q >= 0.40);
    }

    #[test]
    fn window_evicts_old_samples() {
        let mut m = QualityMonitor::new(50);
        let t = InstanceType::standard(4);
        for _ in 0..50 {
            m.record(t, 0.2);
        }
        for _ in 0..50 {
            m.record(t, 0.9);
        }
        assert_eq!(m.sample_count(t), 50);
        assert!(m.q90(t) > 0.8, "old bad samples should have been evicted");
    }

    #[test]
    fn types_are_tracked_independently() {
        let mut m = QualityMonitor::default();
        for _ in 0..20 {
            m.record(InstanceType::standard(1), 0.5);
            m.record(InstanceType::full_server(), 1.0);
        }
        assert!(m.q90(InstanceType::full_server()) > m.q90(InstanceType::standard(1)));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        QualityMonitor::new(0);
    }
}
