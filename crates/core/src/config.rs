//! Run configuration: everything one experiment varies.

use hcloud_cloud::CloudConfig;
use hcloud_faults::FaultPlan;
use hcloud_quasar::QuasarConfig;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::Scenario;

use crate::mapping::MappingPolicy;
use crate::strategy::{ReservedSizingCtx, StrategyRef};

/// Spot-instance usage policy (the Section 5.5 extension): hybrids may
/// run tolerant, non-critical batch jobs on deeply discounted spot
/// capacity, accepting market terminations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotPolicy {
    /// Bid, as a multiple of the on-demand rate. Higher bids survive more
    /// market spikes but cap the savings.
    pub bid_multiplier: f64,
    /// Only jobs whose estimated quality requirement is at or below this
    /// are spot-eligible ("jobs with very relaxed performance
    /// requirements").
    pub max_quality: f64,
}

impl Default for SpotPolicy {
    fn default() -> Self {
        SpotPolicy {
            bid_multiplier: 0.6,
            max_quality: 0.80,
        }
    }
}

/// Data-locality model (Section 5.5: "When reserved resources are
/// deployed as a private facility, provisioning must also consider how
/// to minimize data transfers and replication across the two clusters").
///
/// Each job's dataset deterministically lives either in the private
/// (reserved) facility or in the public cloud; running a job on the
/// other side first copies the dataset across the inter-cluster link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataLocalityModel {
    /// Fraction of jobs whose dataset lives in the private facility.
    pub private_data_fraction: f64,
    /// Inter-cluster link bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// When true, placement prefers the side holding the job's data if
    /// the transfer would dominate the job (the mitigation the paper
    /// calls for); when false, placement is locality-oblivious.
    pub data_aware_placement: bool,
}

impl Default for DataLocalityModel {
    fn default() -> Self {
        DataLocalityModel {
            private_data_fraction: 0.7,
            bandwidth_gbps: 10.0,
            data_aware_placement: true,
        }
    }
}

impl DataLocalityModel {
    /// Whether the dataset of job `job_id` lives in the private facility
    /// (deterministic hash, identical across strategies).
    pub fn data_in_private(&self, job_id: u64) -> bool {
        let mut h = job_id.wrapping_mul(0xD6E8FEB86659FD93) ^ 0x0008_FE88_9F55;
        h ^= h >> 31;
        h = h.wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 29;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.private_data_fraction
    }

    /// Time to copy `dataset_gb` across the inter-cluster link.
    pub fn transfer_delay(&self, dataset_gb: f64) -> hcloud_sim::SimDuration {
        hcloud_sim::SimDuration::from_secs_f64(dataset_gb * 8.0 / self.bandwidth_gbps.max(1e-6))
    }
}

/// Configuration for a single scenario run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The provisioning strategy under test.
    pub strategy: StrategyRef,
    /// The job-mapping policy (consulted by hybrid strategies only).
    pub policy: MappingPolicy,
    /// Whether Quasar profiling/classification information is available
    /// (the with/without split of Figures 4 and 10).
    pub profiling: bool,
    /// Idle on-demand instances are retained for this multiple of their
    /// spin-up overhead (Section 3.2: "we set the retention time to 10x
    /// the spin-up overhead").
    pub retention_mult: f64,
    /// SR overprovisioning above peak with profiling info (Section 3.1:
    /// 10–15%).
    pub overprovision: f64,
    /// SR overprovisioning without profiling info (user reservations are
    /// error-prone; Section 3.3).
    pub overprovision_unprofiled: f64,
    /// The cloud substrate configuration (spin-up, external load,
    /// provider, slowdown model).
    pub cloud: CloudConfig,
    /// The classification engine configuration.
    pub quasar: QuasarConfig,
    /// How often the monitor samples quality/progress and the feedback
    /// loops adjust.
    pub monitor_interval: SimDuration,
    /// Overrides the computed reserved-core count.
    pub reserved_cores_override: Option<u32>,
    /// On-demand instances whose observed quality at release time is
    /// below this are released immediately instead of retained
    /// (Section 3.2: "Only instances that provide predictably high
    /// performance are retained").
    pub quality_retention_threshold: f64,
    /// How much pressure co-scheduled jobs exert relative to external
    /// tenants. The paper's evaluation partitions servers with Linux
    /// containers (Section 2.2), so scheduler-managed colocation is far
    /// better isolated than unmanaged external load.
    pub internal_pressure_scale: f64,
    /// Record per-instance utilization samples (Figures 19–20); off by
    /// default to keep sweeps lean.
    pub record_utilization: bool,
    /// Spot-instance usage (Section 5.5 extension); `None` reproduces the
    /// paper's strategies exactly.
    pub spot: Option<SpotPolicy>,
    /// Overrides the dynamic policy's `(starting soft, hard)` utilization
    /// limits (ablation knob); `None` uses the paper defaults.
    pub dynamic_limits: Option<(f64, f64)>,
    /// Data-locality modeling (Section 5.5 extension); `None` assumes
    /// both resource pools share one physical cluster, like the paper's
    /// evaluation.
    pub data: Option<DataLocalityModel>,
    /// Record a per-job placement audit trail in the result (off by
    /// default; sweeps don't need the memory).
    pub record_decisions: bool,
    /// Fault-injection plan (preemption storms, spin-up faults, capacity
    /// errors, stragglers, monitor dropouts). The off plan injects
    /// nothing and consumes no randomness, reproducing fault-free runs
    /// byte-for-byte.
    pub faults: FaultPlan,
}

impl RunConfig {
    /// The paper-default configuration for `strategy` — a
    /// [`crate::StrategyKind`], a [`StrategyRef`], or anything else that
    /// converts into one.
    pub fn new(strategy: impl Into<StrategyRef>) -> RunConfig {
        RunConfig {
            strategy: strategy.into(),
            policy: MappingPolicy::Dynamic,
            profiling: true,
            retention_mult: 10.0,
            overprovision: 0.15,
            overprovision_unprofiled: 0.30,
            cloud: CloudConfig::default(),
            quasar: QuasarConfig::default(),
            monitor_interval: SimDuration::from_secs(10),
            reserved_cores_override: None,
            quality_retention_threshold: 0.75,
            internal_pressure_scale: 0.10,
            record_utilization: false,
            spot: None,
            dynamic_limits: None,
            data: None,
            record_decisions: false,
            faults: FaultPlan::off(),
        }
    }

    /// Same configuration with a different mapping policy (Figures 6–7).
    pub fn with_policy(mut self, policy: MappingPolicy) -> RunConfig {
        self.policy = policy;
        self
    }

    /// Same configuration without profiling information.
    pub fn without_profiling(mut self) -> RunConfig {
        self.profiling = false;
        self
    }

    /// Sets whether Quasar profiling/classification information is
    /// available (the with/without split of Figures 4 and 10).
    pub fn with_profiling(mut self, profiling: bool) -> RunConfig {
        self.profiling = profiling;
        self
    }

    /// Sets the idle-instance retention multiple (Figure 15's sweep knob).
    pub fn with_retention_mult(mut self, retention_mult: f64) -> RunConfig {
        self.retention_mult = retention_mult;
        self
    }

    /// Overrides the dynamic policy's `(starting soft, hard)` utilization
    /// limits (ablation knob).
    pub fn with_dynamic_limits(mut self, soft: f64, hard: f64) -> RunConfig {
        self.dynamic_limits = Some((soft, hard));
        self
    }

    /// Replaces the classification-engine configuration (fidelity
    /// ablations).
    pub fn with_quasar(mut self, quasar: QuasarConfig) -> RunConfig {
        self.quasar = quasar;
        self
    }

    /// Replaces the cloud substrate configuration wholesale.
    pub fn with_cloud(mut self, cloud: CloudConfig) -> RunConfig {
        self.cloud = cloud;
        self
    }

    /// Sets the on-demand spin-up overhead model (Figure 14a's knob).
    pub fn with_spin_up(mut self, spin_up: hcloud_cloud::SpinUpModel) -> RunConfig {
        self.cloud.spin_up = spin_up;
        self
    }

    /// Sets the external-load process on shared servers (Figure 14b's
    /// knob).
    pub fn with_external_load(mut self, external: hcloud_cloud::ExternalLoadModel) -> RunConfig {
        self.cloud.external = external;
        self
    }

    /// Sets the degree of shared-resource partitioning (Section 5.5
    /// extension).
    pub fn with_partitioning(mut self, isolation: f64) -> RunConfig {
        self.cloud.partitioning = isolation;
        self
    }

    /// Sets the retention quality gate: on-demand instances observed below
    /// this quality are released immediately (0 disables the gate).
    pub fn with_quality_retention_threshold(mut self, threshold: f64) -> RunConfig {
        self.quality_retention_threshold = threshold;
        self
    }

    /// Enables spot-instance usage (Section 5.5 extension).
    pub fn with_spot(mut self, spot: SpotPolicy) -> RunConfig {
        self.spot = Some(spot);
        self
    }

    /// Enables data-locality modeling (Section 5.5 extension).
    pub fn with_data(mut self, data: DataLocalityModel) -> RunConfig {
        self.data = Some(data);
        self
    }

    /// Records per-instance utilization samples (Figures 19–20).
    pub fn with_record_utilization(mut self, record: bool) -> RunConfig {
        self.record_utilization = record;
        self
    }

    /// Records the per-job placement audit trail (`--explain`).
    pub fn with_record_decisions(mut self, record: bool) -> RunConfig {
        self.record_decisions = record;
        self
    }

    /// Sets the fault-injection plan (resilience studies).
    pub fn with_faults(mut self, faults: FaultPlan) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Overrides the computed reserved-core count.
    pub fn with_reserved_cores_override(mut self, cores: u32) -> RunConfig {
        self.reserved_cores_override = Some(cores);
        self
    }

    /// The reserved cores this strategy provisions for `scenario`,
    /// delegated to the strategy's sizing hook: peak × (1 +
    /// overprovisioning) for SR, the steady-state minimum for the
    /// hybrids, zero for the on-demand strategies (Sections 3.1, 4.1).
    pub fn reserved_cores(&self, scenario: &Scenario) -> u32 {
        if let Some(o) = self.reserved_cores_override {
            return o;
        }
        if !self.strategy.uses_reserved() {
            return 0;
        }
        let cfg = scenario.config();
        // Scan the analytic demand curve (the paper assumes knowledge of
        // min/max aggregate load; Section 1).
        let mut peak = 0.0f64;
        let mut min = f64::MAX;
        let step = SimDuration::from_secs(30);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + cfg.duration;
        while t <= end {
            let v = cfg.target_cores(t);
            peak = peak.max(v);
            min = min.min(v);
            t += step;
        }
        self.strategy.reserved_cores(&ReservedSizingCtx {
            peak_cores: peak,
            min_cores: min,
            profiling: self.profiling,
            overprovision: self.overprovision,
            overprovision_unprofiled: self.overprovision_unprofiled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use hcloud_sim::rng::RngFactory;
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    fn scenario(kind: ScenarioKind) -> Scenario {
        Scenario::generate(ScenarioConfig::paper(kind), &RngFactory::new(1))
    }

    #[test]
    fn sr_provisions_for_peak_plus_margin() {
        let s = scenario(ScenarioKind::Static);
        let cores = RunConfig::new(StrategyKind::StaticReserved).reserved_cores(&s);
        // Peak ≈ 885, ×1.15 ≈ 1018.
        assert!((950..1100).contains(&cores), "SR cores {cores}");
    }

    #[test]
    fn unprofiled_sr_overprovisions_more() {
        let s = scenario(ScenarioKind::Static);
        let with = RunConfig::new(StrategyKind::StaticReserved).reserved_cores(&s);
        let without = RunConfig::new(StrategyKind::StaticReserved)
            .without_profiling()
            .reserved_cores(&s);
        assert!(without > with);
    }

    #[test]
    fn hybrids_provision_for_steady_minimum() {
        let s = scenario(ScenarioKind::LowVariability);
        let cores = RunConfig::new(StrategyKind::HybridMixed).reserved_cores(&s);
        // The paper quotes ~600 cores for the low-variability scenario.
        assert!((550..680).contains(&cores), "hybrid cores {cores}");
    }

    #[test]
    fn on_demand_strategies_reserve_nothing() {
        let s = scenario(ScenarioKind::Static);
        assert_eq!(
            RunConfig::new(StrategyKind::OnDemandFull).reserved_cores(&s),
            0
        );
        assert_eq!(
            RunConfig::new(StrategyKind::OnDemandMixed).reserved_cores(&s),
            0
        );
    }

    #[test]
    fn override_wins() {
        let s = scenario(ScenarioKind::Static);
        let mut c = RunConfig::new(StrategyKind::StaticReserved);
        c.reserved_cores_override = Some(64);
        assert_eq!(c.reserved_cores(&s), 64);
    }

    #[test]
    fn high_variability_hybrid_reserves_little() {
        let s = scenario(ScenarioKind::HighVariability);
        let cores = RunConfig::new(StrategyKind::HybridFull).reserved_cores(&s);
        // Min of the high-var curve is ~198-210.
        assert!((150..260).contains(&cores), "hybrid cores {cores}");
    }
}
