//! # hcloud — the HCloud hybrid provisioning system
//!
//! This crate is the paper's primary contribution: a provisioning system
//! that decides (a) how many and what kind of resources to obtain —
//! reserved vs on-demand, large vs small instances — and (b) which jobs to
//! map where, using Quasar-style estimates of each job's resource
//! preferences and interference sensitivity.
//!
//! * [`strategy`] — the pluggable [`strategy::ProvisioningStrategy`]
//!   trait and its [`strategy::StrategyRegistry`]: the paper's five
//!   strategies of Table 3 — statically reserved (SR), on-demand
//!   full-servers (OdF), on-demand mixed sizes (OdM), the hybrids (HF,
//!   HM) — plus the theory-grounded `reservation-autoscale` (RA) and
//!   `queueing-capacity` (QC) extensions;
//! * [`mapping`] — the application-mapping policies P1–P8 of Section 4.2
//!   (random, quality thresholds, static utilization limits, and the
//!   dynamic policy);
//! * [`dynamic`] — the dynamic policy's adaptive soft/hard utilization
//!   limits (Figure 9 left);
//! * [`monitor`] — per-instance-type resource-quality monitoring (the
//!   `Q90` distributions the dynamic policy consults);
//! * [`queue_estimator`] — queueing-time estimation from instance release
//!   rates (Figure 9 right);
//! * [`scheduler`] — job placement, packing, retention and QoS monitoring
//!   over the simulated cloud;
//! * [`runner`] — end-to-end scenario execution producing the
//!   per-job outcomes, traces and cost records behind every figure;
//! * [`result`] — aggregation of run outputs into the paper's metrics.
//!
//! ```no_run
//! use hcloud::{RunConfig, runner::{run_scenario, RunCtx}, strategy::StrategyKind};
//! use hcloud_sim::rng::RngFactory;
//! use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};
//!
//! # fn main() -> Result<(), hcloud::runner::AuditViolation> {
//! let factory = RngFactory::new(42);
//! let scenario = Scenario::generate(
//!     ScenarioConfig::paper(ScenarioKind::HighVariability), &factory);
//! let config = RunConfig::new(StrategyKind::HybridMixed);
//! let result = run_scenario(&scenario, &config, &RunCtx::new(&factory))?;
//! println!("mean batch perf: {:?}", result.batch_performance_boxplot());
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod dynamic;
pub mod mapping;
pub mod monitor;
pub mod placement;
pub mod queue_estimator;
pub mod result;
pub mod runner;
pub mod scheduler;
pub mod strategy;

pub use config::RunConfig;
pub use mapping::MappingPolicy;
pub use placement::{InstanceHandle, PlacementQuery, SearchPolicy};
pub use result::{JobOutcome, RunResult};
pub use strategy::{
    PlacementCtx, ProvisioningStrategy, ReservedSizingCtx, RetentionCtx, RetentionDecision,
    StrategyId, StrategyKind, StrategyRef, StrategyRegistry, UnknownStrategy,
};
