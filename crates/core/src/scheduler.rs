//! Job placement, packing, retention, queueing and QoS monitoring.
//!
//! The [`Scheduler`] owns all mutable state of a scenario run: the cloud
//! instances it holds, the jobs running on them, the reserved queue, the
//! quality monitor, the dynamic limits and the queueing-time estimator.
//! The [`crate::runner`] drives it with discrete events.
//!
//! Placement follows Section 3.3:
//!
//! * with profiling info, jobs are sized from Quasar estimates and placed
//!   on the candidate instance that minimizes predicted interference
//!   (greedy search);
//! * without profiling info, jobs are sized by error-prone user
//!   reservations and placed least-loaded, interference-oblivious.
//!
//! On-demand instances are retained idle for `retention_mult ×` their
//! spin-up overhead, but only if they delivered predictably high quality;
//! poorly-performing instances are released immediately (Section 3.2).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use hcloud_audit::{AuditViolation, AuditViolationKind, Auditor};
use hcloud_cloud::{AcquireFailure, Cloud, Family, InstanceId, InstanceType};
use hcloud_faults::FaultInjector;
use hcloud_interference::{Resource, ResourceVector};
use hcloud_quasar::{JobEstimate, ProfilingEnvironment, QuasarEngine};
use hcloud_sim::event::EventSink;
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::series::StepSeries;
use hcloud_sim::slot::{SlotKey, SlotMap};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_telemetry::{trace_event, ProfSpan, Profiler, TraceKind, Tracer};
use hcloud_tenancy::{FairShare, Gate, Preemption};
use hcloud_workloads::{AppClass, JobId, JobKind, JobSpec, LatencyModel, Scenario};

use crate::config::RunConfig;
use crate::dynamic::DynamicLimits;
use crate::mapping::{MappingContext, Placement};
use crate::monitor::QualityMonitor;
use crate::placement::{InstanceHandle, Placement as PoolMatch, PlacementQuery, SearchPolicy};
use crate::queue_estimator::QueueEstimator;
use crate::result::{
    JobOutcome, PlacementDecision, PlacementReason, RunCounters, RunResult, UtilizationSample,
    WaitSample,
};
use crate::strategy::{PlacementCtx, ProvisioningStrategy, RetentionCtx, RetentionDecision};

/// Discrete events driving the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The job with this scenario id arrives. Typed: an id the scenario
    /// does not contain fails [`Scheduler::on_arrival`] instead of
    /// silently indexing another job's spec.
    Arrival(JobId),
    /// A job begins executing on its assigned instance.
    Start(JobId),
    /// A job's projected finish; `u64` is the projection version (stale
    /// versions are ignored).
    Finish(JobId, u64),
    /// Periodic monitor tick.
    Tick,
    /// Retention timeout for an instance with token `u64`. The handle is
    /// stale (and the event a no-op) when the instance was released.
    Retention(InstanceHandle, u64),
    /// The spot market outbids an instance: it is terminated and its
    /// jobs must be evacuated.
    SpotTermination(InstanceHandle),
}

/// An arrival for a [`JobId`] this scenario does not contain — the typed
/// failure that replaces silent out-of-bounds indexing on the scheduler's
/// public surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownJob {
    /// The foreign id.
    pub id: JobId,
}

impl std::fmt::Display for UnknownJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} is not part of this scenario", self.id.0)
    }
}

impl std::error::Error for UnknownJob {}

/// One instance as the scheduler sees it.
#[derive(Debug, Clone)]
struct SchedInstance {
    cloud_id: InstanceId,
    itype: InstanceType,
    reserved: bool,
    spot: bool,
    ready_at: SimTime,
    used_cores: u32,
    /// Jobs bound to this instance, in arrival order, each with its slot
    /// in the running-job arena so hot paths (interference sums) reach
    /// job state in O(1) without an id lookup. Kept as a small vector
    /// (not a set): interference sums iterate it in insertion order,
    /// which floating-point addition makes order-bearing.
    jobs: Vec<(JobId, SlotKey)>,
    retention_token: u64,
}

impl SchedInstance {
    fn free_cores(&self) -> u32 {
        debug_assert!(
            self.used_cores <= self.itype.vcpus(),
            "instance {} binds {} cores on {} vCPUs",
            self.cloud_id.raw(),
            self.used_cores,
            self.itype.vcpus()
        );
        self.itype.vcpus().saturating_sub(self.used_cores)
    }
}

/// Measures `now - earlier` with checked arithmetic. A negative span is
/// the silent-underflow class `saturating_since` clamps away (the
/// `detach_job` double-release bug shipped exactly that way), so it is
/// reported as a typed [`AuditViolationKind::TimeInversion`] and then
/// clamped — byte-identical behaviour to the old code on clean runs.
fn audited_since(
    auditor: &Auditor,
    now: SimTime,
    earlier: SimTime,
    job: u64,
    context: &'static str,
) -> SimDuration {
    match now.checked_since(earlier) {
        Some(d) => d,
        None => {
            auditor.report(AuditViolation::new(
                now,
                AuditViolationKind::TimeInversion {
                    job,
                    context,
                    at_us: now.as_micros(),
                    earlier_us: earlier.as_micros(),
                },
            ));
            SimDuration::ZERO
        }
    }
}

/// A job currently assigned to an instance.
#[derive(Debug, Clone)]
struct RunningJob {
    spec_idx: usize,
    instance: InstanceHandle,
    cores: u32,
    started: bool,
    start_at: SimTime,
    queue_delay: SimDuration,
    // Batch progress state.
    remaining_work: f64,
    last_progress: SimTime,
    finish_version: u64,
    // Latency-critical accumulators.
    lat_weighted_sum: f64,
    lat_weight: f64,
    isolation_p99: f64,
    qos_bad_ticks: u32,
    rescheduled: bool,
}

/// The outcome of a pool placement search: an instance that satisfies the
/// job's QoS headroom, and the least-bad alternative when none does.
#[derive(Debug, Clone, Copy, Default)]
struct PoolCandidate {
    acceptable: Option<InstanceHandle>,
    fallback: Option<InstanceHandle>,
}

impl PoolCandidate {
    /// Collapses the pair into the typed search result: an acceptable
    /// instance, or the least-bad fallback flagged as such.
    fn into_match(self) -> Option<PoolMatch> {
        match (self.acceptable, self.fallback) {
            (Some(instance), _) => Some(PoolMatch {
                instance,
                fallback: false,
            }),
            (None, Some(instance)) => Some(PoolMatch {
                instance,
                fallback: true,
            }),
            (None, None) => None,
        }
    }
}

/// A job waiting for reserved capacity.
#[derive(Debug, Clone)]
struct QueuedJob {
    spec_idx: usize,
    cores: u32,
    est_quality: f64,
    est_sensitivity: ResourceVector,
    enqueued: SimTime,
    /// Wait already served before entering this queue (the tenancy
    /// gate); zero in untenanted runs. Added to the realized queue wait
    /// wherever that is credited.
    prior_wait: SimDuration,
    estimated_wait: Option<SimDuration>,
    carry: Option<Carryover>,
}

/// State a preempted job carries into its re-admission, so the new life
/// resumes where the old one checkpointed instead of restarting.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Carryover {
    /// Batch work still owed (as of the last checkpoint tick).
    remaining_work: f64,
    /// Queueing delay already accumulated in previous lives.
    queue_delay: SimDuration,
    /// Highest finish-projection version the old life issued; the new
    /// life must start above it so stale `Finish` events stay stale.
    finish_version: u64,
}

/// Multi-tenant runtime state: the weighted fair-share gate plus the
/// admission specs of jobs currently held behind it, keyed by job id so
/// a DRR drain can re-enter each release into placement with the same
/// estimate it arrived with.
#[derive(Debug)]
struct TenancyState {
    fair: FairShare,
    deferred: BTreeMap<u64, DeferredAdmit>,
}

/// What a tenancy-deferred job needs to resume the admission path once
/// the gate releases it.
#[derive(Debug, Clone)]
struct DeferredAdmit {
    spec_idx: usize,
    est: JobEstimate,
    /// Wait already served before this deferral (reserved queue or a
    /// previous gate pass); the drain adds its own wait on top.
    prior_wait: SimDuration,
    carry: Option<Carryover>,
}

/// The scheduler state for one scenario run.
#[derive(Debug)]
pub struct Scheduler<'a> {
    scenario: &'a Scenario,
    config: &'a RunConfig,
    /// The per-run strategy instance (see
    /// [`ProvisioningStrategy::fresh_run`]). `Option` only so `&mut`
    /// hooks can be called while the scheduler is borrowed: hook sites
    /// `take()` the box, call in, and put it back before returning.
    strategy: Option<Box<dyn ProvisioningStrategy>>,
    cloud: Cloud,
    quasar: Option<QuasarEngine>,
    profiled_classes: Vec<AppClass>,
    monitor: QualityMonitor,
    limits: DynamicLimits,
    queue_est: QueueEstimator,
    mapping_rng: SimRng,
    latency_model: LatencyModel,

    /// All instances ever held, in acquisition order. The arena is
    /// append-only: releasing retires the slot (outstanding handles fail
    /// typed) but never reuses its index, so `InstanceHandle::index` is a
    /// stable telemetry identifier.
    instances: SlotMap<SchedInstance>,
    /// The reserved full-server pool, in provisioning (= index) order.
    /// Fixed for the whole run; reserved instances are never released.
    reserved_handles: Vec<InstanceHandle>,
    /// Live on-demand instances (everything non-reserved still held),
    /// ascending by index — the iteration order of the old full scans.
    live_od: BTreeSet<InstanceHandle>,
    /// Live on-demand *pool* instances (full servers, spot included):
    /// the candidates of the pool placement search and of consolidation.
    od_pool: BTreeSet<InstanceHandle>,
    /// Idle retained on-demand instances, keyed `(family, size, handle)`
    /// so dedicated reuse is an ordered range probe (smallest fitting
    /// size first, then acquisition order) instead of a full scan.
    idle_buckets: BTreeSet<(Family, u32, InstanceHandle)>,
    reserved_total: u32,
    queue: VecDeque<QueuedJob>,
    /// Running-job state lives in an append-only slot arena; instances
    /// hold `(JobId, SlotKey)` pairs for O(1) access on interference hot
    /// paths, and `running_by_id` resolves scenario ids. The id index is
    /// a `BTreeMap` because the tick loop iterates it ascending by id —
    /// an order floating-point accumulation makes order-bearing.
    running: SlotMap<RunningJob>,
    running_by_id: BTreeMap<JobId, SlotKey>,
    /// Scenario job id → index into `scenario.jobs()`, built once at
    /// construction so typed arrivals resolve without trusting raw
    /// indices (`Scenario::from_jobs` permits arbitrary ids).
    job_index: BTreeMap<JobId, usize>,

    outcomes: Vec<JobOutcome>,
    od_allocated: StepSeries,
    reserved_busy: StepSeries,
    wait_samples: Vec<WaitSample>,
    utilization_samples: Vec<UtilizationSample>,
    counters: RunCounters,
    decisions: Vec<PlacementDecision>,
    last_finish: SimTime,
    tracer: Tracer,
    auditor: Auditor,
    /// Per-subsystem profiling spans (placement search, monitor
    /// quantiles); disabled unless `HCLOUD_TRACE` reports spans.
    profiler: Profiler,
    /// Which side of the dynamic limits the last traced decision saw:
    /// 0 below soft, 1 between, 2 above hard. Only consulted when tracing.
    last_band: u8,
    /// Whether the QoS monitor signal is currently dropped out (fault
    /// injection); while `true`, the dynamic policy degrades to the
    /// static soft-limit rule.
    monitor_dropped: bool,
    /// Multi-tenant fair-share admission gate; `None` (no tenant section
    /// in the scenario) keeps every path byte-identical to an untenanted
    /// build — one branch per hook site, the tracer/auditor idiom.
    tenancy: Option<TenancyState>,
}

/// Acquisition attempts before giving up on fault-aware retries and
/// forcing a plain (never-failing) acquisition.
const MAX_ACQUIRE_ATTEMPTS: u32 = 6;

/// Wire names for the utilization bands of a `limit-crossing` event.
const BAND_NAMES: [&str; 3] = ["below-soft", "between-limits", "above-hard"];

impl<'a> Scheduler<'a> {
    /// Builds the scheduler: provisions reserved capacity and seeds the
    /// classification engine.
    pub fn new(scenario: &'a Scenario, config: &'a RunConfig, factory: &RngFactory) -> Self {
        Scheduler::with_tracer(scenario, config, factory, Tracer::disabled())
    }

    /// Like [`Scheduler::new`], but every instrumented decision (placement,
    /// limit crossings, queueing, QoS actions, instance lifecycle) is
    /// recorded into `tracer`.
    pub fn with_tracer(
        scenario: &'a Scenario,
        config: &'a RunConfig,
        factory: &RngFactory,
        tracer: Tracer,
    ) -> Self {
        Scheduler::with_instruments(
            scenario,
            config,
            factory,
            tracer,
            Auditor::disabled(),
            Profiler::disabled(),
        )
    }

    /// Like [`Scheduler::with_tracer`], but semantic accounting events
    /// (work credited, cores bound, instance lifecycle) also feed
    /// `auditor`'s conservation ledgers, and hot-path subsystems
    /// attribute their wall clock to `profiler`'s spans. With disabled
    /// instruments this is exactly `with_tracer`.
    pub fn with_instruments(
        scenario: &'a Scenario,
        config: &'a RunConfig,
        factory: &RngFactory,
        tracer: Tracer,
        auditor: Auditor,
        profiler: Profiler,
    ) -> Self {
        let injector = FaultInjector::new(config.faults.clone(), factory.child("faults"));
        let mut cloud = Cloud::with_instruments(
            config.cloud.clone(),
            factory.child("cloud"),
            tracer.clone(),
            injector,
        );
        let reserved_cores = config.reserved_cores(scenario);
        let reserved_servers =
            (reserved_cores as f64 / InstanceType::full_server().vcpus() as f64).ceil() as usize;
        let reserved_ids = cloud.provision_reserved(reserved_servers, SimTime::ZERO);
        let mut instances = SlotMap::new();
        let reserved_handles: Vec<InstanceHandle> = reserved_ids
            .iter()
            .map(|&id| {
                InstanceHandle::new(instances.insert(SchedInstance {
                    cloud_id: id,
                    itype: InstanceType::full_server(),
                    reserved: true,
                    spot: false,
                    ready_at: SimTime::ZERO,
                    used_cores: 0,
                    jobs: Vec::new(),
                    retention_token: 0,
                }))
            })
            .collect();
        for &id in &reserved_ids {
            auditor.instance_acquired(SimTime::ZERO, id.raw(), InstanceType::full_server().vcpus());
        }
        let quasar = config
            .profiling
            .then(|| QuasarEngine::new(config.quasar.clone(), &factory.child("quasar")));
        let job_index: BTreeMap<JobId, usize> = scenario
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, spec)| (spec.id, i))
            .collect();
        Scheduler {
            scenario,
            config,
            strategy: Some(config.strategy.fresh_run()),
            cloud,
            quasar,
            profiled_classes: Vec::new(),
            monitor: QualityMonitor::default(),
            limits: match config.dynamic_limits {
                Some((soft, hard)) => DynamicLimits::new(soft, hard),
                None => DynamicLimits::default(),
            },
            queue_est: QueueEstimator::default(),
            mapping_rng: factory.stream("scheduler.mapping"),
            latency_model: scenario.config().latency_model,
            instances,
            reserved_handles,
            live_od: BTreeSet::new(),
            od_pool: BTreeSet::new(),
            idle_buckets: BTreeSet::new(),
            reserved_total: (reserved_servers as u32) * InstanceType::full_server().vcpus(),
            queue: VecDeque::new(),
            running: SlotMap::new(),
            running_by_id: BTreeMap::new(),
            job_index,
            outcomes: Vec::new(),
            od_allocated: StepSeries::new(0.0),
            reserved_busy: StepSeries::new(0.0),
            wait_samples: Vec::new(),
            utilization_samples: Vec::new(),
            counters: RunCounters::default(),
            decisions: Vec::new(),
            last_finish: SimTime::ZERO,
            tracer,
            auditor,
            profiler,
            last_band: 0,
            monitor_dropped: false,
            tenancy: scenario.tenancy().map(|plan| TenancyState {
                fair: FairShare::new(plan),
                deferred: BTreeMap::new(),
            }),
        }
    }

    /// Reserved cores provisioned.
    pub fn reserved_cores(&self) -> u32 {
        self.reserved_total
    }

    /// The per-run strategy instance, for immutable hook queries
    /// (flags). `&mut` hooks take/put the box instead.
    fn strat(&self) -> &dyn ProvisioningStrategy {
        self.strategy
            .as_deref()
            .expect("strategy present outside hook calls")
    }

    /// Jobs still running, queued, or held at the tenancy gate. Keeping
    /// deferred jobs in this count keeps the runner's monitor tick alive
    /// until the DRR drain has released every one of them.
    pub fn pending_jobs(&self) -> usize {
        self.running_by_id.len()
            + self.queue.len()
            + self.tenancy.as_ref().map_or(0, |ts| ts.deferred.len())
    }

    // ------------------------------------------------------------------
    // Instance arena & index bookkeeping
    // ------------------------------------------------------------------

    /// The live instance behind `h`. Internal call sites only hold
    /// handles to live instances; a stale handle here is a logic error.
    fn inst(&self, h: InstanceHandle) -> &SchedInstance {
        self.instances.get(h.key()).expect("live instance handle")
    }

    /// Mutable access to the live instance behind `h`.
    fn inst_mut(&mut self, h: InstanceHandle) -> &mut SchedInstance {
        self.instances
            .get_mut(h.key())
            .expect("live instance handle")
    }

    /// The running job with scenario id `jid`, if any.
    fn running_job(&self, jid: JobId) -> Option<&RunningJob> {
        let &key = self.running_by_id.get(&jid)?;
        Some(self.running.get(key).expect("id-index entry is live"))
    }

    /// Mutable access to the running job with scenario id `jid`.
    fn running_job_mut(&mut self, jid: JobId) -> Option<&mut RunningJob> {
        let &key = self.running_by_id.get(&jid)?;
        Some(self.running.get_mut(key).expect("id-index entry is live"))
    }

    /// Removes `jid` from the running set, retiring its arena slot so any
    /// key still held for it (e.g. in an instance's job list) fails typed.
    fn remove_running(&mut self, jid: JobId) -> Option<RunningJob> {
        let key = self.running_by_id.remove(&jid)?;
        let job = self
            .running
            .get(key)
            .expect("id-index entry is live")
            .clone();
        self.running.retire(key).expect("id-index entry is live");
        Some(job)
    }

    /// Binds `jid` (living in arena slot `key`) to `h`, charging `cores`,
    /// and keeps the idle-retention index in sync: an idle instance that
    /// takes a job leaves it.
    fn attach_job(
        &mut self,
        h: InstanceHandle,
        jid: JobId,
        key: SlotKey,
        cores: u32,
        now: SimTime,
    ) {
        let inst = self
            .instances
            .get_mut(h.key())
            .expect("attach to live instance");
        inst.used_cores += cores;
        inst.jobs.push((jid, key));
        let od = !inst.reserved;
        let cloud_id = inst.cloud_id.raw();
        let bucket = (inst.itype.family(), inst.itype.vcpus(), h);
        self.auditor.cores_bound(now, cloud_id, cores);
        if od && self.idle_buckets.remove(&bucket) {
            self.counters.index_rebuilds += 1;
        }
    }

    /// Unbinds `jid` from `h`, freeing `cores`. Returns `true` when the
    /// instance is left empty; the caller then decides between retention
    /// (which re-enters the idle index) and release.
    ///
    /// Freeing more cores than are bound is a conservation bug (e.g. a
    /// double unbind): it is reported as a typed [`AuditViolation`]
    /// instead of being silently clamped by saturating arithmetic.
    fn detach_job(
        &mut self,
        h: InstanceHandle,
        jid: JobId,
        cores: u32,
        now: SimTime,
    ) -> Result<bool, AuditViolation> {
        let inst = self
            .instances
            .get_mut(h.key())
            .expect("detach from live instance");
        let Some(remaining) = inst.used_cores.checked_sub(cores) else {
            let violation = AuditViolation::new(
                now,
                AuditViolationKind::CoreUnderflow {
                    instance: inst.cloud_id.raw(),
                    bound: inst.used_cores,
                    unbind: cores,
                },
            );
            self.auditor.report(violation.clone());
            return Err(violation);
        };
        inst.used_cores = remaining;
        inst.jobs.retain(|&(j, _)| j != jid);
        let empty = inst.jobs.is_empty();
        let cloud_id = inst.cloud_id.raw();
        self.auditor.cores_unbound(now, cloud_id, cores);
        Ok(empty)
    }

    // ------------------------------------------------------------------
    // Estimation
    // ------------------------------------------------------------------

    /// Estimates a job's needs: Quasar when profiling info is on,
    /// user-reservation defaults otherwise.
    fn estimate(&mut self, spec: &JobSpec) -> JobEstimate {
        // Profiling on small shared instances (the only kind OdM holds)
        // yields noisier signals.
        let noisy = self.strat().profiles_noisily();
        match self.quasar.as_mut() {
            Some(engine) => {
                if !self.profiled_classes.contains(&spec.class) {
                    self.profiled_classes.push(spec.class);
                    self.counters.profiled += 1;
                }
                self.counters.classified += 1;
                let env = if noisy {
                    ProfilingEnvironment::noisy()
                } else {
                    ProfilingEnvironment::clean()
                };
                let mut est = engine.estimate(spec, &env);
                est.cores = est.cores.clamp(1, 16);
                est
            }
            None => JobEstimate {
                sensitivity: ResourceVector::ZERO,
                quality: 0.0,
                cores: spec.user_sized_cores().clamp(1, 16),
            },
        }
    }

    // ------------------------------------------------------------------
    // Arrival & placement
    // ------------------------------------------------------------------

    /// Handles a job arrival, resolving the typed scenario id. An id the
    /// scenario does not contain fails with [`UnknownJob`] instead of
    /// silently indexing another job's spec.
    pub fn on_arrival(
        &mut self,
        id: JobId,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), UnknownJob> {
        let &idx = self.job_index.get(&id).ok_or(UnknownJob { id })?;
        let est = self.estimate(&self.scenario.jobs()[idx]);
        if self.auditor.is_enabled() {
            let spec = &self.scenario.jobs()[idx];
            let demanded = match spec.kind {
                JobKind::Batch { work_core_secs } => work_core_secs,
                JobKind::LatencyCritical { .. } => 0.0,
            };
            self.auditor.job_admitted(now, spec.id.0, demanded);
            if self.tenancy.is_some() {
                let tenant = self.tenant_of(spec.id);
                self.auditor
                    .tenant_job_admitted(now, tenant, spec.id.0, demanded);
            }
        }
        self.admit(idx, &est, now, SimDuration::ZERO, None, events);
        Ok(())
    }

    /// The tenant a job is assigned to under the active tenancy plan
    /// (`None` when tenancy is off or the job is unassigned).
    fn tenant_of(&self, jid: JobId) -> Option<u64> {
        self.tenancy
            .as_ref()
            .and_then(|ts| ts.fair.tenant_of(jid.0))
            .map(|t| t.0)
    }

    /// The single admission path: every job — fresh arrival, preemption
    /// victim being requeued, or tenancy-gate release — goes through the
    /// same gate, placement decision, tracing and dispatch. `carry` is
    /// `Some` for re-admissions; `wait` is delay already served outside
    /// the reserved queue (the tenancy gate) that must ride into the
    /// job's queue-delay accounting.
    fn admit(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        now: SimTime,
        wait: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) {
        if self.gate_tenancy(idx, est, now, wait, carry) {
            return;
        }
        self.admit_placed(idx, est, now, wait, carry, events);
    }

    /// Tenancy gate in front of placement. Returns `true` when the job
    /// was deferred into its tenant queue — no placement happens now; a
    /// later [`Self::drain_tenancy`] re-admits it. One branch when
    /// tenancy is off.
    fn gate_tenancy(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        now: SimTime,
        wait: SimDuration,
        carry: Option<Carryover>,
    ) -> bool {
        let Some(ts) = self.tenancy.as_mut() else {
            return false;
        };
        let jid = self.scenario.jobs()[idx].id;
        match ts.fair.gate(jid.0, est.cores, now) {
            Gate::Bypass => false,
            Gate::Admit { borrowed, .. } => {
                if borrowed {
                    self.counters.tenant_borrowed_admissions += 1;
                }
                false
            }
            Gate::Defer { tenant, depth } => {
                self.counters.tenant_deferred_jobs += 1;
                ts.deferred.insert(
                    jid.0,
                    DeferredAdmit {
                        spec_idx: idx,
                        est: est.clone(),
                        prior_wait: wait,
                        carry,
                    },
                );
                trace_event!(
                    self.tracer,
                    now,
                    TraceKind::TenantDefer {
                        job: jid.0,
                        tenant: tenant.0,
                        depth,
                    }
                );
                true
            }
        }
    }

    /// Releases whatever the fair-share gate can now admit (guarantees
    /// first in DRR order, then elastic borrowing of the idle remainder)
    /// and re-enters each released job into placement, crediting the
    /// time it waited behind the gate as queue delay.
    fn drain_tenancy(&mut self, now: SimTime, events: &mut impl EventSink<Event>) {
        let Some(ts) = self.tenancy.as_mut() else {
            return;
        };
        let released = ts.fair.drain(now);
        if released.is_empty() {
            return;
        }
        let mut admits = Vec::with_capacity(released.len());
        for r in released {
            let d = ts
                .deferred
                .remove(&r.job)
                .expect("released job was deferred");
            admits.push((r, d));
        }
        for (r, d) in admits {
            if r.borrowed {
                self.counters.tenant_borrowed_admissions += 1;
            }
            self.counters.tenant_drained_jobs += 1;
            trace_event!(
                self.tracer,
                now,
                TraceKind::TenantRelease {
                    job: r.job,
                    tenant: r.tenant.0,
                    waited_us: r.waited.as_micros(),
                    borrowed: r.borrowed,
                }
            );
            self.admit_placed(
                d.spec_idx,
                &d.est,
                now,
                d.prior_wait + r.waited,
                d.carry,
                events,
            );
        }
    }

    /// Placement and dispatch for an admitted job (the pre-tenancy body
    /// of `admit`; the gate never re-enters here).
    #[allow(clippy::too_many_arguments)]
    fn admit_placed(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        now: SimTime,
        wait: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) {
        let spec = &self.scenario.jobs()[idx];
        let class = spec.class;
        let mut placement = self.decide_placement(idx, est, now);
        let mut data_override = false;
        // Data-aware mitigation: when the transfer would dominate the
        // job, prefer the side where the data lives (if the policy's
        // choice disagrees and the job can run there).
        if let Some(data) = self.config.data {
            if data.data_aware_placement && self.strat().is_hybrid() {
                let spec = &self.scenario.jobs()[idx];
                let transfer = data.transfer_delay(spec.dataset_gb());
                let heavy = transfer.as_secs_f64() > 0.25 * spec.ideal_duration().as_secs_f64();
                if heavy {
                    let private = data.data_in_private(spec.id.0);
                    let before = placement;
                    placement = match (placement, private) {
                        // Data in the private facility: pull back to
                        // reserved while below the hard limit.
                        (Placement::OnDemand, true)
                            if self.reserved_utilization() < self.limits.hard() =>
                        {
                            Placement::Reserved
                        }
                        // Data in the cloud: don't drag it into the
                        // private facility for a tolerant job.
                        (Placement::Reserved, false) if est.quality < 0.8 => Placement::OnDemand,
                        (p, _) => p,
                    };
                    data_override = placement != before;
                }
            }
        }
        if self.config.record_decisions || self.tracer.is_enabled() {
            let spot = placement == Placement::OnDemand
                && carry.is_none()
                && self.spot_eligible(&self.scenario.jobs()[idx], est);
            let util = self.reserved_utilization();
            let reason = if data_override {
                PlacementReason::DataLocality
            } else if spot {
                PlacementReason::Spot
            } else if self.strat().is_hybrid()
                && self.config.policy == crate::mapping::MappingPolicy::Dynamic
            {
                match placement {
                    Placement::Reserved if util < self.limits.soft() => {
                        PlacementReason::BelowSoftLimit
                    }
                    Placement::Reserved => PlacementReason::QualityNeedsReserved,
                    Placement::OnDemand => PlacementReason::OnDemandGoodEnough,
                    Placement::Queue => PlacementReason::QueuedAtHardLimit,
                    Placement::OnDemandLarge => PlacementReason::EscapedToLargeOnDemand,
                }
            } else {
                PlacementReason::FixedByStrategy
            };
            if self.config.record_decisions {
                self.decisions.push(PlacementDecision {
                    job: self.scenario.jobs()[idx].id,
                    at: now,
                    estimated_quality: est.quality,
                    reserved_utilization: util,
                    reason,
                });
            }
            if self.tracer.is_enabled() {
                // The Q90-vs-QT comparison the dynamic policy makes: Q90 of
                // the on-demand type this job would get, against the job's
                // quality target. NaN (=> null) when no monitor is consulted.
                let q90 = if self.strat().is_hybrid() {
                    let spec = &self.scenario.jobs()[idx];
                    self.monitor.q90(self.od_itype_for(est, spec.class))
                } else {
                    f64::NAN
                };
                self.tracer.record(
                    now,
                    TraceKind::Decision {
                        job: self.scenario.jobs()[idx].id.0,
                        placement: match placement {
                            Placement::Reserved => "reserved",
                            Placement::OnDemand => "on-demand",
                            Placement::OnDemandLarge => "on-demand-large",
                            Placement::Queue => "queue",
                        },
                        reason: reason.to_string(),
                        quality_target: est.quality,
                        utilization: util,
                        q90,
                    },
                );
                let band = if util < self.limits.soft() {
                    0
                } else if util < self.limits.hard() {
                    1
                } else {
                    2
                };
                if band != self.last_band {
                    self.tracer.record(
                        now,
                        TraceKind::LimitCrossing {
                            from: BAND_NAMES[self.last_band as usize],
                            to: BAND_NAMES[band as usize],
                            utilization: util,
                            soft: self.limits.soft(),
                            hard: self.limits.hard(),
                        },
                    );
                    self.last_band = band;
                }
            }
        }
        match placement {
            Placement::Reserved => {
                if !self.try_place_reserved(idx, est, now, wait, carry, events) {
                    self.enqueue(idx, est, now, wait, carry);
                }
            }
            Placement::OnDemand => {
                // Full-only strategies pool full servers; strategies
                // that never buy on-demand (SR) fall back to the pool
                // path too when QoS actions force an acquisition.
                if self.strat().on_demand_full_only() || !self.strat().uses_on_demand() {
                    self.place_od_pool(idx, est, now, wait, carry, events);
                } else {
                    self.place_od_dedicated(idx, est, class, now, wait, carry, events);
                }
            }
            Placement::OnDemandLarge => {
                self.place_od_pool(idx, est, now, wait, carry, events);
            }
            Placement::Queue => {
                self.enqueue(idx, est, now, wait, carry);
            }
        }
    }

    /// Decides between reserved and on-demand via the strategy's
    /// placement hook.
    fn decide_placement(&mut self, idx: usize, est: &JobEstimate, now: SimTime) -> Placement {
        let spec = &self.scenario.jobs()[idx];
        let od_itype = self.od_itype_for(est, spec.class);
        // Graceful degradation: while the QoS monitor signal is dropped
        // out, the dynamic policy cannot trust its Q90 data, so it
        // falls back to the static soft-limit rule.
        let policy = if self.monitor_dropped
            && self.config.policy == crate::mapping::MappingPolicy::Dynamic
        {
            crate::mapping::MappingPolicy::UtilizationLimit(self.limits.soft())
        } else {
            self.config.policy
        };
        let mut strategy = self.strategy.take().expect("strategy present");
        let ctx = PlacementCtx {
            mapping: MappingContext {
                reserved_utilization: self.reserved_utilization(),
                job_quality: est.quality,
                od_itype,
                job_cores: est.cores,
                queue_len: self.queue.len(),
                expected_spinup_large: self
                    .config
                    .cloud
                    .spin_up
                    .expected(InstanceType::full_server()),
                monitor: &self.monitor,
                limits: &self.limits,
                queue_estimator: &self.queue_est,
                now,
            },
            policy,
            reserved_cores: self.reserved_total,
        };
        let placement = strategy.place(&ctx, &mut self.mapping_rng);
        self.strategy = Some(strategy);
        placement
    }

    /// The on-demand instance type this job would be offered: a full
    /// server for full-only strategies, a per-job-sized instance otherwise.
    fn od_itype_for(&self, est: &JobEstimate, class: AppClass) -> InstanceType {
        if self.strat().on_demand_full_only() {
            InstanceType::full_server()
        } else {
            self.dedicated_itype(est, class)
        }
    }

    /// Current reserved-pool utilization.
    pub fn reserved_utilization(&self) -> f64 {
        if self.reserved_total == 0 {
            return 1.0;
        }
        self.reserved_busy.last_value() / self.reserved_total as f64
    }

    /// Attempts to place a job on the reserved pool. Returns `false` when
    /// no reserved instance has enough free cores.
    fn try_place_reserved(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        now: SimTime,
        queue_delay: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) -> bool {
        let query = PlacementQuery {
            family: Family::Standard,
            min_cores: est.cores,
            policy: SearchPolicy::ReservedPool {
                sensitivity: est.sensitivity,
                quality: est.quality,
            },
        };
        // The reserved pool accepts fallbacks: a degraded placement beats
        // queueing behind the hard limit.
        match self.find_placement(&query, now) {
            Some(m) => {
                self.assign(idx, est, m.instance, now, queue_delay, carry, events);
                true
            }
            None => false,
        }
    }

    /// The single placement-search front door: every policy (P1–P8 and
    /// any future one) routes through here, so placement always answers
    /// from the maintained indices — see [`crate::placement`].
    ///
    /// Being the single front door also makes it the natural profiling
    /// boundary: with spans enabled, every placement search attributes
    /// its wall clock to [`ProfSpan::FindPlacement`].
    pub fn find_placement(&mut self, query: &PlacementQuery, now: SimTime) -> Option<PoolMatch> {
        if self.profiler.is_enabled() {
            let profiler = self.profiler.clone();
            profiler.time(ProfSpan::FindPlacement, || {
                self.find_placement_inner(query, now)
            })
        } else {
            self.find_placement_inner(query, now)
        }
    }

    fn find_placement_inner(&mut self, query: &PlacementQuery, now: SimTime) -> Option<PoolMatch> {
        match query.policy {
            SearchPolicy::ReservedPool {
                sensitivity,
                quality,
            } => self
                .best_pool_instance(true, query.min_cores, &sensitivity, quality, now)
                .into_match(),
            SearchPolicy::OnDemandPool {
                sensitivity,
                quality,
            } => {
                let found = self
                    .best_pool_instance(false, query.min_cores, &sensitivity, quality, now)
                    .into_match();
                if matches!(found, Some(m) if !m.fallback) {
                    self.counters.placement_fastpath += 1;
                }
                found
            }
            SearchPolicy::IdleDedicated {
                spot_ok,
                min_quality,
            } => {
                let h = self.find_idle_dedicated(
                    query.family,
                    query.min_cores,
                    spot_ok,
                    min_quality,
                    now,
                )?;
                self.counters.placement_fastpath += 1;
                Some(PoolMatch {
                    instance: h,
                    fallback: false,
                })
            }
        }
    }

    /// The greedy search of Section 3.3 over a pool of full-server
    /// instances (reserved pool or on-demand pool).
    ///
    /// With profiling info the search is QoS-aware and consolidating:
    /// among instances whose predicted interference still satisfies the
    /// job (more-sensitive jobs accept less), pick the most loaded — so
    /// load dips leave whole instances idle and releasable. If no
    /// instance is acceptable, fall back to the least-interfering one.
    /// Without profiling info, placement is least-loaded and oblivious.
    fn best_pool_instance(
        &self,
        reserved: bool,
        cores: u32,
        sensitivity: &ResourceVector,
        quality: f64,
        now: SimTime,
    ) -> PoolCandidate {
        let mut acceptable: Option<(InstanceHandle, u32)> = None; // most loaded
        let mut fallback: Option<(InstanceHandle, f64)> = None; // min slowdown
        let mut least_loaded: Option<(InstanceHandle, u32)> = None;
        // A sensitive job (high Q) tolerates little predicted slowdown; a
        // tolerant one accepts more.
        let headroom = 1.0 + 0.6 * (1.0 - quality).max(0.08);
        // The candidate pool is an index now, not a scan over every
        // instance ever acquired: the fixed reserved prefix, or the live
        // on-demand pool set. Both iterate ascending by index — the
        // visit order of the old full scan, so ties break identically.
        let mut consider = |h: InstanceHandle| {
            let inst = self.inst(h);
            debug_assert_eq!(inst.reserved, reserved, "pool index invariant");
            debug_assert!(inst.itype.is_full_server(), "pool index invariant");
            if inst.spot || inst.free_cores() < cores {
                return;
            }
            // On-demand pool instances keep ~2 cores of headroom to absorb
            // unpredictability (the overprovisioning the paper attributes
            // to OdF/HF "only requesting the largest instances").
            if !reserved && inst.used_cores + cores > inst.itype.vcpus().saturating_sub(2) {
                return;
            }
            if !self.config.profiling {
                if least_loaded.is_none_or(|(_, u)| inst.used_cores < u) {
                    least_loaded = Some((h, inst.used_cores));
                }
                return;
            }
            let mut pressure = self.internal_pressure(h, None);
            if !reserved {
                pressure = pressure.add(&self.cloud.external_pressure(inst.cloud_id, now));
            }
            let slowdown = self.cloud.slowdown_model().slowdown(sensitivity, &pressure);
            if slowdown <= headroom {
                if acceptable.is_none_or(|(_, u)| inst.used_cores > u) {
                    acceptable = Some((h, inst.used_cores));
                }
            } else if fallback.is_none_or(|(_, s)| slowdown < s) {
                fallback = Some((h, slowdown));
            }
        };
        if reserved {
            for &h in &self.reserved_handles {
                consider(h);
            }
        } else {
            for &h in &self.od_pool {
                consider(h);
            }
        }
        if !self.config.profiling {
            return PoolCandidate {
                acceptable: least_loaded.map(|(i, _)| i),
                fallback: None,
            };
        }
        PoolCandidate {
            acceptable: acceptable.map(|(i, _)| i),
            fallback: fallback.map(|(i, _)| i),
        }
    }

    /// Places a job on the on-demand full-server pool, packing onto an
    /// existing instance when possible. `queue_delay` is the waiting
    /// interval the job just finished serving (non-zero when arriving
    /// here from the starvation-relief path), so it is credited to the
    /// job rather than dropped.
    fn place_od_pool(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        now: SimTime,
        queue_delay: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) {
        // Pack onto an acceptable existing pool instance; acquire a fresh
        // one rather than degrade the job on an unacceptable instance.
        let query = PlacementQuery {
            family: Family::Standard,
            min_cores: est.cores,
            policy: SearchPolicy::OnDemandPool {
                sensitivity: est.sensitivity,
                quality: est.quality,
            },
        };
        let inst = match self.find_placement(&query, now) {
            Some(m) if !m.fallback => m.instance,
            _ => self.acquire(InstanceType::full_server(), now),
        };
        self.assign(idx, est, inst, now, queue_delay, carry, events);
    }

    /// The instance type a mixed-size strategy requests for this job:
    /// smallest fitting size, family matched to the dominant estimated
    /// sensitivity (Section 3.3: "standard, compute- or memory-optimized").
    fn dedicated_itype(&self, est: &JobEstimate, _class: AppClass) -> InstanceType {
        let size = InstanceType::smallest_fitting(est.cores).unwrap_or(16);
        if !self.config.profiling {
            return InstanceType::new(Family::Standard, size);
        }
        let s = &est.sensitivity;
        let mem = s
            .get(Resource::MemCapacity)
            .max(s.get(Resource::MemBandwidth));
        let cpu = s.get(Resource::Cpu);
        let family = if mem > 0.6 && mem > cpu {
            Family::MemoryOptimized
        } else if cpu > 0.6 && cpu > mem {
            Family::ComputeOptimized
        } else {
            Family::Standard
        };
        InstanceType::new(family, size)
    }

    /// Places a job on a per-job-sized on-demand instance, reusing an
    /// idle retained instance of the same type when one exists.
    /// `queue_delay` is wait already served (tenancy gate), credited to
    /// the job rather than dropped.
    #[allow(clippy::too_many_arguments)]
    fn place_od_dedicated(
        &mut self,
        idx: usize,
        est: &JobEstimate,
        class: AppClass,
        now: SimTime,
        queue_delay: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) {
        let itype = self.dedicated_itype(est, class);
        // Preemption victims never ride spot again: re-admitting them onto
        // another doomed instance at the same instant would loop forever.
        let spot_ok = carry.is_none() && self.spot_eligible(&self.scenario.jobs()[idx], est);
        // Hybrids: free cores on an already-held full-server on-demand
        // instance (e.g. one acquired by the hard-limit escape hatch) are
        // paid for whether used or not, and deliver full-server quality;
        // fill them first. OdM has no such pool — the paper's OdM
        // requests the smallest instance per job.
        if self.strat().is_hybrid() {
            let query = PlacementQuery {
                family: Family::Standard,
                min_cores: est.cores,
                policy: SearchPolicy::OnDemandPool {
                    sensitivity: est.sensitivity,
                    quality: est.quality,
                },
            };
            if let Some(m) = self.find_placement(&query, now) {
                if !m.fallback {
                    self.assign(idx, est, m.instance, now, queue_delay, carry, events);
                    return;
                }
            }
        }
        // Reuse an idle retained instance of the same family whose size
        // fits without gross waste (up to 2× the requested size), smallest
        // first — but only if it currently delivers the quality the job
        // needs (Section 3.3: match "the resource capabilities of
        // instances to the interference requirements of a job").
        let reuse_query = PlacementQuery {
            family: itype.family(),
            min_cores: itype.vcpus(),
            policy: SearchPolicy::IdleDedicated {
                spot_ok,
                min_quality: est.quality * 0.9,
            },
        };
        let inst = match self.find_placement(&reuse_query, now) {
            Some(m) => m.instance,
            None if spot_ok => {
                let bid = self
                    .config
                    .spot
                    .expect("spot_eligible checked")
                    .bid_multiplier;
                self.acquire_spot(itype, bid, now, events)
            }
            None => self.acquire(itype, now),
        };
        self.assign(idx, est, inst, now, queue_delay, carry, events);
    }

    /// The idle-retention reuse search: an ordered range probe over the
    /// `(family, size, handle)` index, so the first eligible hit is the
    /// smallest fitting size in acquisition order — the same instance the
    /// old `min_by_key` full scan chose.
    fn find_idle_dedicated(
        &self,
        family: Family,
        vcpus: u32,
        spot_ok: bool,
        min_quality: f64,
        now: SimTime,
    ) -> Option<InstanceHandle> {
        let margin = SimDuration::from_mins(2);
        let lo = (family, vcpus, InstanceHandle::MIN);
        let hi = (family, vcpus * 2, InstanceHandle::MAX);
        for &(_, _, h) in self.idle_buckets.range(lo..=hi) {
            let inst = self.inst(h);
            debug_assert!(
                !inst.reserved && inst.jobs.is_empty(),
                "idle index invariant"
            );
            if inst.ready_at > now {
                continue;
            }
            // Spot instances only host spot-tolerant jobs, and only while
            // the market is not about to reclaim them.
            if inst.spot
                && !(spot_ok
                    && self
                        .cloud
                        .instance(inst.cloud_id)
                        .terminates_at()
                        .is_none_or(|t| t > now + margin))
            {
                continue;
            }
            if self.config.profiling
                && self.cloud.delivered_quality(inst.cloud_id, now) < min_quality
            {
                continue;
            }
            return Some(h);
        }
        None
    }

    /// Acquires a fresh on-demand instance, retrying with exponential
    /// backoff when fault injection makes the attempt fail. Repeated
    /// failures on an optimized family fall back to the widely-available
    /// standard family; after [`MAX_ACQUIRE_ATTEMPTS`] the acquisition is
    /// forced through the never-failing path so placement always
    /// terminates. Without an active fault plan the first attempt always
    /// succeeds and this is identical to a plain acquisition.
    fn acquire(&mut self, itype: InstanceType, now: SimTime) -> InstanceHandle {
        let mut itype = itype;
        // Failed attempts push the instance's effective request time out:
        // the caller only learns about the failure after waiting for it.
        let mut delay = SimDuration::ZERO;
        let mut acquired = None;
        for attempt in 0..MAX_ACQUIRE_ATTEMPTS {
            match self.cloud.try_acquire(itype, now + delay) {
                Ok(id) => {
                    acquired = Some(id);
                    break;
                }
                Err(failure) => {
                    self.counters.acquire_retries += 1;
                    match failure {
                        AcquireFailure::OutOfCapacity => {
                            self.counters.capacity_errors += 1;
                            trace_event!(
                                self.tracer,
                                now + delay,
                                TraceKind::FaultOutOfCapacity {
                                    vcpus: itype.vcpus(),
                                    attempt,
                                }
                            );
                        }
                        AcquireFailure::SpinUpTimeout { waited } => {
                            self.counters.spinup_timeouts += 1;
                            trace_event!(
                                self.tracer,
                                now + delay,
                                TraceKind::FaultSpinUpTimeout {
                                    vcpus: itype.vcpus(),
                                    attempt,
                                    waited_us: waited.as_micros(),
                                }
                            );
                            delay += waited;
                        }
                    }
                    let backoff = SimDuration::from_secs_f64(2.0 * 2f64.powi(attempt as i32));
                    delay += backoff;
                    trace_event!(
                        self.tracer,
                        now + delay,
                        TraceKind::RecoveryRetry {
                            attempt,
                            backoff_us: backoff.as_micros(),
                        }
                    );
                    // Two strikes on an optimized family: assume the
                    // shortage is family-specific and fall back.
                    if attempt >= 1 && itype.family() != Family::Standard {
                        itype = InstanceType::standard(itype.vcpus());
                        self.counters.family_fallbacks += 1;
                        trace_event!(
                            self.tracer,
                            now + delay,
                            TraceKind::RecoveryFamilyFallback {
                                vcpus: itype.vcpus(),
                            }
                        );
                    }
                }
            }
        }
        let id = acquired.unwrap_or_else(|| self.cloud.acquire(itype, now + delay));
        let ready_at = self.cloud.instance(id).ready_at();
        self.counters.od_acquired += 1;
        if self.cloud.instance(id).performance_fault().is_some() {
            self.counters.degraded_instances += 1;
        }
        self.od_allocated.record_delta(now, itype.vcpus() as f64);
        self.track_od_instance(
            SchedInstance {
                cloud_id: id,
                itype,
                reserved: false,
                spot: false,
                ready_at,
                used_cores: 0,
                jobs: Vec::new(),
                retention_token: 0,
            },
            itype,
        )
    }

    /// Registers a freshly acquired on-demand instance in the arena and
    /// the secondary indices.
    fn track_od_instance(&mut self, inst: SchedInstance, itype: InstanceType) -> InstanceHandle {
        if self.auditor.is_enabled() {
            // Ledger acquisition time must match what the provider bills
            // from: the (possibly retry-delayed) request time, not `now`.
            let requested = self.cloud.instance(inst.cloud_id).requested_at();
            if inst.spot {
                self.auditor
                    .instance_acquired_spot(requested, inst.cloud_id.raw(), itype.vcpus());
            } else {
                self.auditor
                    .instance_acquired(requested, inst.cloud_id.raw(), itype.vcpus());
            }
        }
        let h = InstanceHandle::new(self.instances.insert(inst));
        self.live_od.insert(h);
        if itype.is_full_server() {
            self.od_pool.insert(h);
        }
        self.counters.index_rebuilds += 1;
        h
    }

    /// Acquires a fresh spot instance and schedules its market
    /// termination (if the price path outbids it within the horizon).
    fn acquire_spot(
        &mut self,
        itype: InstanceType,
        bid: f64,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> InstanceHandle {
        let id = self.cloud.acquire_spot(itype, bid, now);
        let inst = self.cloud.instance(id);
        let ready_at = inst.ready_at();
        let terminates_at = inst.terminates_at();
        self.counters.spot_acquired += 1;
        if inst.performance_fault().is_some() {
            self.counters.degraded_instances += 1;
        }
        self.od_allocated.record_delta(now, itype.vcpus() as f64);
        let h = self.track_od_instance(
            SchedInstance {
                cloud_id: id,
                itype,
                reserved: false,
                spot: true,
                ready_at,
                used_cores: 0,
                jobs: Vec::new(),
                retention_token: 0,
            },
            itype,
        );
        trace_event!(
            self.tracer,
            now,
            TraceKind::SpotAcquired {
                instance: id.raw(),
                bid_multiplier: bid,
                terminates_us: terminates_at.map(|t| t.as_micros()),
            }
        );
        if let Some(t) = terminates_at {
            events.schedule(t.max(now), Event::SpotTermination(h));
        }
        h
    }

    /// Whether a job is eligible for spot capacity under the configured
    /// policy: a tolerant, non-latency-critical batch job.
    fn spot_eligible(&self, spec: &JobSpec, est: &JobEstimate) -> bool {
        match self.config.spot {
            Some(policy) => {
                self.strat().is_hybrid()
                    && self.config.profiling
                    && !spec.class.is_latency_metric()
                    && !spec.class.is_sensitive()
                    && est.quality <= policy.max_quality
            }
            None => false,
        }
    }

    /// The spot market (or an injected preemption storm) outbid an
    /// instance: release it and requeue its jobs through the regular
    /// admission path, carrying their remaining work (progress since the
    /// last monitor tick is lost — the checkpointing granularity).
    pub fn on_spot_termination(
        &mut self,
        h: InstanceHandle,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        // A stale handle means the instance was already released (e.g.
        // drained by consolidation before the market event fired).
        let Ok(inst) = self.instances.get(h.key()) else {
            return Ok(());
        };
        let victims: Vec<(JobId, SlotKey)> = inst.jobs.clone();
        trace_event!(
            self.tracer,
            now,
            TraceKind::SpotTerminated {
                instance: inst.cloud_id.raw(),
                evicted: victims.len(),
            }
        );
        if self.cloud.fault_injector().in_storm(now) {
            self.counters.storm_preemptions += 1;
        }
        // Detach every victim, accounting for the work its preemption
        // destroys, before releasing the instance — re-admission must
        // never pack onto the dying host.
        let mut displaced = Vec::with_capacity(victims.len());
        for &(jid, _) in &victims {
            // Field-level lookup (not `running_job`) so the job borrow
            // stays disjoint from the counters we bump below.
            let Some(job) = self
                .running_by_id
                .get(&jid)
                .and_then(|&key| self.running.get(key).ok())
            else {
                continue;
            };
            self.counters.spot_terminations += 1;
            let cores = job.cores;
            let spec = &self.scenario.jobs()[job.spec_idx];
            // Work done since the last checkpoint tick is redone from
            // the checkpoint: it was real core-time, now lost.
            let lost = if job.started && matches!(spec.kind, JobKind::Batch { .. }) {
                let eff = cores.min(spec.cores).max(1) as f64;
                let slowdown = self.current_slowdown(jid, now);
                let since = audited_since(
                    &self.auditor,
                    now,
                    job.last_progress,
                    jid.0,
                    "spot-termination work loss",
                );
                since.as_secs_f64() * eff / slowdown
            } else {
                0.0
            };
            self.counters.work_lost_core_secs += lost;
            self.auditor.work_lost(now, jid.0, lost);
            self.auditor.job_requeued(now, jid.0);
            if self.tenancy.is_some() {
                if let Some(ts) = self.tenancy.as_mut() {
                    ts.fair.release(jid.0);
                }
                if self.auditor.is_enabled() {
                    let tenant = self.tenant_of(jid);
                    self.auditor.tenant_work_lost(now, tenant, jid.0, lost);
                }
            }
            trace_event!(
                self.tracer,
                now,
                TraceKind::RecoveryRequeue {
                    job: jid.0,
                    work_lost_core_secs: lost,
                }
            );
            self.detach_job(h, jid, cores, now)?;
            let job = self.remove_running(jid).expect("victim is running");
            displaced.push(job);
        }
        self.release_instance(h, now);
        // Requeue through the same admission path as a fresh arrival
        // (spot-ineligible: `carry` is set), so a preempted job is never
        // silently dropped — it is placed, queued, or escaped exactly
        // like any other job.
        for job in displaced {
            let spec = &self.scenario.jobs()[job.spec_idx];
            let est = JobEstimate {
                sensitivity: spec.sensitivity,
                quality: 0.0,
                cores: job.cores,
            };
            let carry = Carryover {
                remaining_work: job.remaining_work,
                queue_delay: job.queue_delay,
                finish_version: job.finish_version,
            };
            self.admit(
                job.spec_idx,
                &est,
                now,
                SimDuration::ZERO,
                Some(carry),
                events,
            );
        }
        self.drain_tenancy(now, events);
        Ok(())
    }

    /// Tenancy step of the monitor tick: ask the fair-share gate for
    /// starvation-relief preemptions (borrowed capacity first, then
    /// over-share tenants), execute them, then drain whatever the gate
    /// can now admit — the starved queue's head, since re-gated victims
    /// defer behind the borrow gate.
    fn tick_tenancy(
        &mut self,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        let victims = match self.tenancy.as_mut() {
            Some(ts) => ts.fair.starved_victims(now),
            None => return Ok(()),
        };
        for p in &victims {
            self.preempt_job(p, now, events)?;
        }
        self.drain_tenancy(now, events);
        Ok(())
    }

    /// Executes one cross-queue preemption: the victim's progress since
    /// its last checkpoint is lost (the same granularity as spot
    /// termination) and it re-enters admission behind the gate it just
    /// vacated, where the borrow gate keeps it from reclaiming the freed
    /// cores before the starved tenant does. A victim still waiting in
    /// the reserved queue is pulled back behind the gate without work
    /// loss.
    fn preempt_job(
        &mut self,
        p: &Preemption,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        let jid = JobId(p.victim_job);
        self.counters.tenant_preemptions += 1;
        if let Some(ts) = self.tenancy.as_mut() {
            ts.fair.release(jid.0);
        }
        if self.running_by_id.contains_key(&jid) {
            let (lost, cores, inst_h) = {
                let job = self.running_job(jid).expect("victim is running");
                let spec = &self.scenario.jobs()[job.spec_idx];
                let lost = if job.started && matches!(spec.kind, JobKind::Batch { .. }) {
                    let eff = job.cores.min(spec.cores).max(1) as f64;
                    let slowdown = self.current_slowdown(jid, now);
                    let since = audited_since(
                        &self.auditor,
                        now,
                        job.last_progress,
                        jid.0,
                        "tenant-preemption work loss",
                    );
                    since.as_secs_f64() * eff / slowdown
                } else {
                    0.0
                };
                (lost, job.cores, job.instance)
            };
            self.counters.work_lost_core_secs += lost;
            self.auditor.work_lost(now, jid.0, lost);
            self.auditor.job_requeued(now, jid.0);
            if self.auditor.is_enabled() {
                let tenant = self.tenant_of(jid);
                self.auditor.tenant_work_lost(now, tenant, jid.0, lost);
            }
            trace_event!(
                self.tracer,
                now,
                TraceKind::TenantPreempt {
                    job: jid.0,
                    victim_tenant: p.victim_tenant.0,
                    starved_tenant: p.starved_tenant.0,
                    work_lost_core_secs: lost,
                }
            );
            let reserved = self.inst(inst_h).reserved;
            let now_idle = self.detach_job(inst_h, jid, cores, now)?;
            let job = self.remove_running(jid).expect("victim is running");
            if reserved {
                self.reserved_busy.record_delta(now, -(cores as f64));
                self.queue_est.record_release(cores, now);
            } else if now_idle {
                self.handle_idle_od(inst_h, now, events);
            }
            let spec = &self.scenario.jobs()[job.spec_idx];
            let est = JobEstimate {
                sensitivity: spec.sensitivity,
                quality: 0.0,
                cores: job.cores,
            };
            let carry = Carryover {
                remaining_work: job.remaining_work,
                queue_delay: job.queue_delay,
                finish_version: job.finish_version,
            };
            self.admit(
                job.spec_idx,
                &est,
                now,
                SimDuration::ZERO,
                Some(carry),
                events,
            );
        } else if let Some(pos) = self
            .queue
            .iter()
            .position(|q| self.scenario.jobs()[q.spec_idx].id == jid)
        {
            let qj = self.queue.remove(pos).expect("position in bounds");
            self.auditor.queue_left(now, jid.0);
            self.auditor.job_requeued(now, jid.0);
            if self.auditor.is_enabled() {
                let tenant = self.tenant_of(jid);
                self.auditor.tenant_work_lost(now, tenant, jid.0, 0.0);
            }
            trace_event!(
                self.tracer,
                now,
                TraceKind::TenantPreempt {
                    job: jid.0,
                    victim_tenant: p.victim_tenant.0,
                    starved_tenant: p.starved_tenant.0,
                    work_lost_core_secs: 0.0,
                }
            );
            let est = JobEstimate {
                sensitivity: qj.est_sensitivity,
                quality: qj.est_quality,
                cores: qj.cores,
            };
            let waited = qj.prior_wait
                + audited_since(&self.auditor, now, qj.enqueued, jid.0, "preempt queue wait");
            self.admit(qj.spec_idx, &est, now, waited, qj.carry, events);
        }
        Ok(())
    }

    /// Binds a job to an instance and schedules its start. `carry` (set
    /// for re-admitted preemption victims) resumes the job from its last
    /// checkpoint instead of restarting it.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        spec_idx: usize,
        est: &JobEstimate,
        h: InstanceHandle,
        now: SimTime,
        queue_delay: SimDuration,
        carry: Option<Carryover>,
        events: &mut impl EventSink<Event>,
    ) {
        let spec = &self.scenario.jobs()[spec_idx];
        let cores = est.cores.min(self.inst(h).free_cores()).max(1);
        debug_assert!(self.inst(h).free_cores() >= cores, "overpacked instance");
        let (reserved_side, ready_at) = {
            let inst = self.inst_mut(h);
            inst.retention_token += 1;
            (inst.reserved, inst.ready_at)
        };
        let mut start_at = now.max(ready_at);
        if reserved_side {
            self.reserved_busy.record_delta(now, cores as f64);
        }
        // Data-locality extension: running a job away from its dataset
        // first copies it across the inter-cluster link.
        if let Some(data) = self.config.data {
            if data.data_in_private(spec.id.0) != reserved_side {
                let gb = spec.dataset_gb();
                start_at += data.transfer_delay(gb);
                self.counters.data_transfers += 1;
                self.counters.data_transferred_gb += gb;
            }
        }
        let isolation_p99 = match spec.kind {
            JobKind::LatencyCritical { offered_rps, .. } => self
                .latency_model
                .isolation_p99_us(offered_rps, spec.cores.max(1)),
            JobKind::Batch { .. } => 0.0,
        };
        let remaining_work = match (spec.kind, carry) {
            (JobKind::Batch { .. }, Some(c)) => c.remaining_work,
            (JobKind::Batch { work_core_secs }, None) => work_core_secs,
            (JobKind::LatencyCritical { .. }, _) => 0.0,
        };
        let key = self.running.insert(RunningJob {
            spec_idx,
            instance: h,
            cores,
            started: false,
            start_at,
            queue_delay: queue_delay + carry.map_or(SimDuration::ZERO, |c| c.queue_delay),
            remaining_work,
            last_progress: start_at,
            // Resume above the old life's projection versions so its
            // stale Finish events are ignored.
            finish_version: carry.map_or(0, |c| c.finish_version),
            lat_weighted_sum: 0.0,
            lat_weight: 0.0,
            isolation_p99,
            qos_bad_ticks: 0,
            rescheduled: carry.is_some(),
        });
        self.running_by_id.insert(spec.id, key);
        self.attach_job(h, spec.id, key, cores, now);
        events.schedule(start_at, Event::Start(spec.id));
    }

    /// Adds a job to the reserved queue. `wait` is delay already served
    /// before entering (the tenancy gate).
    fn enqueue(
        &mut self,
        spec_idx: usize,
        est: &JobEstimate,
        now: SimTime,
        wait: SimDuration,
        carry: Option<Carryover>,
    ) {
        self.counters.queued_jobs += 1;
        self.auditor
            .queue_entered(now, self.scenario.jobs()[spec_idx].id.0);
        let estimated_wait = self
            .queue_est
            .estimate_wait(est.cores, self.queue.len(), now);
        trace_event!(
            self.tracer,
            now,
            TraceKind::QueueEnter {
                job: self.scenario.jobs()[spec_idx].id.0,
                cores: est.cores,
                depth: self.queue.len(),
                estimated_wait_us: estimated_wait.map(|d| d.as_micros()),
            }
        );
        self.queue.push_back(QueuedJob {
            spec_idx,
            cores: est.cores,
            est_quality: est.quality,
            est_sensitivity: est.sensitivity,
            enqueued: now,
            prior_wait: wait,
            estimated_wait,
            carry,
        });
    }

    /// Tries to place queued jobs after capacity freed up (FIFO with
    /// skipping: a small job behind a large one may go first).
    fn drain_queue(&mut self, now: SimTime, events: &mut impl EventSink<Event>) {
        let mut i = 0;
        while i < self.queue.len() {
            let qj = self.queue[i].clone();
            let est = JobEstimate {
                sensitivity: qj.est_sensitivity,
                quality: qj.est_quality,
                cores: qj.cores,
            };
            let wait = qj.prior_wait
                + audited_since(
                    &self.auditor,
                    now,
                    qj.enqueued,
                    self.scenario.jobs()[qj.spec_idx].id.0,
                    "queue drain wait",
                );
            if self.try_place_reserved(qj.spec_idx, &est, now, wait, qj.carry, events) {
                self.auditor
                    .queue_left(now, self.scenario.jobs()[qj.spec_idx].id.0);
                self.queue_est.record_wait(qj.cores, wait);
                self.wait_samples.push(WaitSample {
                    size: qj.cores,
                    estimated: qj.estimated_wait,
                    actual: wait,
                });
                trace_event!(
                    self.tracer,
                    now,
                    TraceKind::QueueExit {
                        job: self.scenario.jobs()[qj.spec_idx].id.0,
                        cores: qj.cores,
                        estimated_wait_us: qj.estimated_wait.map(|d| d.as_micros()),
                        actual_wait_us: wait.as_micros(),
                        relieved: false,
                    }
                );
                self.queue.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Escape hatch for starving queued jobs (hybrids only): after waiting
    /// far beyond the expected spin-up, reroute to a large on-demand
    /// instance.
    fn relieve_starving_queue(&mut self, now: SimTime, events: &mut impl EventSink<Event>) {
        if !self.strat().is_hybrid() {
            return;
        }
        let spinup = self
            .config
            .cloud
            .spin_up
            .expected(InstanceType::full_server());
        let deadline = spinup.mul_f64(4.0).max(SimDuration::from_secs(60));
        let mut i = 0;
        while i < self.queue.len() {
            if now.saturating_since(self.queue[i].enqueued) > deadline {
                let qj = self.queue.remove(i).expect("index in bounds");
                let est = JobEstimate {
                    sensitivity: qj.est_sensitivity,
                    quality: qj.est_quality,
                    cores: qj.cores,
                };
                let wait = qj.prior_wait
                    + audited_since(
                        &self.auditor,
                        now,
                        qj.enqueued,
                        self.scenario.jobs()[qj.spec_idx].id.0,
                        "starvation-relief wait",
                    );
                self.auditor
                    .queue_left(now, self.scenario.jobs()[qj.spec_idx].id.0);
                self.wait_samples.push(WaitSample {
                    size: qj.cores,
                    estimated: qj.estimated_wait,
                    actual: wait,
                });
                trace_event!(
                    self.tracer,
                    now,
                    TraceKind::QueueExit {
                        job: self.scenario.jobs()[qj.spec_idx].id.0,
                        cores: qj.cores,
                        estimated_wait_us: qj.estimated_wait.map(|d| d.as_micros()),
                        actual_wait_us: now.saturating_since(qj.enqueued).as_micros(),
                        relieved: true,
                    }
                );
                // The waiting interval just served must ride along: the
                // assignment credits it to the job's queue delay, on top
                // of any delay carried from earlier preemptions.
                self.place_od_pool(qj.spec_idx, &est, now, wait, qj.carry, events);
            } else {
                i += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Interference
    // ------------------------------------------------------------------

    /// Aggregate pressure on instance `inst_idx` from co-scheduled jobs
    /// (true sensitivities, scaled by their core share), excluding
    /// `exclude`.
    fn internal_pressure(&self, h: InstanceHandle, exclude: Option<JobId>) -> ResourceVector {
        let inst = self.inst(h);
        let server = InstanceType::full_server().vcpus() as f64;
        let mut total = ResourceVector::ZERO;
        for &(jid, key) in &inst.jobs {
            if Some(jid) == exclude {
                continue;
            }
            // O(1) arena access; a stale key is a job no longer running.
            let Ok(job) = self.running.get(key) else {
                continue;
            };
            if !job.started {
                continue;
            }
            let spec = &self.scenario.jobs()[job.spec_idx];
            total = total.add(&spec.sensitivity.scale(job.cores as f64 / server));
        }
        total.scale(self.config.internal_pressure_scale)
    }

    /// The total pressure a job experiences right now: external tenants
    /// plus co-scheduled jobs.
    fn pressure_on(&self, jid: JobId, now: SimTime) -> ResourceVector {
        let job = self.running_job(jid).expect("running");
        let inst = self.inst(job.instance);
        let external = self.cloud.external_pressure(inst.cloud_id, now);
        external.add(&self.internal_pressure(job.instance, Some(jid)))
    }

    /// The multiplicative slowdown `jid` currently suffers: interference
    /// from external tenants and co-scheduled jobs, times any injected
    /// performance fault on the host (1.0 without an active fault plan).
    pub fn current_slowdown(&self, jid: JobId, now: SimTime) -> f64 {
        let job = self.running_job(jid).expect("running");
        let spec = &self.scenario.jobs()[job.spec_idx];
        let pressure = self.pressure_on(jid, now);
        let host = self.inst(job.instance).cloud_id;
        self.cloud
            .slowdown_model()
            .slowdown(&spec.sensitivity, &pressure)
            * self.cloud.fault_slowdown(host, now)
    }

    // ------------------------------------------------------------------
    // Execution events
    // ------------------------------------------------------------------

    /// A job starts executing.
    pub fn on_start(&mut self, jid: JobId, now: SimTime, events: &mut impl EventSink<Event>) {
        let Some(job) = self.running_job_mut(jid) else {
            return;
        };
        if job.started {
            return;
        }
        if now < job.start_at {
            // A stale Start from a pre-preemption life of this job id;
            // the re-admitted job's own Start is still in flight.
            return;
        }
        job.started = true;
        job.last_progress = now;
        let spec_idx = job.spec_idx;
        let spec = &self.scenario.jobs()[spec_idx];
        match spec.kind {
            JobKind::Batch { .. } => {
                let job = self.running_job(jid).expect("running");
                let slowdown = self.current_slowdown(jid, now);
                let eff = job.cores.min(spec.cores).max(1) as f64;
                let finish = now + SimDuration::from_secs_f64(job.remaining_work * slowdown / eff);
                let v = {
                    let job = self.running_job_mut(jid).expect("running");
                    job.finish_version += 1;
                    job.finish_version
                };
                events.schedule(finish, Event::Finish(jid, v));
            }
            JobKind::LatencyCritical { lifetime, .. } => {
                // Requests issued while the service waited for spin-up or
                // in the queue saw effectively unbounded latency; charge
                // the wait at saturation level so delayed starts hurt the
                // latency metric the way they do in the paper.
                let wait = audited_since(&self.auditor, now, spec.arrival, jid.0, "LC start wait")
                    .as_secs_f64();
                let saturated = self.latency_model.saturated_p99_us();
                let v = {
                    let job = self.running_job_mut(jid).expect("running");
                    job.lat_weighted_sum += saturated * wait;
                    job.lat_weight += wait;
                    job.finish_version += 1;
                    job.finish_version
                };
                events.schedule(now + lifetime, Event::Finish(jid, v));
            }
        }
    }

    /// A job's projected finish fires.
    pub fn on_finish(
        &mut self,
        jid: JobId,
        version: u64,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        let Some(job) = self.running_job(jid) else {
            return Ok(()); // already finished
        };
        if job.finish_version != version || !job.started {
            return Ok(()); // stale projection
        }
        let job = self.remove_running(jid).expect("running");
        // The projection completes exactly the work still outstanding at
        // the last checkpoint; credit it to the executed ledger.
        self.auditor.work_executed(now, jid.0, job.remaining_work);
        self.auditor.job_completed(now, jid.0);
        if self.tenancy.is_some() && self.auditor.is_enabled() {
            let tenant = self.tenant_of(jid);
            self.auditor
                .tenant_work_executed(now, tenant, jid.0, job.remaining_work);
            self.auditor.tenant_job_completed(now, tenant, jid.0);
        }
        let spec = &self.scenario.jobs()[job.spec_idx];
        let inst_h = job.instance;

        // Record the outcome.
        let arrival = spec.arrival;
        let (completion, p99, isolation, normalized) = match spec.kind {
            JobKind::Batch { .. } => {
                let completion =
                    audited_since(&self.auditor, now, arrival, jid.0, "batch completion");
                let ideal = spec.ideal_duration().as_secs_f64().max(1e-9);
                let norm = (ideal / completion.as_secs_f64().max(1e-9)).min(1.0);
                (Some(completion), None, None, norm)
            }
            JobKind::LatencyCritical { offered_rps, .. } => {
                let p99 = if job.lat_weight > 0.0 {
                    job.lat_weighted_sum / job.lat_weight
                } else {
                    // Finished before any tick: sample once now.
                    let slowdown = {
                        let pressure = {
                            let inst = self.inst(inst_h);
                            let external = self.cloud.external_pressure(inst.cloud_id, now);
                            external.add(&self.internal_pressure(inst_h, Some(jid)))
                        };
                        self.cloud
                            .slowdown_model()
                            .slowdown(&spec.sensitivity, &pressure)
                    };
                    self.latency_model
                        .p99_latency_us(offered_rps, job.cores, slowdown)
                };
                let norm = (job.isolation_p99 / p99.max(1e-9)).min(1.0);
                (None, Some(p99), Some(job.isolation_p99), norm)
            }
        };
        self.outcomes.push(JobOutcome {
            id: spec.id,
            class: spec.class,
            arrival,
            started: job.start_at,
            finished: now,
            on_reserved: self.inst(inst_h).reserved,
            cores: job.cores,
            completion,
            p99_latency_us: p99,
            isolation_p99_us: isolation,
            normalized_perf: normalized,
            queue_delay: job.queue_delay,
            spinup_delay: self
                .inst(inst_h)
                .ready_at
                .saturating_since(arrival)
                .min(job.start_at.saturating_since(arrival)),
            rescheduled: job.rescheduled,
        });
        self.last_finish = self.last_finish.max(now);

        // Free the capacity.
        let freed = job.cores;
        let reserved = self.inst(inst_h).reserved;
        let now_idle = self.detach_job(inst_h, jid, freed, now)?;
        if reserved {
            self.reserved_busy.record_delta(now, -(freed as f64));
            self.queue_est.record_release(freed, now);
            self.drain_queue(now, events);
        } else if now_idle {
            self.handle_idle_od(inst_h, now, events);
        }
        // Tenancy: the finished job leaves the pool; the freed share may
        // admit deferred work.
        if let Some(ts) = self.tenancy.as_mut() {
            ts.fair.release(jid.0);
            self.drain_tenancy(now, events);
        }
        Ok(())
    }

    /// Decides what to do with a newly idle on-demand instance: release
    /// immediately if its delivered quality is poor, otherwise retain for
    /// `retention_mult ×` its spin-up overhead.
    fn handle_idle_od(
        &mut self,
        h: InstanceHandle,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) {
        let (cloud_id, spin_up) = {
            let inst = self.inst(h);
            (
                inst.cloud_id,
                self.cloud.instance(inst.cloud_id).spin_up_overhead(),
            )
        };
        let quality = self.cloud.delivered_quality(cloud_id, now);
        let decision = self.strat().retention(&RetentionCtx {
            spin_up,
            delivered_quality: quality,
            profiling: self.config.profiling,
            retention_mult: self.config.retention_mult,
            quality_retention_threshold: self.config.quality_retention_threshold,
        });
        let retention = match decision {
            RetentionDecision::ReleaseNow => {
                // Poorly-performing instance: release immediately.
                self.counters.od_released_immediately += 1;
                self.release_instance(h, now);
                return;
            }
            RetentionDecision::Retain(d) => d,
        };
        let inst = self.inst_mut(h);
        inst.retention_token += 1;
        let token = inst.retention_token;
        let bucket = (inst.itype.family(), inst.itype.vcpus(), h);
        let raw_id = inst.cloud_id.raw();
        self.auditor.instance_idle(now, raw_id);
        self.idle_buckets.insert(bucket);
        self.counters.index_rebuilds += 1;
        events.schedule(now + retention, Event::Retention(h, token));
    }

    /// Retention timer fired: release the instance if it is still idle.
    /// A stale handle means the instance was already released — the
    /// typed-no-op analogue of the old `released` flag check.
    pub fn on_retention(&mut self, h: InstanceHandle, token: u64, now: SimTime) {
        let Ok(inst) = self.instances.get(h.key()) else {
            return;
        };
        if inst.retention_token != token || !inst.jobs.is_empty() {
            return;
        }
        trace_event!(
            self.tracer,
            now,
            TraceKind::RetentionExpired {
                instance: inst.cloud_id.raw(),
            }
        );
        self.release_instance(h, now);
    }

    /// Releases an on-demand instance: retires its arena slot (every
    /// outstanding handle turns stale) and drops it from all indices.
    /// Stale handles make double releases impossible by construction.
    fn release_instance(&mut self, h: InstanceHandle, now: SimTime) {
        let Ok(inst) = self.instances.get(h.key()) else {
            return;
        };
        debug_assert!(!inst.reserved, "reserved instances are never released");
        let vcpus = inst.itype.vcpus() as f64;
        let id = inst.cloud_id;
        let bucket = (inst.itype.family(), inst.itype.vcpus(), h);
        self.auditor.instance_released(now, id.raw());
        self.instances.retire(h.key()).expect("checked live above");
        self.live_od.remove(&h);
        self.od_pool.remove(&h);
        self.idle_buckets.remove(&bucket);
        self.counters.index_rebuilds += 1;
        self.od_allocated.record_delta(now, -vcpus);
        self.cloud.release(id, now);
    }

    // ------------------------------------------------------------------
    // Monitor tick
    // ------------------------------------------------------------------

    /// Periodic monitoring: quality sampling, progress re-projection,
    /// QoS actions, feedback loops.
    /// Feeds the quality monitor one delivered-quality sample per ready
    /// live on-demand instance — the per-tick quantile churn that the
    /// `QuantileSet` made incremental, and what the
    /// [`ProfSpan::MonitorQuantiles`] span times.
    fn sample_delivered_quality(&mut self, now: SimTime) {
        // `live_od` iterates ascending by index — the same order the
        // old full scan visited live on-demand instances in.
        for &h in &self.live_od {
            let inst = self.instances.get(h.key()).expect("live index entry");
            if inst.ready_at > now {
                continue;
            }
            let q = self.cloud.delivered_quality(inst.cloud_id, now);
            self.monitor.record(inst.itype, q);
        }
    }

    pub fn on_tick(
        &mut self,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        // 0. Fault injection: while the monitor signal is dropped out, no
        // quality samples arrive and the dynamic policy degrades to the
        // static soft-limit rule (see `decide_placement`).
        let dropped = self.cloud.fault_injector().monitor_dropped(now);
        if dropped != self.monitor_dropped {
            self.monitor_dropped = dropped;
            trace_event!(
                self.tracer,
                now,
                TraceKind::FaultMonitorDropout { active: dropped }
            );
            if self.config.policy == crate::mapping::MappingPolicy::Dynamic
                && self.strat().is_hybrid()
            {
                if dropped {
                    self.counters.policy_fallbacks += 1;
                }
                trace_event!(
                    self.tracer,
                    now,
                    TraceKind::RecoveryPolicyFallback { active: dropped }
                );
            }
        }

        // 1. Sample delivered quality of active on-demand instances.
        if dropped {
            self.counters.monitor_dropout_ticks += 1;
        } else if self.profiler.is_enabled() {
            let profiler = self.profiler.clone();
            profiler.time(ProfSpan::MonitorQuantiles, || {
                self.sample_delivered_quality(now)
            });
        } else {
            self.sample_delivered_quality(now);
        }

        // 2. Update running jobs, ascending by scenario id — the iteration
        // order of the old id-keyed map, which floating-point accumulation
        // makes order-bearing.
        let jids: Vec<JobId> = self.running_by_id.keys().copied().collect();
        for jid in jids {
            self.update_job(jid, now, events)?;
        }

        // 2b. Tenancy: starvation-relief preemption, then drain the gate.
        if self.tenancy.is_some() {
            self.tick_tenancy(now, events)?;
        }

        // 3. Feedback loops, starting with the strategy's soft-limit
        // adaptation hook (the paper's linear transfer functions by
        // default).
        let mut strategy = self.strategy.take().expect("strategy present");
        strategy.adapt_limits(&mut self.limits, self.queue.len(), now);
        self.strategy = Some(strategy);
        self.relieve_starving_queue(now, events);
        self.consolidate_od_pool(now, events)?;

        // 4. Optional utilization heat-map samples. Reserved instances
        // occupy the index prefix, so "reserved prefix, then live
        // on-demand ascending" is exactly the old whole-arena scan order.
        if self.config.record_utilization {
            for &h in self.reserved_handles.iter().chain(self.live_od.iter()) {
                let inst = self.instances.get(h.key()).expect("live index entry");
                if inst.ready_at > now {
                    continue;
                }
                self.utilization_samples.push(UtilizationSample {
                    instance_index: h.index(),
                    reserved: inst.reserved,
                    time: now,
                    utilization: inst.used_cores as f64 / inst.itype.vcpus() as f64,
                });
            }
        }
        Ok(())
    }

    /// Consolidates the hybrids' on-demand pool: when a full-server
    /// on-demand instance is lightly used and another pool instance can
    /// absorb its jobs, migrate them over so the drained instance can be
    /// released after its retention window. Both instances are already
    /// up, so migration pays no spin-up. At most one migration per tick
    /// to avoid thrash. The pure on-demand baselines do not do this —
    /// consolidation is part of HCloud's active management.
    fn consolidate_od_pool(
        &mut self,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        if !self.strat().is_hybrid() || !self.config.profiling {
            return Ok(());
        }
        // The on-demand pool index (spot included, matching the old
        // whole-arena filter), ascending by index like the old scan.
        let pool: Vec<InstanceHandle> = self
            .od_pool
            .iter()
            .copied()
            .filter(|&h| self.inst(h).ready_at <= now)
            .collect();
        if pool.len() < 2 {
            return Ok(());
        }
        // Source: the least-used instance with at most 4 busy cores.
        let Some(&src) = pool
            .iter()
            .filter(|&&h| {
                let u = self.inst(h).used_cores;
                u > 0 && u <= 4
            })
            .min_by_key(|&&h| self.inst(h).used_cores)
        else {
            return Ok(());
        };
        let need = self.inst(src).used_cores;
        // Destination: the fullest other instance that still fits the
        // whole source load within the packing headroom.
        let cap = InstanceType::full_server().vcpus().saturating_sub(2);
        let Some(&dst) = pool
            .iter()
            .filter(|&&h| h != src && self.inst(h).used_cores + need <= cap)
            .max_by_key(|&&h| self.inst(h).used_cores)
        else {
            return Ok(());
        };
        let moving: Vec<(JobId, SlotKey)> = self.inst(src).jobs.clone();
        for (jid, key) in moving {
            let Ok(job) = self.running.get_mut(key) else {
                continue;
            };
            let cores = job.cores;
            job.instance = dst;
            self.detach_job(src, jid, cores, now)?;
            self.attach_job(dst, jid, key, cores, now);
        }
        self.inst_mut(dst).retention_token += 1;
        if self.inst(src).jobs.is_empty() {
            self.handle_idle_od(src, now, events);
        }
        Ok(())
    }

    /// Progress + QoS update for one job.
    fn update_job(
        &mut self,
        jid: JobId,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        let Some(job) = self.running_job(jid) else {
            return Ok(());
        };
        if !job.started {
            return Ok(());
        }
        let spec_idx = job.spec_idx;
        let inst_h = job.instance;
        let cores = job.cores;
        let spec = &self.scenario.jobs()[spec_idx];
        let slowdown = self.current_slowdown(jid, now);

        match spec.kind {
            JobKind::Batch { .. } => {
                let eff = cores.min(spec.cores).max(1) as f64;
                let last_progress = self.running_job(jid).expect("running").last_progress;
                let dt = audited_since(&self.auditor, now, last_progress, jid.0, "batch tick dt")
                    .as_secs_f64();
                let (executed, v, finish) = {
                    let job = self.running_job_mut(jid).expect("running");
                    let before = job.remaining_work;
                    job.remaining_work = (job.remaining_work - eff * dt / slowdown).max(0.0);
                    job.last_progress = now;
                    job.finish_version += 1;
                    (
                        before - job.remaining_work,
                        job.finish_version,
                        now + SimDuration::from_secs_f64(job.remaining_work * slowdown / eff),
                    )
                };
                self.auditor.work_executed(now, jid.0, executed);
                if self.tenancy.is_some() && self.auditor.is_enabled() {
                    let tenant = self.tenant_of(jid);
                    self.auditor
                        .tenant_work_executed(now, tenant, jid.0, executed);
                }
                events.schedule(finish, Event::Finish(jid, v));
            }
            JobKind::LatencyCritical { offered_rps, .. } => {
                let rho = self.latency_model.utilization(offered_rps, cores, slowdown);
                // Local QoS action: grow the allocation on the same
                // server when the service nears saturation (Section 3.3).
                if self.config.profiling && rho > 0.85 {
                    let free = self.inst(inst_h).free_cores();
                    if free > 0 {
                        let grow = free.min(cores);
                        self.inst_mut(inst_h).used_cores += grow;
                        let raw_id = self.inst(inst_h).cloud_id.raw();
                        self.auditor.cores_bound(now, raw_id, grow);
                        if self.inst(inst_h).reserved {
                            self.reserved_busy.record_delta(now, grow as f64);
                        }
                        self.running_job_mut(jid).expect("running").cores += grow;
                        trace_event!(
                            self.tracer,
                            now,
                            TraceKind::LocalBoost {
                                job: jid.0,
                                extra_cores: grow,
                                cores: cores + grow,
                            }
                        );
                    }
                }
                // Deliberately saturating, NOT `audited_since`: a
                // rescheduled service's checkpoint sits in the future
                // (the replacement instance's ready time), and ticks
                // before it must contribute zero weight.
                let (dt, grown_cores) = {
                    let job = self.running_job_mut(jid).expect("running");
                    let dt = now.saturating_since(job.last_progress).as_secs_f64();
                    job.last_progress = now;
                    (dt, job.cores)
                };
                let p99 = self
                    .latency_model
                    .p99_latency_us(offered_rps, grown_cores, slowdown);
                // Rescheduling: persistent severe degradation on an
                // on-demand instance (rare; Section 3.3 "the latter is
                // unlikely in practice").
                let (badly, bad_ticks, threshold, rescheduled) = {
                    let job = self.running_job_mut(jid).expect("running");
                    job.lat_weighted_sum += p99 * dt;
                    job.lat_weight += dt;
                    let threshold = 6.0 * job.isolation_p99;
                    let badly = p99 > threshold;
                    if badly {
                        job.qos_bad_ticks += 1;
                    } else {
                        job.qos_bad_ticks = 0;
                    }
                    (badly, job.qos_bad_ticks, threshold, job.rescheduled)
                };
                if badly {
                    trace_event!(
                        self.tracer,
                        now,
                        TraceKind::QosViolation {
                            job: jid.0,
                            p99,
                            threshold,
                            bad_ticks,
                        }
                    );
                }
                let should_reschedule = self.config.profiling
                    && bad_ticks >= 3
                    && !rescheduled
                    && !self.inst(inst_h).reserved;
                if should_reschedule {
                    self.reschedule(jid, now, events)?;
                }
            }
        }
        Ok(())
    }

    /// Moves a persistently degraded job to a fresh on-demand instance.
    fn reschedule(
        &mut self,
        jid: JobId,
        now: SimTime,
        events: &mut impl EventSink<Event>,
    ) -> Result<(), AuditViolation> {
        self.counters.reschedules += 1;
        let (cores, old_inst) = {
            let job = self.running_job(jid).expect("running");
            (job.cores, job.instance)
        };
        trace_event!(
            self.tracer,
            now,
            TraceKind::Reschedule {
                job: jid.0,
                from_instance: self.inst(old_inst).cloud_id.raw(),
            }
        );
        // The replacement matches the old type; read it before the old
        // instance can be released (its handle would then be stale).
        let itype = self.inst(old_inst).itype;
        // Free the old slot.
        if self.detach_job(old_inst, jid, cores, now)? {
            // A degraded instance we are fleeing: release immediately.
            self.counters.od_released_immediately += 1;
            self.release_instance(old_inst, now);
        }
        // Acquire a replacement of the same type.
        let new_h = self.acquire(itype, now);
        let key = *self.running_by_id.get(&jid).expect("running");
        self.attach_job(new_h, jid, key, cores, now);
        let ready = {
            let inst = self.inst_mut(new_h);
            inst.retention_token += 1;
            inst.ready_at
        };
        let job = self.running_job_mut(jid).expect("running");
        job.instance = new_h;
        job.rescheduled = true;
        job.qos_bad_ticks = 0;
        // Service resumes once the replacement is up; the LC finish event
        // (fixed lifetime) remains valid, so no rescheduling of events.
        job.last_progress = ready.max(now);
        let _ = events;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Consumes the scheduler and produces the run result.
    ///
    /// The makespan is the completion time of the last job (`end` only
    /// matters for empty scenarios); pending retention or spot-market
    /// events past that instant do not extend the run.
    pub fn into_result(mut self, end: SimTime) -> RunResult {
        let makespan = if self.outcomes.is_empty() {
            end
        } else {
            self.last_finish
        };
        // Release everything still held, ascending by index (the order
        // the old whole-arena scan released in).
        let still_open: Vec<InstanceHandle> = self.live_od.iter().copied().collect();
        for h in still_open {
            self.release_instance(h, makespan.max(SimTime::ZERO));
        }
        RunResult {
            strategy: self.config.strategy.clone(),
            outcomes: self.outcomes,
            usage_records: self.cloud.usage_records(makespan),
            makespan,
            reserved_cores: self.reserved_total,
            od_allocated: self.od_allocated,
            reserved_busy: self.reserved_busy,
            soft_limit_trace: self.limits.trace().to_vec(),
            wait_samples: self.wait_samples,
            utilization_samples: self.utilization_samples,
            counters: self.counters,
            decisions: self.decisions,
            tenant_stats: self
                .tenancy
                .as_ref()
                .map(|ts| ts.fair.stats())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotPolicy;
    use crate::strategy::StrategyKind;
    use hcloud_sim::event::EventQueue;
    use hcloud_tenancy::{TenancyPlan, TenantSpec};
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    fn job(id: u64, class: AppClass, cores: u32, secs: u64) -> JobSpec {
        let mut rng = SimRng::from_seed_u64(id);
        let kind = if class.is_latency_metric() {
            JobKind::LatencyCritical {
                offered_rps: LatencyModel::default().offered_rps_for(cores),
                lifetime: SimDuration::from_secs(secs),
            }
        } else {
            JobKind::Batch {
                work_core_secs: (cores as u64 * secs) as f64,
            }
        };
        JobSpec {
            id: JobId(id),
            class,
            arrival: SimTime::ZERO,
            kind,
            cores,
            sensitivity: class.sample_sensitivity(&mut rng),
        }
    }

    fn scenario_of(jobs: Vec<JobSpec>) -> Scenario {
        Scenario::from_jobs(ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 10), jobs)
    }

    fn scheduler<'a>(
        scenario: &'a Scenario,
        config: &'a RunConfig,
    ) -> (Scheduler<'a>, EventQueue<Event>) {
        (
            Scheduler::new(scenario, config, &RngFactory::new(1)),
            EventQueue::new(),
        )
    }

    /// Tests that attach ad-hoc jobs directly (bypassing `assign`) still
    /// need an arena slot for the `(JobId, SlotKey)` pair; this inserts a
    /// placeholder running-job record and returns its key.
    fn fake_slot(sched: &mut Scheduler<'_>, h: InstanceHandle, cores: u32, at: SimTime) -> SlotKey {
        sched.running.insert(RunningJob {
            spec_idx: 0,
            instance: h,
            cores,
            started: false,
            start_at: at,
            queue_delay: SimDuration::ZERO,
            remaining_work: 0.0,
            last_progress: at,
            finish_version: 0,
            lat_weighted_sum: 0.0,
            lat_weight: 0.0,
            isolation_p99: 0.0,
            qos_bad_ticks: 0,
            rescheduled: false,
        })
    }

    #[test]
    fn estimate_without_profiling_uses_user_sizing() {
        let jobs = vec![job(0, AppClass::HadoopSvm, 8, 300)];
        let scenario = scenario_of(jobs);
        let config = RunConfig::new(StrategyKind::StaticReserved).without_profiling();
        let (mut sched, _) = scheduler(&scenario, &config);
        let est = sched.estimate(&scenario.jobs()[0]);
        assert_eq!(est.cores, scenario.jobs()[0].user_sized_cores());
        assert_eq!(est.quality, 0.0);
        assert_eq!(est.sensitivity, ResourceVector::ZERO);
        assert_eq!(sched.counters.classified, 0);
    }

    #[test]
    fn estimate_with_profiling_charges_one_profile_per_class() {
        let jobs = vec![
            job(0, AppClass::Memcached, 2, 300),
            job(1, AppClass::Memcached, 2, 300),
            job(2, AppClass::SparkBatch, 4, 300),
        ];
        let scenario = scenario_of(jobs);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let (mut sched, _) = scheduler(&scenario, &config);
        for spec in scenario.jobs() {
            let _ = sched.estimate(spec);
        }
        assert_eq!(sched.counters.classified, 3);
        assert_eq!(sched.counters.profiled, 2, "one profiling run per class");
    }

    #[test]
    fn dedicated_itype_matches_dominant_sensitivity() {
        let scenario = scenario_of(vec![job(0, AppClass::SparkBatch, 4, 300)]);
        let config = RunConfig::new(StrategyKind::OnDemandMixed);
        let (sched, _) = scheduler(&scenario, &config);
        // Memory-dominant estimate → memory-optimized family.
        let mem = JobEstimate {
            sensitivity: ResourceVector::ZERO.with(Resource::MemCapacity, 0.9),
            quality: 0.9,
            cores: 3,
        };
        let t = sched.dedicated_itype(&mem, AppClass::SparkBatch);
        assert_eq!(t.family(), Family::MemoryOptimized);
        assert_eq!(t.vcpus(), 4, "3 cores round up to the next size");
        // CPU-dominant → compute-optimized.
        let cpu = JobEstimate {
            sensitivity: ResourceVector::ZERO.with(Resource::Cpu, 0.9),
            quality: 0.9,
            cores: 2,
        };
        assert_eq!(
            sched.dedicated_itype(&cpu, AppClass::HadoopSvm).family(),
            Family::ComputeOptimized
        );
        // Balanced → standard.
        let flat = JobEstimate {
            sensitivity: ResourceVector::uniform(0.4),
            quality: 0.5,
            cores: 2,
        };
        assert_eq!(
            sched.dedicated_itype(&flat, AppClass::HadoopSvm).family(),
            Family::Standard
        );
    }

    #[test]
    fn internal_pressure_respects_config_scale() {
        let jobs = vec![
            job(0, AppClass::SparkBatch, 8, 600),
            job(1, AppClass::SparkBatch, 8, 600),
        ];
        let scenario = scenario_of(jobs);
        let mut config = RunConfig::new(StrategyKind::StaticReserved);
        config.reserved_cores_override = Some(16);
        config.internal_pressure_scale = 1.0;
        let run_pressure = |config: &RunConfig| {
            let (mut sched, mut events) = scheduler(&scenario, config);
            sched
                .on_arrival(JobId(0), SimTime::ZERO, &mut events)
                .unwrap();
            sched
                .on_arrival(JobId(1), SimTime::ZERO, &mut events)
                .unwrap();
            sched.on_start(JobId(0), SimTime::ZERO, &mut events);
            sched.on_start(JobId(1), SimTime::ZERO, &mut events);
            let h = sched.reserved_handles[0];
            sched.internal_pressure(h, Some(JobId(0))).sum()
        };
        let full = run_pressure(&config);
        config.internal_pressure_scale = 0.1;
        let tenth = run_pressure(&config);
        assert!(full > 0.0);
        assert!((tenth - full * 0.1).abs() < 1e-9, "{tenth} vs {full}");
    }

    #[test]
    fn consolidation_drains_lightly_used_pool_instances() {
        // Two od pool instances, one holding a small job: a tick should
        // migrate the job and idle the source.
        let jobs = vec![
            job(0, AppClass::HadoopSvm, 2, 3600),
            job(1, AppClass::HadoopSvm, 8, 3600),
        ];
        let scenario = scenario_of(jobs);
        let mut config = RunConfig::new(StrategyKind::HybridMixed);
        config.reserved_cores_override = Some(16);
        let (mut sched, mut events) = scheduler(&scenario, &config);
        // Force both jobs onto separate od pool instances.
        let e0 = sched.estimate(&scenario.jobs()[0]);
        let e1 = sched.estimate(&scenario.jobs()[1]);
        sched.place_od_pool(0, &e0, SimTime::ZERO, SimDuration::ZERO, None, &mut events);
        let first_pool = *sched.od_pool.iter().next().expect("pool instance acquired");
        let h = sched.acquire(InstanceType::full_server(), SimTime::ZERO);
        sched.assign(
            1,
            &e1,
            h,
            SimTime::ZERO,
            SimDuration::ZERO,
            None,
            &mut events,
        );
        sched.on_start(JobId(0), SimTime::from_secs(30), &mut events);
        sched.on_start(JobId(1), SimTime::from_secs(30), &mut events);
        assert!(sched.inst(first_pool).used_cores > 0);
        sched
            .consolidate_od_pool(SimTime::from_secs(60), &mut events)
            .unwrap();
        // The small job moved off one of the two instances.
        let empties = sched
            .instances
            .iter()
            .filter(|(_, i)| !i.reserved && i.jobs.is_empty())
            .count();
        assert_eq!(empties, 1, "one pool instance should have been drained");
        // Bookkeeping stays consistent.
        let total_assigned: u32 = sched.instances.iter().map(|(_, i)| i.used_cores).sum();
        assert_eq!(total_assigned, e0.cores + e1.cores);
    }

    #[test]
    fn spot_eligibility_gates_correctly() {
        let jobs = vec![
            job(0, AppClass::HadoopSvm, 4, 300),   // tolerant batch
            job(1, AppClass::Memcached, 2, 300),   // latency-critical
            job(2, AppClass::SparkRealtime, 1, 5), // sensitive batch
        ];
        let scenario = scenario_of(jobs);
        let mut config = RunConfig::new(StrategyKind::HybridMixed);
        config.spot = Some(SpotPolicy {
            bid_multiplier: 0.6,
            max_quality: 0.99,
        });
        let (mut sched, _) = scheduler(&scenario, &config);
        let est = |sched: &mut Scheduler, i: usize| sched.estimate(&scenario.jobs()[i]);
        let e0 = est(&mut sched, 0);
        let e1 = est(&mut sched, 1);
        let e2 = est(&mut sched, 2);
        assert!(sched.spot_eligible(&scenario.jobs()[0], &e0));
        assert!(
            !sched.spot_eligible(&scenario.jobs()[1], &e1),
            "LC never rides spot"
        );
        assert!(
            !sched.spot_eligible(&scenario.jobs()[2], &e2),
            "sensitive batch never rides spot"
        );
        // OdM (non-hybrid) never uses spot even for tolerant jobs.
        let mut odm = RunConfig::new(StrategyKind::OnDemandMixed);
        odm.spot = config.spot;
        let (mut sched, _) = scheduler(&scenario, &odm);
        let e0 = sched.estimate(&scenario.jobs()[0]);
        assert!(!sched.spot_eligible(&scenario.jobs()[0], &e0));
    }

    #[test]
    fn queue_drain_is_fifo_with_skip() {
        // Reserved pool of 16 cores; a 16-core job fills it, then a
        // 16-core job and a 2-core job queue. On release, the 16-core job
        // (head of queue) is placed; the 2-core one waits if no room, or
        // fits if there is.
        let jobs = vec![
            job(0, AppClass::Memcached, 16, 600),
            job(1, AppClass::Memcached, 16, 600),
            job(2, AppClass::Memcached, 2, 600),
        ];
        let scenario = scenario_of(jobs);
        let mut config = RunConfig::new(StrategyKind::StaticReserved);
        config.reserved_cores_override = Some(16);
        let (mut sched, mut events) = scheduler(&scenario, &config);
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        sched
            .on_arrival(JobId(1), SimTime::ZERO, &mut events)
            .unwrap();
        sched
            .on_arrival(JobId(2), SimTime::ZERO, &mut events)
            .unwrap();
        assert_eq!(sched.queue.len(), 2, "both later jobs queue");
        sched.on_start(JobId(0), SimTime::ZERO, &mut events);
        // Finish the first job: the queue head (16-core) takes the slot.
        let version = sched.running_job(JobId(0)).unwrap().finish_version;
        sched
            .on_finish(JobId(0), version, SimTime::from_secs(600), &mut events)
            .unwrap();
        assert_eq!(sched.queue.len(), 1);
        assert!(sched.running_by_id.contains_key(&JobId(1)));
        assert!(!sched.running_by_id.contains_key(&JobId(2)) || sched.queue.is_empty());
    }

    #[test]
    fn foreign_job_id_fails_typed() {
        let scenario = scenario_of(vec![job(0, AppClass::HadoopSvm, 2, 100)]);
        let config = RunConfig::new(StrategyKind::StaticReserved);
        let (mut sched, mut events) = scheduler(&scenario, &config);
        let err = sched
            .on_arrival(JobId(999), SimTime::ZERO, &mut events)
            .expect_err("an id outside the scenario must fail typed");
        assert_eq!(err, UnknownJob { id: JobId(999) });
        assert_eq!(sched.pending_jobs(), 0, "nothing was admitted");
        assert!(events.is_empty(), "nothing was scheduled");
        // The in-scenario id still works.
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        assert_eq!(sched.pending_jobs(), 1);
    }

    #[test]
    fn retention_token_prevents_stale_release() {
        let jobs = vec![
            job(0, AppClass::HadoopSvm, 2, 100),
            job(1, AppClass::HadoopSvm, 2, 100),
        ];
        let scenario = scenario_of(jobs);
        let config = RunConfig::new(StrategyKind::OnDemandMixed);
        let (mut sched, mut events) = scheduler(&scenario, &config);
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        let h = *sched.live_od.iter().next().expect("od instance acquired");
        let token_before = sched.inst(h).retention_token;
        // A new job lands on the instance (reuse) before the retention
        // timer fires; the stale token must not release it.
        let key = fake_slot(&mut sched, h, 2, SimTime::ZERO);
        sched.inst_mut(h).jobs.push((JobId(99), key));
        sched.inst_mut(h).retention_token += 1;
        sched.on_retention(h, token_before, SimTime::from_secs(500));
        assert!(
            sched.instances.contains(h.key()),
            "stale token must not release the instance"
        );
    }

    #[test]
    fn released_instance_handles_turn_stale() {
        let scenario = scenario_of(vec![job(0, AppClass::HadoopSvm, 2, 100)]);
        let config = RunConfig::new(StrategyKind::OnDemandMixed);
        let (mut sched, _) = scheduler(&scenario, &config);
        let h = sched.acquire(InstanceType::standard(2), SimTime::ZERO);
        assert!(sched.live_od.contains(&h));
        sched.release_instance(h, SimTime::from_secs(1));
        assert!(!sched.instances.contains(h.key()), "handle is stale");
        assert!(!sched.live_od.contains(&h), "dropped from the live index");
        assert!(!sched.od_pool.contains(&h));
        // Double release and late retention are typed no-ops.
        sched.release_instance(h, SimTime::from_secs(2));
        sched.on_retention(h, 0, SimTime::from_secs(3));
        assert_eq!(sched.instances.live_len(), sched.reserved_handles.len());
    }

    #[test]
    fn idle_index_tracks_retained_instances() {
        let scenario = scenario_of(vec![job(0, AppClass::HadoopSvm, 2, 100)]);
        let config = RunConfig::new(StrategyKind::OnDemandMixed).without_profiling();
        let (mut sched, mut events) = scheduler(&scenario, &config);
        let h = sched.acquire(InstanceType::standard(2), SimTime::ZERO);
        assert!(sched.idle_buckets.is_empty());
        // Retained idle: the instance enters the idle index...
        sched.handle_idle_od(h, SimTime::from_secs(10), &mut events);
        assert_eq!(sched.idle_buckets.len(), 1);
        // ...and a reuse query finds it through the range probe.
        let found =
            sched.find_idle_dedicated(Family::Standard, 2, false, 0.0, SimTime::from_secs(3600));
        assert_eq!(found, Some(h));
        // Attaching a job removes it from the idle index.
        let key = fake_slot(&mut sched, h, 2, SimTime::from_secs(3600));
        sched.attach_job(h, JobId(0), key, 2, SimTime::from_secs(3600));
        assert!(sched.idle_buckets.is_empty());
    }

    /// The pre-index semantics of the idle-reuse search: a linear scan
    /// over the retained set in acquisition order, smallest fitting size
    /// first with first-seen tie-break.
    fn naive_idle_search(
        sched: &Scheduler<'_>,
        retained: &[InstanceHandle],
        family: Family,
        vcpus: u32,
        now: SimTime,
    ) -> Option<InstanceHandle> {
        retained
            .iter()
            .copied()
            .filter(|&h| {
                let inst = sched.inst(h);
                inst.itype.family() == family
                    && inst.itype.vcpus() >= vcpus
                    && inst.itype.vcpus() <= vcpus * 2
                    && inst.ready_at <= now
                    && !inst.spot
            })
            .min_by_key(|&h| (sched.inst(h).itype.vcpus(), h))
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Any interleaving of acquire / retain-idle / reuse / release
        /// leaves the secondary indices exactly equal to a from-scratch
        /// recomputation over the arena, and the indexed idle-reuse
        /// search returns the same instance as the naive linear scan it
        /// replaced.
        #[test]
        fn placement_indices_match_naive_reference(
            steps in proptest::collection::vec((0u8..6, proptest::prelude::any::<u16>()), 1..48),
            q_size in 0usize..4,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};

            const SIZES: [u32; 4] = [2, 4, 8, 16];
            let scenario = scenario_of(vec![job(0, AppClass::HadoopSvm, 2, 100)]);
            let config = RunConfig::new(StrategyKind::OnDemandMixed).without_profiling();
            let (mut sched, mut events) = scheduler(&scenario, &config);
            // Reference model mirroring the instance lifecycle: fresh
            // acquisitions are empty but unretained, `handle_idle_od`
            // moves them into the retained set, a reuse occupies them,
            // and a finish empties them back into retention. `retained`
            // stays in handle (= acquisition) order. Sim time advances
            // monotonically across steps.
            let mut unretained: Vec<InstanceHandle> = Vec::new();
            let mut occupied: Vec<(InstanceHandle, JobId)> = Vec::new();
            let mut retained: Vec<InstanceHandle> = Vec::new();
            let retain = |list: &mut Vec<InstanceHandle>, h: InstanceHandle| {
                let pos = list.partition_point(|&r| r < h);
                list.insert(pos, h);
            };
            let mut t = SimTime::ZERO;
            let mut next_job = 1000u64;
            for (op, x) in steps {
                t += SimDuration::from_secs(1);
                match op {
                    0 | 1 => {
                        let size = SIZES[x as usize % SIZES.len()];
                        unretained.push(sched.acquire(InstanceType::standard(size), t));
                    }
                    2 if !unretained.is_empty() => {
                        let h = unretained.remove(x as usize % unretained.len());
                        sched.handle_idle_od(h, t, &mut events);
                        retain(&mut retained, h);
                    }
                    3 if !retained.is_empty() => {
                        // Reuse: a job lands on a retained instance.
                        let h = retained.remove(x as usize % retained.len());
                        let jid = JobId(next_job);
                        next_job += 1;
                        let key = fake_slot(&mut sched, h, 1, t);
                        sched.attach_job(h, jid, key, 1, t);
                        occupied.push((h, jid));
                    }
                    4 if !occupied.is_empty() => {
                        // Finish: the instance empties and is retained again.
                        let (h, jid) = occupied.remove(x as usize % occupied.len());
                        prop_assert!(sched.detach_job(h, jid, 1, t).expect("single detach"));
                        sched.handle_idle_od(h, t, &mut events);
                        retain(&mut retained, h);
                    }
                    5 if !retained.is_empty() => {
                        let h = retained.remove(x as usize % retained.len());
                        sched.release_instance(h, t);
                    }
                    _ => {}
                }
            }
            // Query well past every spin-up so readiness never filters.
            let now = t + SimDuration::from_secs(3600);
            // The indexed range probe agrees with the naive scan.
            let want_size = SIZES[q_size];
            prop_assert_eq!(
                sched.find_idle_dedicated(Family::Standard, want_size, false, 0.0, now),
                naive_idle_search(&sched, &retained, Family::Standard, want_size, now)
            );
            // Each index equals a from-scratch recomputation over the arena.
            let live_naive: Vec<InstanceHandle> = sched
                .instances
                .iter()
                .filter(|(_, i)| !i.reserved)
                .map(|(k, _)| InstanceHandle::new(k))
                .collect();
            prop_assert_eq!(
                sched.live_od.iter().copied().collect::<Vec<_>>(),
                live_naive.clone()
            );
            let pool_naive: Vec<InstanceHandle> = live_naive
                .iter()
                .copied()
                .filter(|&h| sched.inst(h).itype.is_full_server())
                .collect();
            prop_assert_eq!(sched.od_pool.iter().copied().collect::<Vec<_>>(), pool_naive);
            for &(family, vcpus, h) in &sched.idle_buckets {
                let inst = sched.inst(h);
                prop_assert!(!inst.reserved && inst.jobs.is_empty(), "idle index invariant");
                prop_assert_eq!(inst.itype.family(), family);
                prop_assert_eq!(inst.itype.vcpus(), vcpus);
            }
            let mut idle_handles: Vec<InstanceHandle> =
                sched.idle_buckets.iter().map(|&(_, _, h)| h).collect();
            idle_handles.sort();
            prop_assert_eq!(idle_handles, retained, "idle index = retained set");
        }
    }

    /// Regression: `detach_job` used `saturating_sub`, so unbinding more
    /// cores than are bound (e.g. a double unbind) silently clamped to
    /// zero and corrupted the core ledger. It must be a typed accounting
    /// error instead.
    #[test]
    fn double_detach_is_a_typed_accounting_error() {
        let scenario = scenario_of(vec![job(0, AppClass::HadoopSvm, 2, 100)]);
        let config = RunConfig::new(StrategyKind::OnDemandMixed);
        let (mut sched, _) = scheduler(&scenario, &config);
        let h = sched.acquire(InstanceType::standard(4), SimTime::ZERO);
        let key = fake_slot(&mut sched, h, 2, SimTime::ZERO);
        sched.attach_job(h, JobId(0), key, 2, SimTime::ZERO);
        assert!(sched
            .detach_job(h, JobId(0), 2, SimTime::from_secs(1))
            .expect("first unbind is legal"));
        let err = sched
            .detach_job(h, JobId(0), 2, SimTime::from_secs(2))
            .expect_err("second unbind of the same cores must be caught");
        assert_eq!(err.at, SimTime::from_secs(2));
        assert!(
            matches!(
                err.kind,
                AuditViolationKind::CoreUnderflow {
                    bound: 0,
                    unbind: 2,
                    ..
                }
            ),
            "unexpected violation: {err}"
        );
        // The instance state is untouched by the rejected unbind.
        assert_eq!(sched.inst(h).used_cores, 0);
    }

    /// Regression: the starvation-relief path re-placed a queued job with
    /// a zero queue delay, dropping the waiting interval it had just
    /// served. A job that queues, is relieved to on-demand, is preempted
    /// there, queues again (twice over) must end up with a queue delay
    /// equal to the sum of its distinct waiting intervals — no dropped
    /// and no double-counted interval.
    #[test]
    fn queue_delay_accumulates_across_preemptions() {
        let jobs = vec![
            job(0, AppClass::HadoopSvm, 16, 10_000),
            job(1, AppClass::HadoopSvm, 2, 10_000),
        ];
        let scenario = scenario_of(jobs);
        let mut config = RunConfig::new(StrategyKind::HybridFull);
        config.reserved_cores_override = Some(16);
        // Always prefer reserved, so job 1 queues whenever job 0 holds
        // the whole reserved pool.
        config.policy = crate::mapping::MappingPolicy::UtilizationLimit(2.0);
        let (mut sched, mut events) = scheduler(&scenario, &config);

        // Job 0 fills the reserved pool; job 1 queues behind it.
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        sched.on_start(JobId(0), SimTime::ZERO, &mut events);
        sched
            .on_arrival(JobId(1), SimTime::ZERO, &mut events)
            .unwrap();
        assert_eq!(sched.queue.len(), 1, "job 1 must queue behind job 0");

        // Wait 1: starved for 3600s, then relieved to the od pool.
        let t1 = SimTime::from_secs(3600);
        sched.on_tick(t1, &mut events).unwrap();
        assert!(sched.queue.is_empty(), "job 1 must be relieved");
        assert!(sched.running_by_id.contains_key(&JobId(1)));

        // Preemption 1 kills the od instance; job 1 queues again.
        let h1 = *sched.od_pool.iter().next().expect("od pool instance");
        let t2 = SimTime::from_secs(4000);
        sched.on_spot_termination(h1, t2, &mut events).unwrap();
        assert_eq!(sched.queue.len(), 1, "job 1 requeued after preemption");

        // Wait 2: starved for 7200s, relieved again.
        let t3 = SimTime::from_secs(4000 + 7200);
        sched.on_tick(t3, &mut events).unwrap();
        assert!(sched.queue.is_empty());

        // Preemption 2.
        let h2 = *sched.od_pool.iter().next().expect("od pool instance");
        let t4 = SimTime::from_secs(12_000);
        sched.on_spot_termination(h2, t4, &mut events).unwrap();
        assert_eq!(sched.queue.len(), 1);

        // Wait 3: job 0 finishes; the queue drains onto reserved.
        let t5 = SimTime::from_secs(20_000);
        let version = sched.running_job(JobId(0)).unwrap().finish_version;
        sched.on_finish(JobId(0), version, t5, &mut events).unwrap();
        let job1 = sched.running_job(JobId(1)).unwrap();
        assert_eq!(
            job1.queue_delay,
            SimDuration::from_secs(3600 + 7200 + 8000),
            "total queueing time must equal the sum of the three distinct waits"
        );
    }

    /// Two-job tenancy scenario: a pool sized for one job at a time, so
    /// the second arrival defers behind the gate and drains when the
    /// first finishes, with the gate wait credited as queue delay.
    fn tenanted_pair() -> Scenario {
        let jobs = vec![
            job(0, AppClass::SparkBatch, 4, 100),
            job(1, AppClass::SparkBatch, 4, 100),
        ];
        // Without profiling the scheduler sizes jobs by user reservation,
        // which is deterministic per job id; size the pool so either job
        // fits alone but never both.
        let c0 = jobs[0].user_sized_cores().clamp(1, 16);
        let c1 = jobs[1].user_sized_cores().clamp(1, 16);
        let pool = c0.max(c1);
        let mut plan = TenancyPlan::new(pool)
            .with_quantum(16.0)
            .with_starvation_secs(1e9)
            .tenant(TenantSpec::new(0, 1.0, pool, pool));
        plan.assign(0, 0);
        plan.assign(1, 0);
        scenario_of(jobs).with_tenancy(plan)
    }

    #[test]
    fn tenancy_gate_defers_and_finish_drains() {
        let scenario = tenanted_pair();
        let mut config = RunConfig::new(StrategyKind::StaticReserved).without_profiling();
        config.reserved_cores_override = Some(32);
        let (mut sched, mut events) = scheduler(&scenario, &config);
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        sched
            .on_arrival(JobId(1), SimTime::ZERO, &mut events)
            .unwrap();
        assert!(sched.running_by_id.contains_key(&JobId(0)));
        assert!(
            !sched.running_by_id.contains_key(&JobId(1)),
            "job 1 must be held at the tenancy gate"
        );
        assert_eq!(sched.counters.tenant_deferred_jobs, 1);
        assert_eq!(sched.pending_jobs(), 2, "deferred jobs count as pending");

        // Finishing job 0 frees the share; the drain admits job 1 and
        // credits its 100s behind the gate as queue delay.
        sched.on_start(JobId(0), SimTime::ZERO, &mut events);
        let v = sched.running_job(JobId(0)).unwrap().finish_version;
        sched
            .on_finish(JobId(0), v, SimTime::from_secs(100), &mut events)
            .unwrap();
        assert!(sched.running_by_id.contains_key(&JobId(1)));
        assert_eq!(sched.counters.tenant_drained_jobs, 1);
        assert_eq!(
            sched.running_job(JobId(1)).unwrap().queue_delay,
            SimDuration::from_secs(100)
        );
    }

    #[test]
    fn tenancy_starved_guarantee_reclaims_via_preemption() {
        let jobs = vec![
            job(0, AppClass::SparkBatch, 4, 100_000),
            job(1, AppClass::SparkBatch, 4, 100_000),
        ];
        let c0 = jobs[0].user_sized_cores().clamp(1, 16);
        let c1 = jobs[1].user_sized_cores().clamp(1, 16);
        let pool = c0.max(c1);
        // Tenant 0 is guaranteed the whole pool; tenant 1 (guarantee 0)
        // can only borrow.
        let mut plan = TenancyPlan::new(pool)
            .with_quantum(16.0)
            .with_starvation_secs(30.0)
            .tenant(TenantSpec::new(0, 4.0, pool, pool))
            .tenant(TenantSpec::new(1, 1.0, 0, pool));
        plan.assign(0, 1);
        plan.assign(1, 0);
        let scenario = scenario_of(jobs).with_tenancy(plan);
        let mut config = RunConfig::new(StrategyKind::StaticReserved).without_profiling();
        config.reserved_cores_override = Some(32);
        let (mut sched, mut events) = scheduler(&scenario, &config);

        // The borrower takes the idle pool; the guaranteed tenant's job
        // then defers and the tenant goes needy.
        sched
            .on_arrival(JobId(0), SimTime::ZERO, &mut events)
            .unwrap();
        sched.on_start(JobId(0), SimTime::ZERO, &mut events);
        sched
            .on_arrival(JobId(1), SimTime::ZERO, &mut events)
            .unwrap();
        assert_eq!(sched.counters.tenant_borrowed_admissions, 1);
        assert!(!sched.running_by_id.contains_key(&JobId(1)));

        // Tick past the starvation window: the borrower is evicted, the
        // guaranteed job reclaims the pool, and the victim re-defers
        // behind the borrow gate.
        sched.on_tick(SimTime::from_secs(60), &mut events).unwrap();
        assert_eq!(sched.counters.tenant_preemptions, 1);
        assert!(sched.running_by_id.contains_key(&JobId(1)));
        assert!(
            !sched.running_by_id.contains_key(&JobId(0)),
            "victim must wait behind the gate, not re-grab the pool"
        );
        assert_eq!(sched.counters.tenant_drained_jobs, 1);
        assert_eq!(sched.counters.tenant_deferred_jobs, 2);

        let result = sched.into_result(SimTime::from_secs(60));
        assert_eq!(result.tenant_stats.len(), 2);
        assert_eq!(result.tenant_stats[0].id, 0);
        assert_eq!(result.tenant_stats[0].reclaims, 1);
        assert_eq!(result.tenant_stats[1].victims, 1);
    }

    #[test]
    fn audited_since_measures_forward_spans_exactly() {
        let auditor = Auditor::new(hcloud_audit::AuditMode::Final);
        let span = audited_since(
            &auditor,
            SimTime::from_secs(20),
            SimTime::from_secs(15),
            3,
            "forward",
        );
        assert_eq!(span, SimDuration::from_secs(5));
        assert!(auditor.violations().is_empty());
        // Zero-width spans are forward, not inverted.
        let zero = audited_since(
            &auditor,
            SimTime::from_secs(20),
            SimTime::from_secs(20),
            3,
            "forward",
        );
        assert_eq!(zero, SimDuration::ZERO);
        assert!(auditor.violations().is_empty());
    }

    #[test]
    fn audited_since_reports_time_inversion_and_clamps() {
        let auditor = Auditor::new(hcloud_audit::AuditMode::Final);
        let span = audited_since(
            &auditor,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            7,
            "test inversion",
        );
        assert_eq!(span, SimDuration::ZERO, "inverted spans clamp to zero");
        let violations = auditor.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].at, SimTime::from_secs(10));
        match violations[0].kind {
            AuditViolationKind::TimeInversion {
                job,
                context,
                at_us,
                earlier_us,
            } => {
                assert_eq!(job, 7);
                assert_eq!(context, "test inversion");
                assert_eq!(at_us, 10_000_000);
                assert_eq!(earlier_us, 20_000_000);
            }
            ref other => panic!("expected TimeInversion, got {other:?}"),
        }
    }

    #[test]
    fn audited_since_is_silent_when_auditing_is_off() {
        // The disabled auditor still clamps — identical arithmetic to the
        // old `saturating_since` path — but records nothing.
        let auditor = Auditor::new(hcloud_audit::AuditMode::Off);
        let span = audited_since(
            &auditor,
            SimTime::ZERO,
            SimTime::from_secs(1),
            1,
            "off-mode inversion",
        );
        assert_eq!(span, SimDuration::ZERO);
        assert!(auditor.violations().is_empty());
    }
}
