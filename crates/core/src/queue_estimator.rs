//! Queueing-time estimation from reserved-capacity release rates.
//!
//! Section 4.2: "Queueing time is estimated using a simple feedback loop
//! based on the rate at which instances of a given type are being released
//! over time. For example, if out of 100 jobs waiting for an instance with
//! 4 vCPUs ..., 99 were scheduled in less than 1.4 seconds, the system
//! will estimate that there is a 0.99 probability that the queueing time
//! ... will be 1.4 seconds."
//!
//! [`QueueEstimator`] watches events that free capacity on the reserved
//! pool and keeps, per requested size, a rolling window of inter-release
//! intervals. The estimated wait for a newly queued job is the
//! high-quantile interval scaled by how many queued jobs are ahead of it.

use std::collections::HashMap;

use hcloud_sim::stats::RollingQuantiles;
use hcloud_sim::{SimDuration, SimTime};

/// Rolling release-interval statistics per requested core size.
///
/// Interval and wait windows are [`RollingQuantiles`], so the
/// high-quantile reads in [`QueueEstimator::estimate_wait`] are O(log n)
/// order-statistics lookups instead of a clone + sort per query.
#[derive(Debug, Clone)]
pub struct QueueEstimator {
    window: usize,
    last_release: HashMap<u32, SimTime>,
    intervals: HashMap<u32, RollingQuantiles>,
    waits: HashMap<u32, RollingQuantiles>,
}

impl Default for QueueEstimator {
    fn default() -> Self {
        QueueEstimator::new(128)
    }
}

impl QueueEstimator {
    /// Creates an estimator keeping up to `window` intervals per size.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "estimator window must be positive");
        QueueEstimator {
            window,
            last_release: HashMap::new(),
            intervals: HashMap::new(),
            waits: HashMap::new(),
        }
    }

    /// Records a *measured* queueing time for a job that needed `size`
    /// cores. Measured waits dominate the estimate once enough are known
    /// — this is exactly the paper's formulation ("out of 100 jobs
    /// waiting for an instance with 4 vCPUs, 99 were scheduled in less
    /// than 1.4 seconds").
    pub fn record_wait(&mut self, size: u32, wait: SimDuration) {
        let window = self.window;
        self.waits
            .entry(size)
            .or_insert_with(|| RollingQuantiles::new(window))
            .push(wait.as_secs_f64());
    }

    /// Records that `freed_cores` became available on the reserved pool at
    /// `now`. The event counts as a release for every size it could
    /// satisfy (a 8-core release also unblocks 4-, 2- and 1-core waiters).
    pub fn record_release(&mut self, freed_cores: u32, now: SimTime) {
        for &size in &[1u32, 2, 4, 8, 16] {
            if size > freed_cores {
                break;
            }
            if let Some(&last) = self.last_release.get(&size) {
                let dt = now.saturating_since(last).as_secs_f64();
                let window = self.window;
                self.intervals
                    .entry(size)
                    .or_insert_with(|| RollingQuantiles::new(window))
                    .push(dt);
            }
            self.last_release.insert(size, now);
        }
    }

    /// Number of recorded intervals for `size`.
    pub fn interval_count(&self, size: u32) -> usize {
        self.intervals.get(&size).map_or(0, RollingQuantiles::len)
    }

    /// The `q`-quantile of the release-interval distribution for jobs
    /// needing `size` cores; `None` until at least 5 intervals are known.
    pub fn release_interval_quantile(&self, size: u32, q: f64) -> Option<SimDuration> {
        let buf = self.intervals.get(&size)?;
        if buf.len() < 5 {
            return None;
        }
        let v = buf.percentile(q * 100.0)?;
        Some(SimDuration::from_secs_f64(v))
    }

    /// The estimated queueing time for a job needing `size` cores with
    /// `ahead` queued jobs in front of it at sim time `now`; `None` while
    /// the estimator is cold (the caller should then fall back to a
    /// pessimistic default).
    ///
    /// With ≥10 measured waits for this size, the estimate is their 99th
    /// percentile (the paper's feedback formulation). Before that it
    /// falls back to the release-interval tail scaled by queue position —
    /// computed in `f64` and clamped to [`MAX_ESTIMATE_SECS`], because a
    /// very deep queue times a long tail interval overflows the
    /// duration's microsecond range into a non-finite value — minus the
    /// part of the current release cycle that has already elapsed (a job
    /// queueing mid-cycle does not restart the cycle; the credit is
    /// capped at one interval so the estimate never goes negative).
    pub fn estimate_wait(&self, size: u32, ahead: usize, now: SimTime) -> Option<SimDuration> {
        if let Some(buf) = self.waits.get(&size) {
            if buf.len() >= 10 {
                let q99 = buf.percentile(99.0)?;
                return Some(SimDuration::from_secs_f64(q99));
            }
        }
        let q99 = self.release_interval_quantile(size, 0.99)?.as_secs_f64();
        let mut scaled = q99 * (ahead as f64 + 1.0);
        if !scaled.is_finite() || scaled > MAX_ESTIMATE_SECS {
            scaled = MAX_ESTIMATE_SECS;
        }
        if let Some(&last) = self.last_release.get(&size) {
            let elapsed = now.saturating_since(last).as_secs_f64().min(q99);
            scaled = (scaled - elapsed).max(0.0);
        }
        Some(SimDuration::from_secs_f64(scaled))
    }
}

/// Upper bound on a scaled queueing-time estimate, in seconds (~116
/// days): far beyond any plausible wait, but comfortably inside the
/// duration type's finite range even after scaling.
pub const MAX_ESTIMATE_SECS: f64 = 1e7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_estimator_abstains() {
        let e = QueueEstimator::default();
        assert_eq!(e.estimate_wait(4, 0, SimTime::ZERO), None);
    }

    #[test]
    fn regular_releases_give_tight_estimates() {
        let mut e = QueueEstimator::default();
        for k in 0..50u64 {
            e.record_release(4, SimTime::from_secs(k * 2));
        }
        // Query at the moment of the last release: no elapsed-cycle credit.
        let est = e
            .estimate_wait(4, 0, SimTime::from_secs(98))
            .expect("50 releases recorded");
        assert!((1.9..2.5).contains(&est.as_secs_f64()), "estimate {est}");
    }

    #[test]
    fn waiting_behind_others_scales_estimate() {
        let mut e = QueueEstimator::default();
        for k in 0..50u64 {
            e.record_release(4, SimTime::from_secs(k));
        }
        let now = SimTime::from_secs(49);
        let alone = e.estimate_wait(4, 0, now).expect("50 releases recorded");
        let behind = e.estimate_wait(4, 3, now).expect("50 releases recorded");
        assert_eq!(behind.as_micros(), alone.as_micros() * 4);
    }

    #[test]
    fn large_releases_unblock_small_sizes() {
        let mut e = QueueEstimator::default();
        for k in 0..20u64 {
            e.record_release(16, SimTime::from_secs(k * 3));
        }
        let now = SimTime::from_secs(57);
        assert!(e.estimate_wait(1, 0, now).is_some());
        assert!(e.estimate_wait(16, 0, now).is_some());
    }

    #[test]
    fn small_releases_do_not_unblock_large_sizes() {
        let mut e = QueueEstimator::default();
        for k in 0..20u64 {
            e.record_release(2, SimTime::from_secs(k));
        }
        let now = SimTime::from_secs(19);
        assert!(e.estimate_wait(2, 0, now).is_some());
        assert_eq!(e.estimate_wait(8, 0, now), None);
    }

    /// Regression: the cold-path estimate ignored in-flight releases — a
    /// job queueing mid-cycle was quoted a full interval even when the
    /// next release was imminent.
    #[test]
    fn elapsed_release_cycle_is_credited() {
        let mut e = QueueEstimator::default();
        for k in 0..50u64 {
            e.record_release(4, SimTime::from_secs(k * 2));
        }
        let fresh = e
            .estimate_wait(4, 0, SimTime::from_secs(98))
            .expect("warm estimator");
        let mid_cycle = e
            .estimate_wait(4, 0, SimTime::from_secs(99))
            .expect("warm estimator");
        assert!(
            mid_cycle.as_secs_f64() <= fresh.as_secs_f64() - 0.9,
            "one elapsed second must be credited: {mid_cycle} vs {fresh}"
        );
        // The credit is capped at one interval: a long-idle estimator
        // floors at zero instead of going negative.
        let idle = e
            .estimate_wait(4, 0, SimTime::from_secs(10_000))
            .expect("warm estimator");
        assert_eq!(idle, SimDuration::ZERO);
    }

    /// Regression: `q99.mul_f64((ahead + 1) as f64)` on a 10⁵-deep queue
    /// with a long-tailed release distribution overflowed the duration
    /// range into a non-finite estimate.
    #[test]
    fn very_deep_queue_estimate_stays_finite() {
        let mut e = QueueEstimator::default();
        for k in 0..20u64 {
            e.record_release(4, SimTime::from_secs(k * 1_000_000));
        }
        let est = e
            .estimate_wait(4, 100_000, SimTime::from_secs(19_000_000))
            .expect("warm estimator");
        assert!(est.as_secs_f64().is_finite());
        assert!(
            est.as_secs_f64() <= MAX_ESTIMATE_SECS,
            "estimate {est} must be clamped"
        );
        // An empty queue on the same distribution stays well-behaved too.
        let empty = e
            .estimate_wait(4, 0, SimTime::from_secs(19_000_000))
            .expect("warm estimator");
        assert!(empty.as_secs_f64().is_finite());
        assert!(empty <= est);
    }

    #[test]
    fn quantiles_reflect_tail() {
        let mut e = QueueEstimator::default();
        let mut t = SimTime::ZERO;
        // Mostly 1-second releases with occasional 10-second gaps.
        for k in 0..100u64 {
            let gap = if k % 10 == 9 { 10 } else { 1 };
            t += SimDuration::from_secs(gap);
            e.record_release(4, t);
        }
        let q50 = e
            .release_interval_quantile(4, 0.5)
            .expect("100 releases recorded");
        let q99 = e
            .release_interval_quantile(4, 0.99)
            .expect("100 releases recorded");
        assert!(q50.as_secs_f64() <= 1.5);
        assert!(q99.as_secs_f64() >= 9.0);
    }

    #[test]
    fn window_bounds_memory() {
        let mut e = QueueEstimator::new(10);
        for k in 0..100u64 {
            e.record_release(1, SimTime::from_secs(k));
        }
        assert_eq!(e.interval_count(1), 10);
    }
}
