//! The typed placement-search API of the scheduler.
//!
//! Section 3.3's greedy search used to exist as three ad-hoc linear scans
//! inside the scheduler (reserved pool, on-demand pool, idle dedicated
//! reuse). This module gives them one front door: callers build a
//! [`PlacementQuery`] naming the family, the core demand and a
//! [`SearchPolicy`], and [`crate::scheduler::Scheduler::find_placement`]
//! answers from maintained secondary indices instead of scanning every
//! instance ever acquired. New policies route through the same query type,
//! so they cannot quietly reintroduce an O(n) scan on the admission path.
//!
//! Instances are addressed by [`InstanceHandle`] — a generational slot
//! handle, not a raw `usize`. A handle to a released instance fails typed
//! ([`hcloud_sim::slot::StaleSlot`]) instead of silently reading whatever
//! instance now sits at that position.

use hcloud_cloud::Family;
use hcloud_interference::ResourceVector;
use hcloud_sim::slot::SlotKey;

/// Typed handle to a scheduler-tracked instance.
///
/// Wraps a generational [`SlotKey`]: the index is stable for the lifetime
/// of a run (slots are never reused, so `index()` is safe to expose in
/// telemetry), and the generation makes handles to released instances
/// stale. Ordering follows the acquisition order, which keeps every
/// index-ordered iteration deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceHandle(SlotKey);

impl InstanceHandle {
    /// Range endpoint below every real handle (never issued).
    pub(crate) const MIN: InstanceHandle = InstanceHandle(SlotKey::MIN);
    /// Range endpoint above every real handle (never issued).
    pub(crate) const MAX: InstanceHandle = InstanceHandle(SlotKey::MAX);

    pub(crate) fn new(key: SlotKey) -> Self {
        InstanceHandle(key)
    }

    pub(crate) fn key(self) -> SlotKey {
        self.0
    }

    /// The stable per-run instance index (acquisition order); this is the
    /// value telemetry reports as `instance_index`.
    pub fn index(self) -> usize {
        self.0.index()
    }
}

/// How a [`PlacementQuery`] searches (Section 3.3).
#[derive(Debug, Clone, Copy)]
pub enum SearchPolicy {
    /// The reserved full-server pool: with profiling, QoS-aware
    /// consolidating search (most-loaded acceptable instance, least-bad
    /// fallback); without, least-loaded.
    ReservedPool {
        /// The job's interference sensitivity (drives predicted slowdown).
        sensitivity: ResourceVector,
        /// The job's quality target; sensitive jobs accept less headroom.
        quality: f64,
    },
    /// The on-demand full-server pool: same search as the reserved pool
    /// plus ~2 cores of packing headroom per instance. Fallbacks are not
    /// acceptable here — the caller acquires fresh capacity instead of
    /// degrading the job.
    OnDemandPool {
        /// The job's interference sensitivity.
        sensitivity: ResourceVector,
        /// The job's quality target.
        quality: f64,
    },
    /// Idle retained dedicated instances of the query family, sized
    /// within `[min_cores, 2 × min_cores]`, smallest first.
    IdleDedicated {
        /// Whether the job may land on a spot instance.
        spot_ok: bool,
        /// Minimum delivered quality (checked only with profiling on).
        min_quality: f64,
    },
}

/// One placement search: which family, how many cores, which policy.
#[derive(Debug, Clone, Copy)]
pub struct PlacementQuery {
    /// Instance family to search (pools are always the standard
    /// full-server family).
    pub family: Family,
    /// Cores the job needs on the chosen instance.
    pub min_cores: u32,
    /// The search policy.
    pub policy: SearchPolicy,
}

/// A successful placement search.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// The chosen instance.
    pub instance: InstanceHandle,
    /// True when no instance satisfied the job's QoS headroom and this is
    /// the least-bad alternative. Reserved-pool callers accept fallbacks
    /// (queueing is worse); on-demand callers acquire fresh capacity
    /// instead.
    pub fallback: bool,
}
