//! Provisioning strategies: the pluggable decision surface.
//!
//! The paper's five strategies (Tables 1 and 3) are implementations of
//! the [`ProvisioningStrategy`] trait, registered under stable string
//! ids in a [`StrategyRegistry`]. Everything the scheduler used to
//! decide by matching on a closed enum — reserved sizing, on-demand
//! acquisition and shape, idle-instance retention, soft-limit
//! adaptation — is a trait hook, so strategies beyond the paper's five
//! plug in without touching the scheduler. [`StrategyKind`] survives as
//! a thin compatibility shim over the registry for one release.
//!
//! | | SR | OdF | OdM | HF | HM | RA | QC |
//! |---|---|---|---|---|---|---|---|
//! | Reserved resources | yes | no | no | yes | yes | yes | yes |
//! | On-demand resources | no | full | any | full | any | any | any |
//!
//! The two post-paper strategies are theory-grounded extensions:
//!
//! * **`reservation-autoscale` (RA)** — blocking-threshold reservation
//!   scaling after Psychas & Ghaderi (arXiv 2005.13744): the reserved
//!   queue is the blocking signal; sustained blocking trips a
//!   multiplicative cut of the soft utilization limit (carving headroom
//!   by diverting work to on-demand), and a block-free dwell window
//!   relaxes it back additively — hysteresis instead of the paper's
//!   linear transfer functions.
//! * **`queueing-capacity` (QC)** — Furman-style M\[x\]/G/s capacity
//!   planning (arXiv 2209.08820): the observed batch sizes (estimated
//!   cores per arrival) feed an EWMA, and square-root safety staffing
//!   sets the reserved-pool occupancy target ρ\* = 1 − β·√b̄/√s; jobs
//!   map to reserved below ρ\* and overflow to on-demand above it.

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use hcloud_sim::rng::SimRng;
use hcloud_sim::{SimDuration, SimTime};

use crate::dynamic::DynamicLimits;
use crate::mapping::{MappingContext, MappingPolicy, Placement};

/// The paper's five strategies, kept as a compatibility shim: each
/// variant maps onto the builtin registry entry with the same id, and
/// converts into a [`StrategyRef`] wherever one is expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Statically reserved: provision reserved full servers for peak load
    /// (plus overprovisioning) upfront; never acquire on-demand.
    StaticReserved,
    /// Fully on-demand, full servers only (OdF).
    OnDemandFull,
    /// Fully on-demand, mixed instance sizes (OdM).
    OnDemandMixed,
    /// Hybrid: reserved for the steady-state minimum, on-demand full
    /// servers for overflow (HF).
    HybridFull,
    /// Hybrid: reserved for the steady-state minimum, mixed-size
    /// on-demand for overflow (HM).
    HybridMixed,
}

impl StrategyKind {
    /// All five strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::StaticReserved,
        StrategyKind::OnDemandFull,
        StrategyKind::OnDemandMixed,
        StrategyKind::HybridFull,
        StrategyKind::HybridMixed,
    ];

    /// The stable registry id.
    pub fn id(self) -> &'static str {
        match self {
            StrategyKind::StaticReserved => "static-reserved",
            StrategyKind::OnDemandFull => "on-demand-full",
            StrategyKind::OnDemandMixed => "on-demand-mixed",
            StrategyKind::HybridFull => "hybrid-full",
            StrategyKind::HybridMixed => "hybrid-mixed",
        }
    }

    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            StrategyKind::StaticReserved => "SR",
            StrategyKind::OnDemandFull => "OdF",
            StrategyKind::OnDemandMixed => "OdM",
            StrategyKind::HybridFull => "HF",
            StrategyKind::HybridMixed => "HM",
        }
    }

    /// Whether the strategy provisions reserved resources (Table 3 row 1).
    pub fn uses_reserved(self) -> bool {
        matches!(
            self,
            StrategyKind::StaticReserved | StrategyKind::HybridFull | StrategyKind::HybridMixed
        )
    }

    /// Whether the strategy acquires on-demand resources (Table 3 row 2).
    pub fn uses_on_demand(self) -> bool {
        !matches!(self, StrategyKind::StaticReserved)
    }

    /// Whether on-demand acquisitions are restricted to full servers.
    pub fn on_demand_full_only(self) -> bool {
        matches!(self, StrategyKind::OnDemandFull | StrategyKind::HybridFull)
    }

    /// Whether this is one of the two hybrid strategies.
    pub fn is_hybrid(self) -> bool {
        matches!(self, StrategyKind::HybridFull | StrategyKind::HybridMixed)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

// ----------------------------------------------------------------------
// Decision contexts
// ----------------------------------------------------------------------

/// Inputs to [`ProvisioningStrategy::reserved_cores`]: the extremes of
/// the scenario's analytic demand curve (the paper assumes knowledge of
/// min/max aggregate load; Section 1) and the sizing knobs of the run
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReservedSizingCtx {
    /// Peak of the demand curve, in cores.
    pub peak_cores: f64,
    /// Steady-state minimum of the demand curve, in cores.
    pub min_cores: f64,
    /// Whether Quasar profiling/classification information is available.
    pub profiling: bool,
    /// SR overprovisioning above peak with profiling info (Section 3.1).
    pub overprovision: f64,
    /// SR overprovisioning without profiling info (Section 3.3).
    pub overprovision_unprofiled: f64,
}

/// Inputs to [`ProvisioningStrategy::place`]: the mapping-policy context
/// plus the strategy-level facts the old enum branches consulted.
#[derive(Debug)]
pub struct PlacementCtx<'a> {
    /// Everything a mapping decision may consult.
    pub mapping: MappingContext<'a>,
    /// The effective mapping policy — already degraded from `Dynamic` to
    /// the static soft-limit rule while the QoS monitor signal is
    /// dropped out (fault injection).
    pub policy: MappingPolicy,
    /// Reserved cores provisioned for this run.
    pub reserved_cores: u32,
}

/// Inputs to [`ProvisioningStrategy::retention`] for a newly idle
/// on-demand instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionCtx {
    /// The instance's spin-up overhead.
    pub spin_up: SimDuration,
    /// The quality the instance delivered over its busy period.
    pub delivered_quality: f64,
    /// Whether profiling information (and thus a quality signal) exists.
    pub profiling: bool,
    /// Idle instances are retained for this multiple of their spin-up
    /// overhead (Section 3.2).
    pub retention_mult: f64,
    /// Instances observed below this quality are released immediately.
    pub quality_retention_threshold: f64,
}

/// What to do with a newly idle on-demand instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionDecision {
    /// Release it immediately (poor delivered quality; Section 3.2).
    ReleaseNow,
    /// Keep it idle for this long, then release if still unused.
    Retain(SimDuration),
}

// ----------------------------------------------------------------------
// The trait
// ----------------------------------------------------------------------

/// A provisioning strategy: every decision hook the scheduler consults.
///
/// One boxed instance is created per run via [`fresh_run`]
/// (strategies may carry run-local adaptive state); the flag methods
/// (`uses_reserved` & co.) must be pure and stable for the strategy's
/// lifetime. Implementations must not consume randomness beyond the
/// `rng` handed to [`place`] — determinism across worker counts depends
/// on it.
///
/// [`fresh_run`]: ProvisioningStrategy::fresh_run
/// [`place`]: ProvisioningStrategy::place
pub trait ProvisioningStrategy: fmt::Debug + Send + Sync {
    /// Stable registry id (kebab-case, e.g. `"hybrid-mixed"`).
    fn id(&self) -> &'static str;

    /// Short display name (e.g. `"HM"`), used in figure labels.
    fn short_name(&self) -> &'static str;

    /// Whether the strategy provisions reserved resources (Table 3 row 1).
    fn uses_reserved(&self) -> bool;

    /// Whether the strategy acquires on-demand resources (Table 3 row 2).
    fn uses_on_demand(&self) -> bool;

    /// Whether on-demand acquisitions are restricted to full servers.
    fn on_demand_full_only(&self) -> bool;

    /// Whether the strategy actively manages a reserved/on-demand mix
    /// (pool consolidation, starvation relief, spot, data-aware
    /// placement — the hybrid machinery of Sections 3.2–3.3).
    fn is_hybrid(&self) -> bool;

    /// Whether profiling runs in a noisy environment (OdM's small shared
    /// instances; Section 3.3).
    fn profiles_noisily(&self) -> bool {
        false
    }

    /// Reserved cores to provision. Default: the steady-state minimum
    /// for reserved-using strategies (Section 4.1), zero otherwise.
    fn reserved_cores(&self, ctx: &ReservedSizingCtx) -> u32 {
        if self.uses_reserved() {
            ctx.min_cores.ceil() as u32
        } else {
            0
        }
    }

    /// Where to send an arriving job. `rng` is the shared mapping
    /// stream; draw from it only when the decision is genuinely random
    /// (today only [`MappingPolicy::Random`] does).
    fn place(&mut self, ctx: &PlacementCtx<'_>, rng: &mut SimRng) -> Placement;

    /// Per-tick feedback on the reserved queue. Default: the paper's
    /// linear transfer functions on the soft limit (Figure 9 left).
    fn adapt_limits(&mut self, limits: &mut DynamicLimits, queue_len: usize, now: SimTime) {
        limits.observe_queue(queue_len, now);
    }

    /// What to do with a newly idle on-demand instance. Default: the
    /// paper's quality-gated retention (Section 3.2) — release
    /// immediately below the quality threshold, otherwise retain for
    /// `retention_mult ×` spin-up (at least one second).
    fn retention(&self, ctx: &RetentionCtx) -> RetentionDecision {
        if ctx.profiling && ctx.delivered_quality < ctx.quality_retention_threshold {
            RetentionDecision::ReleaseNow
        } else {
            RetentionDecision::Retain(
                ctx.spin_up
                    .mul_f64(ctx.retention_mult)
                    .max(SimDuration::from_secs(1)),
            )
        }
    }

    /// A pristine instance for one scenario run. Run-local adaptive
    /// state starts from the same initial value on every call, so runs
    /// are independent and byte-reproducible across worker counts.
    fn fresh_run(&self) -> Box<dyn ProvisioningStrategy>;
}

// ----------------------------------------------------------------------
// StrategyRef: the shared, cloneable handle configs carry
// ----------------------------------------------------------------------

/// A shared handle onto a [`ProvisioningStrategy`].
///
/// This is what [`crate::RunConfig`] carries: cheap to clone, `Send +
/// Sync` for the parallel experiment engine, compared/hashs by registry
/// id, displayed by short name (so run labels keep reading `HM`, not
/// `hybrid-mixed`). The scheduler never mutates through it — it calls
/// [`StrategyRef::fresh_run`] and owns the per-run box.
#[derive(Clone)]
pub struct StrategyRef(Arc<dyn ProvisioningStrategy>);

impl StrategyRef {
    /// Wraps a strategy implementation.
    pub fn new(strategy: impl ProvisioningStrategy + 'static) -> StrategyRef {
        StrategyRef(Arc::new(strategy))
    }

    /// Stable registry id.
    pub fn id(&self) -> &'static str {
        self.0.id()
    }

    /// Short display name.
    pub fn short_name(&self) -> &'static str {
        self.0.short_name()
    }

    /// See [`ProvisioningStrategy::uses_reserved`].
    pub fn uses_reserved(&self) -> bool {
        self.0.uses_reserved()
    }

    /// See [`ProvisioningStrategy::uses_on_demand`].
    pub fn uses_on_demand(&self) -> bool {
        self.0.uses_on_demand()
    }

    /// See [`ProvisioningStrategy::on_demand_full_only`].
    pub fn on_demand_full_only(&self) -> bool {
        self.0.on_demand_full_only()
    }

    /// See [`ProvisioningStrategy::is_hybrid`].
    pub fn is_hybrid(&self) -> bool {
        self.0.is_hybrid()
    }

    /// See [`ProvisioningStrategy::profiles_noisily`].
    pub fn profiles_noisily(&self) -> bool {
        self.0.profiles_noisily()
    }

    /// See [`ProvisioningStrategy::reserved_cores`].
    pub fn reserved_cores(&self, ctx: &ReservedSizingCtx) -> u32 {
        self.0.reserved_cores(ctx)
    }

    /// See [`ProvisioningStrategy::fresh_run`].
    pub fn fresh_run(&self) -> Box<dyn ProvisioningStrategy> {
        self.0.fresh_run()
    }

    /// The [`StrategyKind`] this strategy shims for, when it is one of
    /// the paper's five.
    pub fn kind(&self) -> Option<StrategyKind> {
        StrategyKind::ALL
            .iter()
            .copied()
            .find(|k| k.id() == self.id())
    }
}

impl fmt::Debug for StrategyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl fmt::Display for StrategyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl PartialEq for StrategyRef {
    fn eq(&self, other: &StrategyRef) -> bool {
        self.id() == other.id()
    }
}

impl Eq for StrategyRef {}

impl std::hash::Hash for StrategyRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id().hash(state);
    }
}

impl PartialEq<StrategyKind> for StrategyRef {
    fn eq(&self, other: &StrategyKind) -> bool {
        self.id() == other.id()
    }
}

impl PartialEq<StrategyRef> for StrategyKind {
    fn eq(&self, other: &StrategyRef) -> bool {
        self.id() == other.id()
    }
}

impl From<StrategyKind> for StrategyRef {
    fn from(kind: StrategyKind) -> StrategyRef {
        StrategyRef::new(PaperStrategy(kind))
    }
}

impl From<&StrategyRef> for StrategyRef {
    fn from(r: &StrategyRef) -> StrategyRef {
        r.clone()
    }
}

/// A strategy name that matched nothing in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStrategy {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let known: Vec<String> = StrategyRegistry::builtin()
            .all()
            .iter()
            .map(|s| format!("{}|{}", s.id(), s.short_name()))
            .collect();
        write!(
            f,
            "unknown strategy '{}' (known: {})",
            self.name,
            known.join(", ")
        )
    }
}

impl std::error::Error for UnknownStrategy {}

impl FromStr for StrategyRef {
    type Err = UnknownStrategy;

    /// Resolves an id or short name (case-insensitive) against the
    /// builtin registry; round-trips with both [`fmt::Display`] (short
    /// name) and [`StrategyRef::id`].
    fn from_str(s: &str) -> Result<StrategyRef, UnknownStrategy> {
        StrategyRegistry::builtin()
            .get(s)
            .ok_or_else(|| UnknownStrategy {
                name: s.to_string(),
            })
    }
}

/// A `Copy` handle onto a builtin strategy: the interned registry id.
/// Exists so `Copy` carriers (the env/experiment contexts) can name a
/// strategy without holding a [`StrategyRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyId(&'static str);

impl StrategyId {
    /// The interned id string.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// The full strategy handle from the builtin registry.
    pub fn resolve(self) -> StrategyRef {
        StrategyRegistry::builtin()
            .get(self.0)
            .expect("StrategyId holds an interned builtin id")
    }
}

impl fmt::Display for StrategyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl FromStr for StrategyId {
    type Err = UnknownStrategy;

    fn from_str(s: &str) -> Result<StrategyId, UnknownStrategy> {
        s.parse::<StrategyRef>().map(|r| StrategyId(r.id()))
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// Strategies by stable string id.
///
/// Lookup accepts the id or the short name, case-insensitively.
/// [`StrategyRegistry::builtin`] holds the paper's five plus the two
/// theory-grounded extensions; experiment code can build its own
/// instance and [`register`](StrategyRegistry::register) more.
#[derive(Debug, Default)]
pub struct StrategyRegistry {
    entries: Vec<StrategyRef>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn empty() -> StrategyRegistry {
        StrategyRegistry::default()
    }

    /// A registry holding every builtin strategy.
    pub fn with_builtins() -> StrategyRegistry {
        let mut r = StrategyRegistry::empty();
        for kind in StrategyKind::ALL {
            r.register(StrategyRef::new(PaperStrategy(kind)));
        }
        r.register(StrategyRef::new(ReservationAutoscale::default()));
        r.register(StrategyRef::new(QueueingCapacity::default()));
        r
    }

    /// The process-wide builtin registry.
    pub fn builtin() -> &'static StrategyRegistry {
        static BUILTIN: OnceLock<StrategyRegistry> = OnceLock::new();
        BUILTIN.get_or_init(StrategyRegistry::with_builtins)
    }

    /// Registers a strategy, replacing any entry with the same id.
    pub fn register(&mut self, strategy: StrategyRef) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id() == strategy.id()) {
            *e = strategy;
        } else {
            self.entries.push(strategy);
        }
    }

    /// Resolves an id or short name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<StrategyRef> {
        self.entries
            .iter()
            .find(|s| {
                s.id().eq_ignore_ascii_case(name) || s.short_name().eq_ignore_ascii_case(name)
            })
            .cloned()
    }

    /// All registered strategies, in registration order.
    pub fn all(&self) -> &[StrategyRef] {
        &self.entries
    }

    /// All registered ids, in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.id()).collect()
    }
}

// ----------------------------------------------------------------------
// The paper's five strategies
// ----------------------------------------------------------------------

/// One of the paper's five strategies, on the trait (Tables 1 and 3).
#[derive(Debug, Clone, Copy)]
struct PaperStrategy(StrategyKind);

impl ProvisioningStrategy for PaperStrategy {
    fn id(&self) -> &'static str {
        self.0.id()
    }

    fn short_name(&self) -> &'static str {
        self.0.short_name()
    }

    fn uses_reserved(&self) -> bool {
        self.0.uses_reserved()
    }

    fn uses_on_demand(&self) -> bool {
        self.0.uses_on_demand()
    }

    fn on_demand_full_only(&self) -> bool {
        self.0.on_demand_full_only()
    }

    fn is_hybrid(&self) -> bool {
        self.0.is_hybrid()
    }

    fn profiles_noisily(&self) -> bool {
        // Profiling on small shared instances (the only kind OdM holds)
        // yields noisier signals (Section 3.3).
        self.0 == StrategyKind::OnDemandMixed
    }

    fn reserved_cores(&self, ctx: &ReservedSizingCtx) -> u32 {
        match self.0 {
            // SR: peak × (1 + overprovisioning), the margin widening
            // without profiling info (Sections 3.1, 3.3).
            StrategyKind::StaticReserved => {
                let over = if ctx.profiling {
                    ctx.overprovision
                } else {
                    ctx.overprovision_unprofiled
                };
                (ctx.peak_cores * (1.0 + over)).ceil() as u32
            }
            // Hybrids: the steady-state minimum (Section 4.1).
            StrategyKind::HybridFull | StrategyKind::HybridMixed => ctx.min_cores.ceil() as u32,
            StrategyKind::OnDemandFull | StrategyKind::OnDemandMixed => 0,
        }
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, rng: &mut SimRng) -> Placement {
        match self.0 {
            StrategyKind::StaticReserved => Placement::Reserved,
            StrategyKind::OnDemandFull | StrategyKind::OnDemandMixed => Placement::OnDemand,
            StrategyKind::HybridFull | StrategyKind::HybridMixed => {
                ctx.policy.decide(&ctx.mapping, rng)
            }
        }
    }

    fn fresh_run(&self) -> Box<dyn ProvisioningStrategy> {
        Box::new(*self)
    }
}

// ----------------------------------------------------------------------
// reservation-autoscale (Psychas & Ghaderi, arXiv 2005.13744)
// ----------------------------------------------------------------------

/// Blocking-threshold reservation scaling.
///
/// Psychas & Ghaderi scale a reservation by watching *blocking events*:
/// when arrivals find the reservation full beyond a threshold, the
/// reservation grows; after a long block-free stretch it shrinks. The
/// reserved pool here is fixed for a run, so the control surface is the
/// soft utilization limit instead — the knob that decides how much of
/// the pool arrivals may claim before overflowing to on-demand:
///
/// * the reserved queue is the blocking signal; `BLOCK_THRESHOLD` or
///   more queued jobs on `TRIP_OBS` consecutive ticks trips a
///   multiplicative cut (`× DOWN_STEP`) of the soft limit, diverting
///   arrivals to on-demand until the backlog drains;
/// * a block-free dwell of `DWELL_SECS` relaxes the limit back by
///   `UP_STEP` per window.
///
/// The asymmetry (fast multiplicative cut, slow additive recovery) is
/// the hysteresis that keeps the controller from oscillating. Placement
/// itself delegates to the configured mapping policy, like HM.
#[derive(Debug, Clone, Default)]
pub struct ReservationAutoscale {
    /// Consecutive ticks with the queue at or above the threshold.
    blocked_obs: u32,
    /// Start of the current block-free stretch.
    clear_since: Option<SimTime>,
}

impl ReservationAutoscale {
    /// Queued jobs counted as a blocking event.
    const BLOCK_THRESHOLD: usize = 4;
    /// Consecutive blocked ticks before the controller trips.
    const TRIP_OBS: u32 = 3;
    /// Multiplicative soft-limit cut on a trip.
    const DOWN_STEP: f64 = 0.85;
    /// Additive soft-limit recovery per block-free dwell window.
    const UP_STEP: f64 = 0.01;
    /// Block-free seconds before one recovery step.
    const DWELL_SECS: u64 = 60;
}

impl ProvisioningStrategy for ReservationAutoscale {
    fn id(&self) -> &'static str {
        "reservation-autoscale"
    }

    fn short_name(&self) -> &'static str {
        "RA"
    }

    fn uses_reserved(&self) -> bool {
        true
    }

    fn uses_on_demand(&self) -> bool {
        true
    }

    fn on_demand_full_only(&self) -> bool {
        false
    }

    fn is_hybrid(&self) -> bool {
        true
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, rng: &mut SimRng) -> Placement {
        ctx.policy.decide(&ctx.mapping, rng)
    }

    fn adapt_limits(&mut self, limits: &mut DynamicLimits, queue_len: usize, now: SimTime) {
        if queue_len >= Self::BLOCK_THRESHOLD {
            self.clear_since = None;
            self.blocked_obs += 1;
            if self.blocked_obs >= Self::TRIP_OBS {
                self.blocked_obs = 0;
                limits.set_soft(limits.soft() * Self::DOWN_STEP, now);
            }
        } else {
            self.blocked_obs = 0;
            if queue_len == 0 {
                let since = *self.clear_since.get_or_insert(now);
                if now.saturating_since(since) >= SimDuration::from_secs(Self::DWELL_SECS) {
                    limits.set_soft(limits.soft() + Self::UP_STEP, now);
                    self.clear_since = Some(now);
                }
            } else {
                self.clear_since = None;
            }
        }
    }

    fn fresh_run(&self) -> Box<dyn ProvisioningStrategy> {
        Box::new(ReservationAutoscale::default())
    }
}

// ----------------------------------------------------------------------
// queueing-capacity (Furman et al., arXiv 2209.08820)
// ----------------------------------------------------------------------

/// M\[x\]/G/s capacity planning on observed batch arrivals.
///
/// Furman et al. size capacity for queues with parallel processing and
/// batch arrivals; the square-root safety-staffing form of their
/// occupancy target is ρ\* = 1 − β·√b̄/√s, where b̄ is the mean batch
/// size and `s` the server count. Here a *batch* is one job's estimated
/// core demand (jobs claim `est.cores` servers of the reserved pool at
/// once), b̄ is an EWMA over arrivals, and `s` the provisioned reserved
/// cores. Each arrival maps through a static utilization-limit rule at
/// ρ\*: reserved below the target occupancy, on-demand overflow above
/// it. Bigger observed batches or a smaller pool widen the safety
/// margin, exactly the √b̄/√s scaling of the theory.
#[derive(Debug, Clone)]
pub struct QueueingCapacity {
    /// Quality-of-service parameter β (larger → more safety margin).
    beta: f64,
    /// EWMA of the estimated cores per arriving job.
    mean_batch: f64,
    /// Arrivals observed so far.
    arrivals: u64,
}

impl QueueingCapacity {
    /// EWMA smoothing factor for the batch-size estimate.
    const ALPHA: f64 = 0.05;
    /// Occupancy-target clamp: never starve the pool entirely, never
    /// plan past the dynamic hard limit's territory.
    const RHO_MIN: f64 = 0.30;
    const RHO_MAX: f64 = 0.95;

    /// A planner with quality-of-service parameter `beta`.
    pub fn with_beta(beta: f64) -> QueueingCapacity {
        QueueingCapacity {
            beta,
            mean_batch: 0.0,
            arrivals: 0,
        }
    }

    /// The current occupancy target ρ\* for a pool of `reserved_cores`.
    fn occupancy_target(&self, reserved_cores: u32) -> f64 {
        let s = reserved_cores.max(1) as f64;
        let b = self.mean_batch.max(1.0);
        (1.0 - self.beta * b.sqrt() / s.sqrt()).clamp(Self::RHO_MIN, Self::RHO_MAX)
    }
}

impl Default for QueueingCapacity {
    fn default() -> QueueingCapacity {
        QueueingCapacity::with_beta(2.0)
    }
}

impl ProvisioningStrategy for QueueingCapacity {
    fn id(&self) -> &'static str {
        "queueing-capacity"
    }

    fn short_name(&self) -> &'static str {
        "QC"
    }

    fn uses_reserved(&self) -> bool {
        true
    }

    fn uses_on_demand(&self) -> bool {
        true
    }

    fn on_demand_full_only(&self) -> bool {
        false
    }

    fn is_hybrid(&self) -> bool {
        true
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, rng: &mut SimRng) -> Placement {
        let b = ctx.mapping.job_cores as f64;
        self.arrivals += 1;
        if self.arrivals == 1 {
            self.mean_batch = b;
        } else {
            self.mean_batch += Self::ALPHA * (b - self.mean_batch);
        }
        let rho = self.occupancy_target(ctx.reserved_cores);
        MappingPolicy::UtilizationLimit(rho).decide(&ctx.mapping, rng)
    }

    fn fresh_run(&self) -> Box<dyn ProvisioningStrategy> {
        Box::new(QueueingCapacity::with_beta(self.beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::QualityMonitor;
    use crate::queue_estimator::QueueEstimator;
    use hcloud_cloud::InstanceType;

    #[test]
    fn table3_matrix() {
        use StrategyKind::*;
        assert!(StaticReserved.uses_reserved() && !StaticReserved.uses_on_demand());
        assert!(!OnDemandFull.uses_reserved() && OnDemandFull.uses_on_demand());
        assert!(!OnDemandMixed.uses_reserved() && OnDemandMixed.uses_on_demand());
        assert!(HybridFull.uses_reserved() && HybridFull.uses_on_demand());
        assert!(HybridMixed.uses_reserved() && HybridMixed.uses_on_demand());
    }

    #[test]
    fn full_only_flags() {
        use StrategyKind::*;
        assert!(OnDemandFull.on_demand_full_only());
        assert!(HybridFull.on_demand_full_only());
        assert!(!OnDemandMixed.on_demand_full_only());
        assert!(!HybridMixed.on_demand_full_only());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = StrategyKind::ALL.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["SR", "OdF", "OdM", "HF", "HM"]);
    }

    #[test]
    fn hybrids_identified() {
        assert!(StrategyKind::HybridFull.is_hybrid());
        assert!(!StrategyKind::StaticReserved.is_hybrid());
    }

    #[test]
    fn trait_flags_match_enum_flags() {
        for kind in StrategyKind::ALL {
            let r = StrategyRef::from(kind);
            assert_eq!(r.uses_reserved(), kind.uses_reserved(), "{kind}");
            assert_eq!(r.uses_on_demand(), kind.uses_on_demand(), "{kind}");
            assert_eq!(
                r.on_demand_full_only(),
                kind.on_demand_full_only(),
                "{kind}"
            );
            assert_eq!(r.is_hybrid(), kind.is_hybrid(), "{kind}");
            assert_eq!(r.profiles_noisily(), kind == StrategyKind::OnDemandMixed);
            assert_eq!(r.short_name(), kind.short_name());
            assert_eq!(r.kind(), Some(kind));
            assert_eq!(r, kind);
            assert_eq!(kind, r);
        }
    }

    #[test]
    fn builtin_registry_holds_seven() {
        let r = StrategyRegistry::builtin();
        assert_eq!(
            r.ids(),
            vec![
                "static-reserved",
                "on-demand-full",
                "on-demand-mixed",
                "hybrid-full",
                "hybrid-mixed",
                "reservation-autoscale",
                "queueing-capacity",
            ]
        );
    }

    #[test]
    fn lookup_accepts_ids_and_short_names_case_insensitively() {
        let r = StrategyRegistry::builtin();
        assert_eq!(r.get("hybrid-mixed").unwrap().short_name(), "HM");
        assert_eq!(r.get("HM").unwrap().id(), "hybrid-mixed");
        assert_eq!(r.get("hm").unwrap().id(), "hybrid-mixed");
        assert_eq!(r.get("Hybrid-Mixed").unwrap().id(), "hybrid-mixed");
        assert_eq!(r.get("RA").unwrap().id(), "reservation-autoscale");
        assert_eq!(r.get("qc").unwrap().id(), "queueing-capacity");
        assert!(r.get("bogus").is_none());
    }

    #[test]
    fn from_str_round_trips_every_builtin() {
        for s in StrategyRegistry::builtin().all() {
            let by_id: StrategyRef = s.id().parse().unwrap();
            let by_short: StrategyRef = s.short_name().parse().unwrap();
            let by_display: StrategyRef = s.to_string().parse().unwrap();
            assert_eq!(&by_id, s);
            assert_eq!(&by_short, s);
            assert_eq!(&by_display, s);
            let id: StrategyId = s.id().parse().unwrap();
            assert_eq!(id.as_str(), s.id());
            assert_eq!(&id.resolve(), s);
        }
        assert!("bogus".parse::<StrategyRef>().is_err());
        let err = "bogus".parse::<StrategyRef>().unwrap_err();
        assert!(err.to_string().contains("unknown strategy 'bogus'"));
        assert!(err.to_string().contains("reservation-autoscale"));
    }

    #[test]
    fn register_replaces_same_id() {
        let mut r = StrategyRegistry::with_builtins();
        let n = r.all().len();
        r.register(StrategyRef::new(QueueingCapacity::with_beta(3.0)));
        assert_eq!(r.all().len(), n);
    }

    #[test]
    fn new_strategies_are_hybrids_with_mixed_on_demand() {
        for id in ["reservation-autoscale", "queueing-capacity"] {
            let s = StrategyRegistry::builtin().get(id).unwrap();
            assert!(s.uses_reserved(), "{id}");
            assert!(s.uses_on_demand(), "{id}");
            assert!(!s.on_demand_full_only(), "{id}");
            assert!(s.is_hybrid(), "{id}");
            assert!(!s.profiles_noisily(), "{id}");
            assert!(s.kind().is_none(), "{id}");
        }
    }

    #[test]
    fn reserved_sizing_hook_matches_old_formulas() {
        let ctx = ReservedSizingCtx {
            peak_cores: 885.0,
            min_cores: 602.4,
            profiling: true,
            overprovision: 0.15,
            overprovision_unprofiled: 0.30,
        };
        let sr = StrategyRef::from(StrategyKind::StaticReserved);
        assert_eq!(sr.reserved_cores(&ctx), (885.0f64 * 1.15).ceil() as u32);
        let unprofiled = ReservedSizingCtx {
            profiling: false,
            ..ctx
        };
        assert_eq!(
            sr.reserved_cores(&unprofiled),
            (885.0f64 * 1.30).ceil() as u32
        );
        assert_eq!(
            StrategyRef::from(StrategyKind::HybridMixed).reserved_cores(&ctx),
            603
        );
        assert_eq!(
            StrategyRef::from(StrategyKind::OnDemandMixed).reserved_cores(&ctx),
            0
        );
        // The new strategies size like the hybrids.
        assert_eq!(
            StrategyRegistry::builtin()
                .get("reservation-autoscale")
                .unwrap()
                .reserved_cores(&ctx),
            603
        );
    }

    #[test]
    fn autoscale_trips_on_sustained_blocking_and_recovers_when_clear() {
        let mut s = ReservationAutoscale::default();
        let mut limits = DynamicLimits::default();
        let before = limits.soft();
        // Two blocked ticks: below TRIP_OBS, no change.
        s.adapt_limits(&mut limits, 10, SimTime::from_secs(10));
        s.adapt_limits(&mut limits, 10, SimTime::from_secs(20));
        assert!((limits.soft() - before).abs() < 1e-12);
        // Third consecutive blocked tick trips the multiplicative cut.
        s.adapt_limits(&mut limits, 10, SimTime::from_secs(30));
        let cut = limits.soft();
        assert!((cut - before * 0.85).abs() < 1e-9, "soft {cut}");
        // A short clear stretch does nothing...
        s.adapt_limits(&mut limits, 0, SimTime::from_secs(40));
        assert!((limits.soft() - cut).abs() < 1e-12);
        // ...but a full dwell window recovers one additive step.
        s.adapt_limits(&mut limits, 0, SimTime::from_secs(110));
        assert!((limits.soft() - (cut + 0.01)).abs() < 1e-9);
    }

    #[test]
    fn autoscale_blocked_counter_resets_between_bursts() {
        let mut s = ReservationAutoscale::default();
        let mut limits = DynamicLimits::default();
        let before = limits.soft();
        // Interleaved blocked/clear ticks never reach TRIP_OBS in a row.
        for k in 0..12u64 {
            let q = if k % 2 == 0 { 10 } else { 1 };
            s.adapt_limits(&mut limits, q, SimTime::from_secs(10 * (k + 1)));
        }
        assert!((limits.soft() - before).abs() < 1e-12);
    }

    #[test]
    fn queueing_capacity_target_scales_with_batch_and_pool() {
        let mut small_batches = QueueingCapacity::default();
        let mut big_batches = QueueingCapacity::default();
        let monitor = QualityMonitor::default();
        let limits = DynamicLimits::default();
        let est = QueueEstimator::default();
        let mut rng = SimRng::from_seed_u64(7);
        let mapping = |cores: u32| MappingContext {
            reserved_utilization: 0.5,
            job_quality: 0.5,
            od_itype: InstanceType::standard(2),
            job_cores: cores,
            queue_len: 0,
            expected_spinup_large: SimDuration::from_secs(18),
            monitor: &monitor,
            limits: &limits,
            queue_estimator: &est,
            now: SimTime::ZERO,
        };
        for _ in 0..50 {
            small_batches.place(
                &PlacementCtx {
                    mapping: mapping(1),
                    policy: MappingPolicy::Dynamic,
                    reserved_cores: 600,
                },
                &mut rng,
            );
            big_batches.place(
                &PlacementCtx {
                    mapping: mapping(16),
                    policy: MappingPolicy::Dynamic,
                    reserved_cores: 600,
                },
                &mut rng,
            );
        }
        let small = small_batches.occupancy_target(600);
        let big = big_batches.occupancy_target(600);
        assert!(
            big < small,
            "bigger batches need more safety margin: {big} vs {small}"
        );
        // A smaller pool also widens the margin.
        assert!(big_batches.occupancy_target(64) < big);
        // Targets stay clamped.
        assert!((0.30..=0.95).contains(&big_batches.occupancy_target(1)));
    }

    #[test]
    fn fresh_run_resets_adaptive_state() {
        let mut qc = QueueingCapacity::default();
        let monitor = QualityMonitor::default();
        let limits = DynamicLimits::default();
        let est = QueueEstimator::default();
        let mut rng = SimRng::from_seed_u64(7);
        let ctx = PlacementCtx {
            mapping: MappingContext {
                reserved_utilization: 0.5,
                job_quality: 0.5,
                od_itype: InstanceType::standard(2),
                job_cores: 8,
                queue_len: 0,
                expected_spinup_large: SimDuration::from_secs(18),
                monitor: &monitor,
                limits: &limits,
                queue_estimator: &est,
                now: SimTime::ZERO,
            },
            policy: MappingPolicy::Dynamic,
            reserved_cores: 600,
        };
        qc.place(&ctx, &mut rng);
        assert!(qc.arrivals > 0);
        let fresh = qc.fresh_run();
        let dbg = format!("{fresh:?}");
        assert!(dbg.contains("arrivals: 0"), "fresh state: {dbg}");
    }

    #[test]
    fn default_retention_matches_paper_rules() {
        let sr = StrategyRef::from(StrategyKind::HybridMixed);
        let sr = sr.fresh_run();
        let base = RetentionCtx {
            spin_up: SimDuration::from_secs(20),
            delivered_quality: 0.9,
            profiling: true,
            retention_mult: 10.0,
            quality_retention_threshold: 0.75,
        };
        assert_eq!(
            sr.retention(&base),
            RetentionDecision::Retain(SimDuration::from_secs(200))
        );
        // Poor quality with profiling: release immediately.
        assert_eq!(
            sr.retention(&RetentionCtx {
                delivered_quality: 0.5,
                ..base
            }),
            RetentionDecision::ReleaseNow
        );
        // Without profiling there is no quality signal: always retain.
        assert_eq!(
            sr.retention(&RetentionCtx {
                delivered_quality: 0.5,
                profiling: false,
                ..base
            }),
            RetentionDecision::Retain(SimDuration::from_secs(200))
        );
        // Tiny spin-up still retains for at least a second.
        assert_eq!(
            sr.retention(&RetentionCtx {
                spin_up: SimDuration::from_secs_f64(0.01),
                ..base
            }),
            RetentionDecision::Retain(SimDuration::from_secs(1))
        );
    }
}
