//! The five provisioning strategies (Tables 1 and 3).
//!
//! | | SR | OdF | OdM | HF | HM |
//! |---|---|---|---|---|---|
//! | Reserved resources | yes | no | no | yes | yes |
//! | On-demand resources | no | full servers | any size | full servers | any size |

use std::fmt;

/// A provisioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Statically reserved: provision reserved full servers for peak load
    /// (plus overprovisioning) upfront; never acquire on-demand.
    StaticReserved,
    /// Fully on-demand, full servers only (OdF).
    OnDemandFull,
    /// Fully on-demand, mixed instance sizes (OdM).
    OnDemandMixed,
    /// Hybrid: reserved for the steady-state minimum, on-demand full
    /// servers for overflow (HF).
    HybridFull,
    /// Hybrid: reserved for the steady-state minimum, mixed-size
    /// on-demand for overflow (HM).
    HybridMixed,
}

impl StrategyKind {
    /// All five strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::StaticReserved,
        StrategyKind::OnDemandFull,
        StrategyKind::OnDemandMixed,
        StrategyKind::HybridFull,
        StrategyKind::HybridMixed,
    ];

    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            StrategyKind::StaticReserved => "SR",
            StrategyKind::OnDemandFull => "OdF",
            StrategyKind::OnDemandMixed => "OdM",
            StrategyKind::HybridFull => "HF",
            StrategyKind::HybridMixed => "HM",
        }
    }

    /// Whether the strategy provisions reserved resources (Table 3 row 1).
    pub fn uses_reserved(self) -> bool {
        matches!(
            self,
            StrategyKind::StaticReserved | StrategyKind::HybridFull | StrategyKind::HybridMixed
        )
    }

    /// Whether the strategy acquires on-demand resources (Table 3 row 2).
    pub fn uses_on_demand(self) -> bool {
        !matches!(self, StrategyKind::StaticReserved)
    }

    /// Whether on-demand acquisitions are restricted to full servers.
    pub fn on_demand_full_only(self) -> bool {
        matches!(self, StrategyKind::OnDemandFull | StrategyKind::HybridFull)
    }

    /// Whether this is one of the two hybrid strategies.
    pub fn is_hybrid(self) -> bool {
        matches!(self, StrategyKind::HybridFull | StrategyKind::HybridMixed)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matrix() {
        use StrategyKind::*;
        assert!(StaticReserved.uses_reserved() && !StaticReserved.uses_on_demand());
        assert!(!OnDemandFull.uses_reserved() && OnDemandFull.uses_on_demand());
        assert!(!OnDemandMixed.uses_reserved() && OnDemandMixed.uses_on_demand());
        assert!(HybridFull.uses_reserved() && HybridFull.uses_on_demand());
        assert!(HybridMixed.uses_reserved() && HybridMixed.uses_on_demand());
    }

    #[test]
    fn full_only_flags() {
        use StrategyKind::*;
        assert!(OnDemandFull.on_demand_full_only());
        assert!(HybridFull.on_demand_full_only());
        assert!(!OnDemandMixed.on_demand_full_only());
        assert!(!HybridMixed.on_demand_full_only());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = StrategyKind::ALL.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["SR", "OdF", "OdM", "HF", "HM"]);
    }

    #[test]
    fn hybrids_identified() {
        assert!(StrategyKind::HybridFull.is_hybrid());
        assert!(!StrategyKind::StaticReserved.is_hybrid());
    }
}
