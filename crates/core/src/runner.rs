//! End-to-end scenario execution.
//!
//! [`run_scenario`] feeds a generated [`Scenario`] through the
//! [`Scheduler`] under a [`RunConfig`], driving the discrete-event loop to
//! completion and returning the [`RunResult`] every figure binary
//! aggregates.
//!
//! [`run_scenario_instrumented`] additionally threads a conservation
//! [`Auditor`] through the scheduler, checks its invariants (per event
//! under strict mode, and the end-of-run identities either way), and
//! fails the run with a typed [`AuditViolation`] when accounting breaks.

use hcloud_audit::{AuditViolation, Auditor};
use hcloud_sim::event::EventQueue;
use hcloud_sim::rng::RngFactory;
use hcloud_sim::SimTime;
use hcloud_telemetry::{trace_event, TraceKind, Tracer};
use hcloud_workloads::Scenario;

use crate::config::RunConfig;
use crate::result::RunResult;
use crate::scheduler::{Event, Scheduler};

/// How often the event loop emits a `progress` trace event.
const PROGRESS_EVERY: usize = 4096;

/// Runs `scenario` under `config`. Deterministic in `factory`.
///
/// The monitor tick keeps firing until every job has finished, so the
/// returned makespan covers stragglers (OdM's high-variability run takes
/// ~48% longer than SR's, Section 5.4).
pub fn run_scenario(scenario: &Scenario, config: &RunConfig, factory: &RngFactory) -> RunResult {
    run_scenario_traced(scenario, config, factory, &Tracer::disabled())
}

/// [`run_scenario`] with structured tracing: every instrumented decision in
/// the scheduler, cloud and event loop lands in `tracer`, stamped with sim
/// time. With a disabled tracer this is exactly `run_scenario`.
pub fn run_scenario_traced(
    scenario: &Scenario,
    config: &RunConfig,
    factory: &RngFactory,
    tracer: &Tracer,
) -> RunResult {
    run_scenario_instrumented(scenario, config, factory, tracer, &Auditor::disabled())
        .expect("a disabled auditor never reports violations")
}

/// [`run_scenario_traced`] with the conservation-audit oracle attached.
///
/// The auditor's shadow ledgers are fed by the scheduler's accounting
/// hooks; under [`hcloud_audit::AuditMode::Strict`] every event-loop step
/// asserts the ledgers are violation-free, and under any enabled mode the
/// end-of-run identities (work demanded == executed + lost, observed ==
/// billed instance-seconds, queue and job conservation, per-instance core
/// leaks) are checked against the finished [`RunResult`]. With a disabled
/// auditor this is exactly [`run_scenario_traced`].
pub fn run_scenario_instrumented(
    scenario: &Scenario,
    config: &RunConfig,
    factory: &RngFactory,
    tracer: &Tracer,
    auditor: &Auditor,
) -> Result<RunResult, AuditViolation> {
    let mut sched =
        Scheduler::with_instruments(scenario, config, factory, tracer.clone(), auditor.clone());
    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, job) in scenario.jobs().iter().enumerate() {
        events.schedule(job.arrival, Event::Arrival(i));
    }
    let last_arrival = scenario
        .jobs()
        .last()
        .map(|j| j.arrival)
        .unwrap_or(SimTime::ZERO);
    events.schedule(SimTime::ZERO, Event::Tick);

    let mut end = SimTime::ZERO;
    let mut events_processed = 0usize;
    let result = loop {
        let Some((t, event)) = events.pop() else {
            break Ok(());
        };
        end = t;
        events_processed += 1;
        let stepped = match event {
            Event::Arrival(i) => {
                sched.on_arrival(i, t, &mut events);
                Ok(())
            }
            Event::Start(jid) => {
                sched.on_start(jid, t, &mut events);
                Ok(())
            }
            Event::Finish(jid, v) => sched.on_finish(jid, v, t, &mut events),
            Event::Retention(idx, token) => {
                sched.on_retention(idx, token, t);
                Ok(())
            }
            Event::SpotTermination(idx) => sched.on_spot_termination(idx, t, &mut events),
            Event::Tick => {
                let r = sched.on_tick(t, &mut events);
                if t < last_arrival || sched.pending_jobs() > 0 {
                    events.schedule(t + config.monitor_interval, Event::Tick);
                }
                r
            }
        };
        if let Err(violation) = stepped.and_then(|()| auditor.step_check()) {
            break Err(violation);
        }
        if events_processed.is_multiple_of(PROGRESS_EVERY) {
            trace_event!(
                tracer,
                t,
                TraceKind::Progress {
                    events_processed: events_processed as u64,
                    queue_depth: events.len(),
                }
            );
        }
    };
    trace_event!(
        tracer,
        end,
        TraceKind::RunEnd {
            events_processed: events_processed as u64,
            scheduled_total: events.scheduled_total(),
            max_queue_depth: events.max_depth(),
        }
    );
    if let Err(violation) = result {
        trace_event!(
            tracer,
            end,
            TraceKind::AuditViolation {
                message: violation.to_string(),
            }
        );
        return Err(violation);
    }
    let mut run = sched.into_result(end);
    run.counters.events_processed = events_processed;
    if auditor.is_enabled() {
        // The billing side of the instance-seconds identity, exactly as
        // the provider computes it: micro-vCPU-seconds over the usage
        // records, clipped to the makespan.
        let billed: u128 = run
            .usage_records
            .iter()
            .map(|u| u.duration().as_micros() as u128 * u.itype.vcpus() as u128)
            .sum();
        let finalized = auditor.finalize(run.makespan, billed, run.counters.work_lost_core_secs);
        let summary = auditor.summary();
        trace_event!(
            tracer,
            end,
            TraceKind::AuditSummary {
                demanded_core_secs: summary.demanded_core_secs,
                credited_core_secs: summary.credited_core_secs,
                lost_core_secs: summary.lost_core_secs,
                jobs_admitted: summary.jobs_admitted,
                jobs_completed: summary.jobs_completed,
                violations: summary.violations,
            }
        );
        if let Err(violation) = finalized {
            trace_event!(
                tracer,
                end,
                TraceKind::AuditViolation {
                    message: violation.to_string(),
                }
            );
            return Err(violation);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    /// A small scenario that runs in well under a second.
    fn small_scenario(kind: ScenarioKind) -> Scenario {
        Scenario::generate(ScenarioConfig::scaled(kind, 0.08, 20), &RngFactory::new(7))
    }

    fn run(strategy: StrategyKind, kind: ScenarioKind) -> RunResult {
        let scenario = small_scenario(kind);
        let config = RunConfig::new(strategy);
        run_scenario(&scenario, &config, &RngFactory::new(7))
    }

    #[test]
    fn all_jobs_complete_under_every_strategy() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        for strategy in StrategyKind::ALL {
            let config = RunConfig::new(strategy);
            let result = run_scenario(&scenario, &config, &RngFactory::new(7));
            assert_eq!(
                result.outcomes.len(),
                scenario.jobs().len(),
                "{strategy}: some jobs never finished"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        let b = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        let perf_a: Vec<f64> = a.outcomes.iter().map(|o| o.normalized_perf).collect();
        let perf_b: Vec<f64> = b.outcomes.iter().map(|o| o.normalized_perf).collect();
        assert_eq!(perf_a, perf_b);
    }

    #[test]
    fn sr_uses_no_on_demand() {
        let r = run(StrategyKind::StaticReserved, ScenarioKind::Static);
        assert_eq!(r.counters.od_acquired, 0);
        assert!(r.usage_records.iter().all(|u| u.reserved));
        assert!(r.outcomes.iter().all(|o| o.on_reserved));
    }

    #[test]
    fn on_demand_strategies_use_no_reserved() {
        for s in [StrategyKind::OnDemandFull, StrategyKind::OnDemandMixed] {
            let r = run(s, ScenarioKind::Static);
            assert_eq!(r.reserved_cores, 0, "{s}");
            assert!(r.counters.od_acquired > 0, "{s}");
            assert!(r.outcomes.iter().all(|o| !o.on_reserved), "{s}");
        }
    }

    #[test]
    fn odm_uses_smaller_instances_than_odf() {
        let f = run(StrategyKind::OnDemandFull, ScenarioKind::Static);
        let m = run(StrategyKind::OnDemandMixed, ScenarioKind::Static);
        let mean_vcpus = |r: &RunResult| {
            let od: Vec<u32> = r
                .usage_records
                .iter()
                .filter(|u| !u.reserved)
                .map(|u| u.itype.vcpus())
                .collect();
            od.iter().sum::<u32>() as f64 / od.len() as f64
        };
        assert!(mean_vcpus(&m) < mean_vcpus(&f));
    }

    #[test]
    fn hybrids_use_both_kinds() {
        let r = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        assert!(r.reserved_cores > 0);
        assert!(r.counters.od_acquired > 0);
        let on_res = r.outcomes.iter().filter(|o| o.on_reserved).count();
        assert!(on_res > 0 && on_res < r.outcomes.len());
    }

    #[test]
    fn sr_outperforms_odm() {
        let sr = run(StrategyKind::StaticReserved, ScenarioKind::HighVariability);
        let odm = run(StrategyKind::OnDemandMixed, ScenarioKind::HighVariability);
        assert!(
            sr.mean_normalized_perf() > odm.mean_normalized_perf(),
            "SR {} should beat OdM {}",
            sr.mean_normalized_perf(),
            odm.mean_normalized_perf()
        );
    }

    #[test]
    fn profiling_info_helps_hybrids() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let with = run_scenario(
            &scenario,
            &RunConfig::new(StrategyKind::HybridMixed),
            &RngFactory::new(7),
        );
        let without = run_scenario(
            &scenario,
            &RunConfig::new(StrategyKind::HybridMixed).without_profiling(),
            &RngFactory::new(7),
        );
        assert!(
            with.mean_normalized_perf() > without.mean_normalized_perf(),
            "with {} vs without {}",
            with.mean_normalized_perf(),
            without.mean_normalized_perf()
        );
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let plain = run_scenario(&scenario, &config, &RngFactory::new(7));
        let tracer = Tracer::enabled();
        let traced = run_scenario_traced(&scenario, &config, &RngFactory::new(7), &tracer);
        assert_eq!(plain, traced, "tracer must not change simulation outcomes");
        let events = tracer.take();
        assert!(!events.is_empty(), "enabled tracer records the run");
        assert!(
            matches!(
                events.last().expect("tracer recorded events").kind,
                TraceKind::RunEnd { .. }
            ),
            "run ends with a run-end event"
        );
        let mut last = hcloud_sim::SimTime::ZERO;
        for ev in &events {
            assert!(ev.at >= last, "trace is sim-time ordered");
            last = ev.at;
        }
    }

    #[test]
    fn strict_audit_passes_on_clean_runs() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        for strategy in StrategyKind::ALL {
            let config = RunConfig::new(strategy);
            let auditor = Auditor::new(hcloud_audit::AuditMode::Strict);
            let result = run_scenario_instrumented(
                &scenario,
                &config,
                &RngFactory::new(7),
                &Tracer::disabled(),
                &auditor,
            );
            let result = result.unwrap_or_else(|v| panic!("{strategy}: {v}"));
            assert_eq!(result.outcomes.len(), scenario.jobs().len());
            let summary = auditor.summary();
            assert_eq!(summary.violations, 0, "{strategy}");
            assert_eq!(summary.jobs_admitted, scenario.jobs().len() as u64);
            assert_eq!(summary.jobs_completed, summary.jobs_admitted);
        }
    }

    #[test]
    fn auditing_does_not_perturb_results() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let plain = run_scenario(&scenario, &config, &RngFactory::new(7));
        let auditor = Auditor::new(hcloud_audit::AuditMode::Strict);
        let audited = run_scenario_instrumented(
            &scenario,
            &config,
            &RngFactory::new(7),
            &Tracer::disabled(),
            &auditor,
        )
        .expect("clean run");
        assert_eq!(
            plain, audited,
            "auditor must not change simulation outcomes"
        );
    }

    #[test]
    fn makespan_covers_all_outcomes() {
        let r = run(StrategyKind::OnDemandMixed, ScenarioKind::LowVariability);
        for o in &r.outcomes {
            assert!(o.finished <= r.makespan);
            assert!(o.started >= o.arrival);
            assert!((0.0..=1.0).contains(&o.normalized_perf));
        }
    }

    #[test]
    fn reserved_busy_never_exceeds_capacity() {
        let r = run(StrategyKind::StaticReserved, ScenarioKind::Static);
        for &(_, v) in r.reserved_busy.points() {
            assert!(v >= -1e-9, "negative busy cores {v}");
            assert!(
                v <= r.reserved_cores as f64 + 1e-9,
                "busy {v} exceeds capacity {}",
                r.reserved_cores
            );
        }
    }
}
