//! End-to-end scenario execution.
//!
//! [`run_scenario`] feeds a generated [`Scenario`] through the
//! [`Scheduler`] under a [`RunConfig`], driving the discrete-event loop to
//! completion and returning the [`RunResult`] every figure binary
//! aggregates. What used to be three entry points (plain / traced /
//! instrumented) is now one: a [`RunCtx`] carries the rng factory plus the
//! optional [`Tracer`] and conservation [`Auditor`], so callers opt into
//! instrumentation by attaching it rather than by picking a function.
//!
//! The event loop itself is batched: [`run_scenario_on`] drains every
//! event sharing the current timestamp in one call against the
//! [`EventQueueApi`] (the timing-wheel [`EventQueue`] by default, the
//! retained [`hcloud_sim::event::HeapEventQueue`] for differential runs)
//! and applies the batch as a slice, acknowledging each event as it is
//! dispatched so queue-depth telemetry stays byte-identical to the old
//! one-pop-per-iteration loop.

use hcloud_audit::Auditor;
// Re-exported so downstream `main() -> Result<(), AuditViolation>`
// wrappers need only the `hcloud` dependency.
pub use hcloud_audit::AuditViolation;
use hcloud_sim::event::{
    EventQueue, EventQueueApi, EventSink, EventToken, HeapEventQueue, QueueKind,
};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::SimTime;
use hcloud_telemetry::{trace_event, ProfSpan, Profiler, TraceKind, Tracer};
use hcloud_workloads::Scenario;

use crate::config::RunConfig;
use crate::result::RunResult;
use crate::scheduler::{Event, Scheduler};

/// How often the event loop emits a `progress` trace event.
const PROGRESS_EVERY: usize = 4096;

/// Everything a run needs besides the scenario and config: the rng factory
/// that makes it deterministic, plus optional instrumentation.
///
/// ```
/// use hcloud::runner::RunCtx;
/// use hcloud_sim::rng::RngFactory;
/// use hcloud_telemetry::Tracer;
///
/// let factory = RngFactory::new(7);
/// let tracer = Tracer::enabled();
/// let ctx = RunCtx::new(&factory).with_tracer(&tracer);
/// # let _ = ctx;
/// ```
#[derive(Clone, Copy)]
pub struct RunCtx<'a> {
    factory: &'a RngFactory,
    tracer: Option<&'a Tracer>,
    auditor: Option<&'a Auditor>,
    profiler: Option<&'a Profiler>,
}

impl<'a> RunCtx<'a> {
    /// A bare context: deterministic in `factory`, no tracing, no audit.
    pub fn new(factory: &'a RngFactory) -> Self {
        Self {
            factory,
            tracer: None,
            auditor: None,
            profiler: None,
        }
    }

    /// Attach a [`Tracer`]: every instrumented decision in the scheduler,
    /// cloud and event loop lands in it, stamped with sim time. Tracing
    /// never perturbs simulation outcomes.
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach the conservation-audit oracle. The auditor's shadow ledgers
    /// are fed by the scheduler's accounting hooks; under
    /// [`hcloud_audit::AuditMode::Strict`] every event-loop step asserts
    /// the ledgers are violation-free, and under any enabled mode the
    /// end-of-run identities (work demanded == executed + lost, observed
    /// == billed instance-seconds, queue and job conservation,
    /// per-instance core leaks) are checked against the finished
    /// [`RunResult`].
    pub fn with_auditor(mut self, auditor: &'a Auditor) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// Attach a [`Profiler`]: the event queue, the placement front door,
    /// the monitor's quantile churn and the audit hooks attribute their
    /// wall clock to its per-subsystem spans. Operation counts are
    /// deterministic; wall clock is machine-dependent. Profiling never
    /// perturbs simulation outcomes.
    pub fn with_profiler(mut self, profiler: &'a Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The rng factory this context runs under.
    pub fn factory(&self) -> &'a RngFactory {
        self.factory
    }
}

/// An [`EventSink`] adapter attributing queue operations to a run's
/// profiling spans: pushes through the trait (the path the scheduler
/// sees), batch pops through the inherent [`drain_next_batch`]. With a
/// disabled profiler every call is one branch away from the bare queue.
///
/// [`drain_next_batch`]: ProfiledQueue::drain_next_batch
struct ProfiledQueue<'p, Q> {
    inner: Q,
    profiler: &'p Profiler,
}

impl<Q: EventQueueApi<Event>> EventSink<Event> for ProfiledQueue<'_, Q> {
    fn schedule(&mut self, at: SimTime, event: Event) -> EventToken {
        let profiler = self.profiler;
        profiler.time(ProfSpan::EventPush, || self.inner.schedule(at, event))
    }
}

impl<'p, Q: EventQueueApi<Event>> ProfiledQueue<'p, Q> {
    fn new(inner: Q, profiler: &'p Profiler) -> Self {
        ProfiledQueue { inner, profiler }
    }

    fn drain_next_batch(&mut self, buf: &mut Vec<Event>) -> Option<SimTime> {
        let profiler = self.profiler;
        profiler.time(ProfSpan::EventPop, || self.inner.drain_next_batch(buf))
    }

    fn ack(&mut self) {
        self.inner.ack();
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.inner.scheduled_total()
    }

    fn max_depth(&self) -> usize {
        self.inner.max_depth()
    }
}

/// Runs `scenario` under `config` with the instrumentation carried by
/// `ctx`. Deterministic in `ctx`'s rng factory.
///
/// The monitor tick keeps firing until every job has finished, so the
/// returned makespan covers stragglers (OdM's high-variability run takes
/// ~48% longer than SR's, Section 5.4).
///
/// Without an auditor attached this never returns `Err`.
pub fn run_scenario(
    scenario: &Scenario,
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<RunResult, AuditViolation> {
    run_scenario_on::<EventQueue<Event>>(scenario, config, ctx)
}

/// [`run_scenario`] with the event-queue implementation chosen at run
/// time by a typed [`QueueKind`] — the dispatch point for the
/// `HCLOUD_QUEUE` knob, so callers comparing the two implementations
/// never hardcode queue selection.
pub fn run_scenario_queued(
    queue: QueueKind,
    scenario: &Scenario,
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<RunResult, AuditViolation> {
    match queue {
        QueueKind::Wheel => run_scenario_on::<EventQueue<Event>>(scenario, config, ctx),
        QueueKind::Heap => run_scenario_on::<HeapEventQueue<Event>>(scenario, config, ctx),
    }
}

/// [`run_scenario`] generic over the event-queue implementation.
///
/// The digest-identity benches run the same scenario on the timing-wheel
/// [`EventQueue`] and the reference [`hcloud_sim::event::HeapEventQueue`]
/// and assert byte-identical results and traces; everything else should
/// call [`run_scenario`].
pub fn run_scenario_on<Q: EventQueueApi<Event>>(
    scenario: &Scenario,
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<RunResult, AuditViolation> {
    let disabled_tracer = Tracer::disabled();
    let tracer = ctx.tracer.unwrap_or(&disabled_tracer);
    let disabled_auditor = Auditor::disabled();
    let auditor = ctx.auditor.unwrap_or(&disabled_auditor);
    let disabled_profiler = Profiler::disabled();
    let profiler = ctx.profiler.unwrap_or(&disabled_profiler);
    let mut sched = Scheduler::with_instruments(
        scenario,
        config,
        ctx.factory,
        tracer.clone(),
        auditor.clone(),
        profiler.clone(),
    );
    let mut events = ProfiledQueue::new(Q::default(), profiler);
    for job in scenario.jobs() {
        events.schedule(job.arrival, Event::Arrival(job.id));
    }
    let last_arrival = scenario
        .jobs()
        .last()
        .map(|j| j.arrival)
        .unwrap_or(SimTime::ZERO);
    events.schedule(SimTime::ZERO, Event::Tick);

    let mut end = SimTime::ZERO;
    let mut events_processed = 0usize;
    let mut batch: Vec<Event> = Vec::new();
    let result = 'run: loop {
        // Drain every event sharing the next timestamp and apply them as
        // a slice. Events scheduled *at* `t` during the batch (job starts
        // with zero spin-up, same-instant retention) land in the next
        // batch at the same `t`, exactly where the heap loop would pop
        // them.
        let Some(t) = events.drain_next_batch(&mut batch) else {
            break Ok(());
        };
        end = t;
        for event in batch.drain(..) {
            // Acknowledge before dispatch so `events.len()` observed by
            // telemetry matches the sequential pop loop event-for-event.
            events.ack();
            events_processed += 1;
            let stepped = match event {
                Event::Arrival(id) => {
                    sched
                        .on_arrival(id, t, &mut events)
                        .expect("arrivals are seeded from the scenario's own job ids");
                    Ok(())
                }
                Event::Start(jid) => {
                    sched.on_start(jid, t, &mut events);
                    Ok(())
                }
                Event::Finish(jid, v) => sched.on_finish(jid, v, t, &mut events),
                Event::Retention(idx, token) => {
                    sched.on_retention(idx, token, t);
                    Ok(())
                }
                Event::SpotTermination(idx) => sched.on_spot_termination(idx, t, &mut events),
                Event::Tick => {
                    let r = sched.on_tick(t, &mut events);
                    if t < last_arrival || sched.pending_jobs() > 0 {
                        events.schedule(t + config.monitor_interval, Event::Tick);
                    }
                    r
                }
            };
            if let Err(violation) =
                stepped.and_then(|()| profiler.time(ProfSpan::AuditHooks, || auditor.step_check()))
            {
                break 'run Err(violation);
            }
            if events_processed.is_multiple_of(PROGRESS_EVERY) {
                trace_event!(
                    tracer,
                    t,
                    TraceKind::Progress {
                        events_processed: events_processed as u64,
                        queue_depth: events.len(),
                    }
                );
            }
        }
    };
    trace_event!(
        tracer,
        end,
        TraceKind::RunEnd {
            events_processed: events_processed as u64,
            scheduled_total: events.scheduled_total(),
            max_queue_depth: events.max_depth(),
        }
    );
    if let Err(violation) = result {
        trace_event!(
            tracer,
            end,
            TraceKind::AuditViolation {
                message: violation.to_string(),
            }
        );
        return Err(violation);
    }
    let mut run = sched.into_result(end);
    run.counters.events_processed = events_processed;
    if auditor.is_enabled() {
        // The billing side of the instance-seconds identity, exactly as
        // the provider computes it: micro-vCPU-seconds over the usage
        // records, clipped to the makespan.
        let mut billed: u128 = 0;
        let mut billed_spot: u128 = 0;
        for u in &run.usage_records {
            let micro = u.duration().as_micros() as u128 * u.itype.vcpus() as u128;
            billed += micro;
            if u.spot {
                billed_spot += micro;
            }
        }
        // The spot partition must reconcile separately: spot seconds
        // billed at on-demand rates (or vice versa) are a violation even
        // when the totals happen to agree.
        auditor.spot_billed(billed_spot);
        let finalized = profiler.time(ProfSpan::AuditHooks, || {
            auditor.finalize(run.makespan, billed, run.counters.work_lost_core_secs)
        });
        let summary = auditor.summary();
        trace_event!(
            tracer,
            end,
            TraceKind::AuditSummary {
                demanded_core_secs: summary.demanded_core_secs,
                credited_core_secs: summary.credited_core_secs,
                lost_core_secs: summary.lost_core_secs,
                jobs_admitted: summary.jobs_admitted,
                jobs_completed: summary.jobs_completed,
                violations: summary.violations,
            }
        );
        if let Err(violation) = finalized {
            trace_event!(
                tracer,
                end,
                TraceKind::AuditViolation {
                    message: violation.to_string(),
                }
            );
            return Err(violation);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use hcloud_sim::event::HeapEventQueue;
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    /// A small scenario that runs in well under a second.
    fn small_scenario(kind: ScenarioKind) -> Scenario {
        Scenario::generate(ScenarioConfig::scaled(kind, 0.08, 20), &RngFactory::new(7))
    }

    fn run(strategy: StrategyKind, kind: ScenarioKind) -> RunResult {
        let scenario = small_scenario(kind);
        let config = RunConfig::new(strategy);
        let factory = RngFactory::new(7);
        run_scenario(&scenario, &config, &RunCtx::new(&factory)).expect("no auditor attached")
    }

    #[test]
    fn all_jobs_complete_under_every_strategy() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let factory = RngFactory::new(7);
        for strategy in StrategyKind::ALL {
            let config = RunConfig::new(strategy);
            let result = run_scenario(&scenario, &config, &RunCtx::new(&factory)).unwrap();
            assert_eq!(
                result.outcomes.len(),
                scenario.jobs().len(),
                "{strategy}: some jobs never finished"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        let b = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        let perf_a: Vec<f64> = a.outcomes.iter().map(|o| o.normalized_perf).collect();
        let perf_b: Vec<f64> = b.outcomes.iter().map(|o| o.normalized_perf).collect();
        assert_eq!(perf_a, perf_b);
    }

    #[test]
    fn heap_and_wheel_queues_produce_identical_runs() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let factory = RngFactory::new(7);
        for strategy in [StrategyKind::HybridMixed, StrategyKind::OnDemandMixed] {
            let config = RunConfig::new(strategy);
            let wheel_tracer = Tracer::enabled();
            let heap_tracer = Tracer::enabled();
            let wheel = run_scenario_on::<EventQueue<Event>>(
                &scenario,
                &config,
                &RunCtx::new(&factory).with_tracer(&wheel_tracer),
            )
            .unwrap();
            let heap = run_scenario_on::<HeapEventQueue<Event>>(
                &scenario,
                &config,
                &RunCtx::new(&factory).with_tracer(&heap_tracer),
            )
            .unwrap();
            assert_eq!(wheel, heap, "{strategy}: results diverge across queues");
            // Compare traces by debug formatting: NaN fields (e.g. q90
            // under strategies that never consult the quality monitor)
            // are bitwise identical but `NaN != NaN` under PartialEq.
            let wheel_trace = wheel_tracer.take();
            let heap_trace = heap_tracer.take();
            assert_eq!(
                wheel_trace.len(),
                heap_trace.len(),
                "{strategy}: trace lengths diverge across queues"
            );
            for (a, b) in wheel_trace.iter().zip(&heap_trace) {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{strategy}: traces diverge across queues"
                );
            }
        }
    }

    #[test]
    fn sr_uses_no_on_demand() {
        let r = run(StrategyKind::StaticReserved, ScenarioKind::Static);
        assert_eq!(r.counters.od_acquired, 0);
        assert!(r.usage_records.iter().all(|u| u.reserved));
        assert!(r.outcomes.iter().all(|o| o.on_reserved));
    }

    #[test]
    fn on_demand_strategies_use_no_reserved() {
        for s in [StrategyKind::OnDemandFull, StrategyKind::OnDemandMixed] {
            let r = run(s, ScenarioKind::Static);
            assert_eq!(r.reserved_cores, 0, "{s}");
            assert!(r.counters.od_acquired > 0, "{s}");
            assert!(r.outcomes.iter().all(|o| !o.on_reserved), "{s}");
        }
    }

    #[test]
    fn odm_uses_smaller_instances_than_odf() {
        let f = run(StrategyKind::OnDemandFull, ScenarioKind::Static);
        let m = run(StrategyKind::OnDemandMixed, ScenarioKind::Static);
        let mean_vcpus = |r: &RunResult| {
            let od: Vec<u32> = r
                .usage_records
                .iter()
                .filter(|u| !u.reserved)
                .map(|u| u.itype.vcpus())
                .collect();
            od.iter().sum::<u32>() as f64 / od.len() as f64
        };
        assert!(mean_vcpus(&m) < mean_vcpus(&f));
    }

    #[test]
    fn hybrids_use_both_kinds() {
        let r = run(StrategyKind::HybridMixed, ScenarioKind::HighVariability);
        assert!(r.reserved_cores > 0);
        assert!(r.counters.od_acquired > 0);
        let on_res = r.outcomes.iter().filter(|o| o.on_reserved).count();
        assert!(on_res > 0 && on_res < r.outcomes.len());
    }

    #[test]
    fn sr_outperforms_odm() {
        let sr = run(StrategyKind::StaticReserved, ScenarioKind::HighVariability);
        let odm = run(StrategyKind::OnDemandMixed, ScenarioKind::HighVariability);
        assert!(
            sr.mean_normalized_perf() > odm.mean_normalized_perf(),
            "SR {} should beat OdM {}",
            sr.mean_normalized_perf(),
            odm.mean_normalized_perf()
        );
    }

    #[test]
    fn profiling_info_helps_hybrids() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let factory = RngFactory::new(7);
        let with = run_scenario(
            &scenario,
            &RunConfig::new(StrategyKind::HybridMixed),
            &RunCtx::new(&factory),
        )
        .unwrap();
        let without = run_scenario(
            &scenario,
            &RunConfig::new(StrategyKind::HybridMixed).without_profiling(),
            &RunCtx::new(&factory),
        )
        .unwrap();
        assert!(
            with.mean_normalized_perf() > without.mean_normalized_perf(),
            "with {} vs without {}",
            with.mean_normalized_perf(),
            without.mean_normalized_perf()
        );
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let factory = RngFactory::new(7);
        let plain = run_scenario(&scenario, &config, &RunCtx::new(&factory)).unwrap();
        let tracer = Tracer::enabled();
        let traced = run_scenario(
            &scenario,
            &config,
            &RunCtx::new(&factory).with_tracer(&tracer),
        )
        .unwrap();
        assert_eq!(plain, traced, "tracer must not change simulation outcomes");
        let events = tracer.take();
        assert!(!events.is_empty(), "enabled tracer records the run");
        assert!(
            matches!(
                events.last().expect("tracer recorded events").kind,
                TraceKind::RunEnd { .. }
            ),
            "run ends with a run-end event"
        );
        let mut last = hcloud_sim::SimTime::ZERO;
        for ev in &events {
            assert!(ev.at >= last, "trace is sim-time ordered");
            last = ev.at;
        }
    }

    #[test]
    fn strict_audit_passes_on_clean_runs() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let factory = RngFactory::new(7);
        for strategy in StrategyKind::ALL {
            let config = RunConfig::new(strategy);
            let auditor = Auditor::new(hcloud_audit::AuditMode::Strict);
            let result = run_scenario(
                &scenario,
                &config,
                &RunCtx::new(&factory).with_auditor(&auditor),
            );
            let result = result.unwrap_or_else(|v| panic!("{strategy}: {v}"));
            assert_eq!(result.outcomes.len(), scenario.jobs().len());
            let summary = auditor.summary();
            assert_eq!(summary.violations, 0, "{strategy}");
            assert_eq!(summary.jobs_admitted, scenario.jobs().len() as u64);
            assert_eq!(summary.jobs_completed, summary.jobs_admitted);
        }
    }

    #[test]
    fn auditing_does_not_perturb_results() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let factory = RngFactory::new(7);
        let plain = run_scenario(&scenario, &config, &RunCtx::new(&factory)).unwrap();
        let auditor = Auditor::new(hcloud_audit::AuditMode::Strict);
        let audited = run_scenario(
            &scenario,
            &config,
            &RunCtx::new(&factory).with_auditor(&auditor),
        )
        .expect("clean run");
        assert_eq!(
            plain, audited,
            "auditor must not change simulation outcomes"
        );
    }

    #[test]
    fn profiling_does_not_perturb_results() {
        let scenario = small_scenario(ScenarioKind::HighVariability);
        let config = RunConfig::new(StrategyKind::HybridMixed);
        let factory = RngFactory::new(7);
        let plain = run_scenario(&scenario, &config, &RunCtx::new(&factory)).unwrap();
        let profiler = Profiler::enabled();
        let profiled = run_scenario(
            &scenario,
            &config,
            &RunCtx::new(&factory).with_profiler(&profiler),
        )
        .unwrap();
        assert_eq!(
            plain, profiled,
            "profiler must not change simulation outcomes"
        );
        let snap = profiler.snapshot();
        use hcloud_telemetry::ProfSpan;
        assert!(snap.get(ProfSpan::EventPush).ops > 0);
        assert!(snap.get(ProfSpan::EventPop).ops > 0);
        assert!(snap.get(ProfSpan::FindPlacement).ops > 0);
        assert!(snap.get(ProfSpan::MonitorQuantiles).ops > 0);
        // Audit hooks still tick (one disabled step_check per event).
        assert!(snap.get(ProfSpan::AuditHooks).ops > 0);
        // Ops counts are deterministic: a second profiled run agrees.
        let profiler2 = Profiler::enabled();
        let again = run_scenario(
            &scenario,
            &config,
            &RunCtx::new(&factory).with_profiler(&profiler2),
        )
        .unwrap();
        assert_eq!(plain, again);
        for span in ProfSpan::ALL {
            assert_eq!(
                snap.get(span).ops,
                profiler2.snapshot().get(span).ops,
                "{}: op counts must be deterministic",
                span.name()
            );
        }
    }

    #[test]
    fn makespan_covers_all_outcomes() {
        let r = run(StrategyKind::OnDemandMixed, ScenarioKind::LowVariability);
        for o in &r.outcomes {
            assert!(o.finished <= r.makespan);
            assert!(o.started >= o.arrival);
            assert!((0.0..=1.0).contains(&o.normalized_perf));
        }
    }

    #[test]
    fn reserved_busy_never_exceeds_capacity() {
        let r = run(StrategyKind::StaticReserved, ScenarioKind::Static);
        for &(_, v) in r.reserved_busy.points() {
            assert!(v >= -1e-9, "negative busy cores {v}");
            assert!(
                v <= r.reserved_cores as f64 + 1e-9,
                "busy {v} exceeds capacity {}",
                r.reserved_cores
            );
        }
    }
}
