//! Run outputs and the aggregations behind the paper's figures.

use hcloud_cloud::UsageRecord;
use hcloud_pricing::{run_cost, CostBreakdown, PricingModel, Rates};
use hcloud_sim::series::StepSeries;
use hcloud_sim::stats::{percentile, Boxplot};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_tenancy::{jain, TenantStat};
use hcloud_workloads::{AppClass, JobId};

use crate::strategy::StrategyRef;

/// Per-job outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Its application class.
    pub class: AppClass,
    /// Submission time.
    pub arrival: SimTime,
    /// When it began executing.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Whether it ran on reserved resources.
    pub on_reserved: bool,
    /// Cores allocated to it.
    pub cores: u32,
    /// Batch jobs: completion time (arrival → finish).
    pub completion: Option<SimDuration>,
    /// Latency-critical jobs: lifetime-weighted mean p99 latency (µs).
    pub p99_latency_us: Option<f64>,
    /// Latency-critical jobs: the isolation baseline p99 (µs).
    pub isolation_p99_us: Option<f64>,
    /// Performance normalized to isolated execution, in `(0, 1]`.
    pub normalized_perf: f64,
    /// Time spent queued for reserved capacity.
    pub queue_delay: SimDuration,
    /// Time spent waiting for instance spin-up.
    pub spinup_delay: SimDuration,
    /// Whether the QoS monitor rescheduled the job.
    pub rescheduled: bool,
}

impl JobOutcome {
    /// Batch jobs report completion time; LC jobs report latency.
    pub fn is_latency_critical(&self) -> bool {
        self.p99_latency_us.is_some()
    }
}

/// Event counters for Section 5.2's overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunCounters {
    /// Jobs that paid the profiling run (first of their class).
    pub profiled: usize,
    /// Classification invocations.
    pub classified: usize,
    /// QoS-triggered reschedules.
    pub reschedules: usize,
    /// On-demand instances acquired.
    pub od_acquired: usize,
    /// On-demand instances released immediately after use because their
    /// delivered quality was poor.
    pub od_released_immediately: usize,
    /// Jobs that waited in the reserved queue.
    pub queued_jobs: usize,
    /// Spot instances acquired (Section 5.5 extension).
    pub spot_acquired: usize,
    /// Jobs evacuated because the spot market outbid their instance.
    pub spot_terminations: usize,
    /// Cross-cluster dataset transfers (data-locality extension).
    pub data_transfers: usize,
    /// Total gigabytes moved across the inter-cluster link.
    pub data_transferred_gb: f64,
    /// Events processed by the discrete-event loop — the experiment
    /// engine's per-run work telemetry.
    pub events_processed: usize,
    /// Spin-up attempts abandoned after exceeding the hard timeout
    /// (fault injection).
    pub spinup_timeouts: usize,
    /// Transient out-of-capacity errors on acquisition (fault injection).
    pub capacity_errors: usize,
    /// Acquisition attempts retried after an injected failure.
    pub acquire_retries: usize,
    /// Acquisitions that fell back to the standard family after repeated
    /// failures on an optimized family.
    pub family_fallbacks: usize,
    /// Spot terminations caused by an injected preemption storm (as
    /// opposed to the regular price path).
    pub storm_preemptions: usize,
    /// Acquired instances carrying an injected performance fault.
    pub degraded_instances: usize,
    /// Monitor ticks skipped because the QoS signal was dropped.
    pub monitor_dropout_ticks: usize,
    /// Times the dynamic policy degraded to the static soft-limit rule
    /// because the monitor signal dropped out.
    pub policy_fallbacks: usize,
    /// Batch work (core-seconds) lost to preemptions: progress since the
    /// last checkpoint tick that had to be redone.
    pub work_lost_core_secs: f64,
    /// Placement queries answered straight from a maintained secondary
    /// index (on-demand pool hits and idle-retention reuse) instead of a
    /// scan over every instance ever acquired.
    pub placement_fastpath: usize,
    /// Incremental maintenance operations on the placement indices
    /// (entries added or dropped as instances change state) — the cost
    /// side of the fast path.
    pub index_rebuilds: usize,
    /// Jobs held at the tenancy gate (multi-tenant runs only).
    pub tenant_deferred_jobs: usize,
    /// Jobs the DRR drain released from tenant queues into the pool.
    pub tenant_drained_jobs: usize,
    /// Cross-queue preemptions executed for starved guaranteed queues.
    pub tenant_preemptions: usize,
    /// Admissions above a tenant's guarantee (elastic borrowing).
    pub tenant_borrowed_admissions: usize,
}

/// Why a job was placed where it was — the dynamic policy's audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementReason {
    /// Reserved pool below the soft limit: everything goes reserved.
    BelowSoftLimit,
    /// The job's quality requirement exceeded the on-demand type's Q90.
    QualityNeedsReserved,
    /// The on-demand type's Q90 satisfied the job.
    OnDemandGoodEnough,
    /// Above the hard limit with a short estimated wait: queued.
    QueuedAtHardLimit,
    /// Above the hard limit with a long wait: escaped to a large
    /// on-demand instance.
    EscapedToLargeOnDemand,
    /// A non-dynamic policy or strategy fixed the side.
    FixedByStrategy,
    /// Rode the spot market (extension).
    Spot,
    /// Data-aware placement pulled the job to its dataset's side.
    DataLocality,
}

impl std::fmt::Display for PlacementReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlacementReason::BelowSoftLimit => "below-soft-limit",
            PlacementReason::QualityNeedsReserved => "quality-needs-reserved",
            PlacementReason::OnDemandGoodEnough => "on-demand-good-enough",
            PlacementReason::QueuedAtHardLimit => "queued-at-hard-limit",
            PlacementReason::EscapedToLargeOnDemand => "escaped-to-large-od",
            PlacementReason::FixedByStrategy => "fixed-by-strategy",
            PlacementReason::Spot => "spot",
            PlacementReason::DataLocality => "data-locality",
        };
        f.write_str(s)
    }
}

/// One recorded placement decision (`RunConfig::record_decisions`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementDecision {
    /// The job.
    pub job: JobId,
    /// When the decision was taken.
    pub at: SimTime,
    /// The estimated quality requirement the decision saw.
    pub estimated_quality: f64,
    /// Reserved utilization at decision time.
    pub reserved_utilization: f64,
    /// Why the job went where it went.
    pub reason: PlacementReason,
}

/// One queueing-time estimate vs its measured outcome (Figure 9 right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitSample {
    /// Requested core size.
    pub size: u32,
    /// The estimator's prediction at enqueue time (if it was warm).
    pub estimated: Option<SimDuration>,
    /// The measured wait.
    pub actual: SimDuration,
}

/// Per-instance utilization sample (Figures 19–20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Index of the instance in acquisition order.
    pub instance_index: usize,
    /// Whether it is reserved.
    pub reserved: bool,
    /// Sample time.
    pub time: SimTime,
    /// Busy-core fraction in `[0, 1]`.
    pub utilization: f64,
}

/// Everything a scenario run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The strategy that ran.
    pub strategy: StrategyRef,
    /// Per-job outcomes, in arrival order.
    pub outcomes: Vec<JobOutcome>,
    /// Billing records.
    pub usage_records: Vec<UsageRecord>,
    /// When the last job finished.
    pub makespan: SimTime,
    /// Reserved cores provisioned.
    pub reserved_cores: u32,
    /// Allocated on-demand cores over time.
    pub od_allocated: StepSeries,
    /// Cores busy on the reserved pool over time.
    pub reserved_busy: StepSeries,
    /// The dynamic policy's soft-limit trace (Figure 9 left).
    pub soft_limit_trace: Vec<(SimTime, f64)>,
    /// Queue-wait estimates vs measurements (Figure 9 right).
    pub wait_samples: Vec<WaitSample>,
    /// Optional per-instance utilization samples (Figures 19–20).
    pub utilization_samples: Vec<UtilizationSample>,
    /// Overhead counters (Section 5.2).
    pub counters: RunCounters,
    /// Placement audit trail (empty unless `RunConfig::record_decisions`).
    pub decisions: Vec<PlacementDecision>,
    /// Per-tenant fair-share statistics, ascending by tenant id (empty
    /// unless the scenario carries a tenancy plan).
    pub tenant_stats: Vec<TenantStat>,
}

impl RunResult {
    /// Normalized-performance values, optionally filtered to jobs on
    /// reserved (`Some(true)`) or on-demand (`Some(false)`) resources.
    pub fn normalized_perf(&self, on_reserved: Option<bool>) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| on_reserved.is_none_or(|r| o.on_reserved == r))
            .map(|o| o.normalized_perf)
            .collect()
    }

    /// The p95 of normalized performance — the metric of Figures 14–16.
    /// (The paper plots the 95th percentile of *degradation*, i.e. the
    /// value the slowest 5% of jobs still achieve; that is the 5th
    /// percentile of normalized performance.)
    pub fn p95_normalized_perf(&self) -> f64 {
        percentile(&self.normalized_perf(None), 5.0).unwrap_or(0.0)
    }

    /// Completion-time boxplot over batch jobs, in minutes (Figures 4a,
    /// 10a).
    pub fn batch_performance_boxplot(&self) -> Option<Boxplot> {
        let values: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.completion)
            .map(|d| d.as_mins_f64())
            .collect();
        Boxplot::from_values(&values)
    }

    /// p99-latency boxplot over latency-critical jobs, in microseconds
    /// (Figures 4b, 10b).
    pub fn lc_latency_boxplot(&self) -> Option<Boxplot> {
        let values: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.p99_latency_us)
            .collect();
        Boxplot::from_values(&values)
    }

    /// Mean normalized performance over all jobs.
    pub fn mean_normalized_perf(&self) -> f64 {
        let v = self.normalized_perf(None);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Mean *degradation factor* over all jobs: how many times slower
    /// than isolation the average job ran (completion-time ratio for
    /// batch, p99-latency ratio for latency-critical jobs). This is the
    /// aggregation behind the paper's "2.2x worse than SR" /
    /// "2.1x better than on-demand" headline numbers, where memcached's
    /// latency blowups weigh in at their full magnitude.
    pub fn mean_degradation(&self) -> f64 {
        let v = self.normalized_perf(None);
        if v.is_empty() {
            return 1.0;
        }
        v.iter().map(|p| 1.0 / p.max(1e-3)).sum::<f64>() / v.len() as f64
    }

    /// Time-weighted mean utilization of the reserved pool over `[0,
    /// makespan]` (the paper: "reserved resources are utilized at 80% on
    /// average in steady-state").
    pub fn mean_reserved_utilization(&self) -> Option<f64> {
        if self.reserved_cores == 0 {
            return None;
        }
        let busy = self
            .reserved_busy
            .time_weighted_mean(SimTime::ZERO, self.makespan)?;
        Some(busy / self.reserved_cores as f64)
    }

    /// Bills the run under `model` (Figures 5, 11, 12, 17).
    pub fn cost(&self, rates: &Rates, model: &PricingModel) -> CostBreakdown {
        run_cost(
            &self.usage_records,
            rates,
            model,
            self.makespan.saturating_since(SimTime::ZERO),
        )
    }

    /// Dollars saved by running spot work at the market multiplier
    /// instead of the full on-demand rate: Σ over spot usage records of
    /// `on_demand_hourly × hours × (1 − rate_multiplier)`. Zero when the
    /// spot market is off.
    pub fn spot_savings(&self, rates: &Rates) -> f64 {
        // `+ 0.0` normalizes the empty sum: f64's Sum identity is -0.0,
        // which would otherwise leak a "-0" into JSON artifacts.
        self.usage_records
            .iter()
            .filter(|u| u.spot)
            .map(|u| {
                rates.on_demand_hourly(u.itype)
                    * u.duration().as_hours_f64()
                    * (1.0 - u.rate_multiplier)
            })
            .sum::<f64>()
            + 0.0
    }

    /// Instance-hours that ran on spot capacity.
    pub fn spot_hours(&self) -> f64 {
        self.usage_records
            .iter()
            .filter(|u| u.spot)
            .map(|u| u.duration().as_hours_f64())
            .sum::<f64>()
            + 0.0
    }

    /// Fraction of jobs that were rescheduled (Section 5.2: 6.1% of OdM
    /// jobs on average).
    pub fn reschedule_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.rescheduled).count() as f64 / self.outcomes.len() as f64
    }

    /// Jain fairness index over each tenant's admitted-job count — 1.0
    /// for an untenanted run (no tenants) or a perfectly even spread.
    pub fn tenant_admission_fairness(&self) -> f64 {
        let admitted: Vec<f64> = self
            .tenant_stats
            .iter()
            .map(|s| s.admitted as f64)
            .collect();
        jain(&admitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, perf: f64, reserved: bool, lc: bool) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            class: if lc {
                AppClass::Memcached
            } else {
                AppClass::SparkBatch
            },
            arrival: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::from_secs(100),
            on_reserved: reserved,
            cores: 2,
            completion: (!lc).then(|| SimDuration::from_secs(100)),
            p99_latency_us: lc.then_some(800.0),
            isolation_p99_us: lc.then_some(600.0),
            normalized_perf: perf,
            queue_delay: SimDuration::ZERO,
            spinup_delay: SimDuration::ZERO,
            rescheduled: id.is_multiple_of(2),
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> RunResult {
        RunResult {
            strategy: crate::strategy::StrategyKind::HybridMixed.into(),
            outcomes,
            usage_records: vec![],
            makespan: SimTime::from_secs(7200),
            reserved_cores: 32,
            od_allocated: StepSeries::new(0.0),
            reserved_busy: {
                let mut s = StepSeries::new(0.0);
                s.record(SimTime::ZERO, 16.0);
                s
            },
            soft_limit_trace: vec![],
            wait_samples: vec![],
            utilization_samples: vec![],
            counters: RunCounters::default(),
            decisions: vec![],
            tenant_stats: vec![],
        }
    }

    #[test]
    fn filters_by_placement() {
        let r = result(vec![
            outcome(0, 0.9, true, false),
            outcome(1, 0.5, false, false),
        ]);
        assert_eq!(r.normalized_perf(Some(true)), vec![0.9]);
        assert_eq!(r.normalized_perf(Some(false)), vec![0.5]);
        assert_eq!(r.normalized_perf(None).len(), 2);
    }

    #[test]
    fn p95_normalized_is_low_tail() {
        let outcomes: Vec<JobOutcome> = (0..100)
            .map(|i| outcome(i, if i < 10 { 0.2 } else { 0.9 }, true, false))
            .collect();
        let r = result(outcomes);
        assert!(r.p95_normalized_perf() < 0.5);
    }

    #[test]
    fn boxplots_split_by_metric() {
        let r = result(vec![
            outcome(0, 0.9, true, false),
            outcome(1, 0.8, true, true),
        ]);
        assert_eq!(
            r.batch_performance_boxplot()
                .expect("one batch outcome present")
                .count,
            1
        );
        assert_eq!(
            r.lc_latency_boxplot()
                .expect("one LC outcome present")
                .count,
            1
        );
    }

    #[test]
    fn reserved_utilization_uses_busy_fraction() {
        let r = result(vec![]);
        let u = r
            .mean_reserved_utilization()
            .expect("fixture provisions reserved cores");
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn reschedule_rate_counts() {
        let r = result((0..10).map(|i| outcome(i, 0.9, true, false)).collect());
        assert!((r.reschedule_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_reserved_means_no_utilization() {
        let mut r = result(vec![]);
        r.reserved_cores = 0;
        assert_eq!(r.mean_reserved_utilization(), None);
    }

    #[test]
    fn tenant_fairness_defaults_to_one() {
        let mut r = result(vec![]);
        assert!((r.tenant_admission_fairness() - 1.0).abs() < 1e-12);
        let even = TenantStat {
            id: 0,
            admitted: 10,
            ..TenantStat::default()
        };
        let starved = TenantStat {
            id: 1,
            admitted: 0,
            ..TenantStat::default()
        };
        r.tenant_stats = vec![even, starved];
        assert!((r.tenant_admission_fairness() - 0.5).abs() < 1e-12);
    }
}
