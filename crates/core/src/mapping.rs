//! Application-mapping policies between reserved and on-demand resources
//! (Section 4.2, Figures 6–8).
//!
//! * **P1** — random (fair coin);
//! * **P2–P4** — quality thresholds: jobs needing `Q >` 80% / 50% / 20%
//!   go to reserved, the rest to on-demand;
//! * **P5–P7** — static reserved-utilization limits: below 50% / 70% /
//!   90% everything goes to reserved, above it everything to on-demand;
//! * **P8** — the dynamic policy: soft/hard adaptive limits, per-type
//!   `Q90` vs `QT` comparison, and queueing-time-aware overflow.

use hcloud_cloud::InstanceType;
use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

use crate::dynamic::DynamicLimits;
use crate::monitor::QualityMonitor;
use crate::queue_estimator::QueueEstimator;

/// A mapping policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingPolicy {
    /// P1: map to reserved or on-demand with a fair coin.
    Random,
    /// P2–P4: jobs needing quality above the threshold go to reserved.
    QualityThreshold(f64),
    /// P5–P7: below the reserved-utilization limit everything goes to
    /// reserved.
    UtilizationLimit(f64),
    /// P8: the dynamic policy of Figure 8.
    Dynamic,
}

impl MappingPolicy {
    /// The eight policies of Figures 6–7, with their paper labels.
    pub fn paper_set() -> [(&'static str, MappingPolicy); 8] {
        [
            ("P1", MappingPolicy::Random),
            ("P2", MappingPolicy::QualityThreshold(0.8)),
            ("P3", MappingPolicy::QualityThreshold(0.5)),
            ("P4", MappingPolicy::QualityThreshold(0.2)),
            ("P5", MappingPolicy::UtilizationLimit(0.5)),
            ("P6", MappingPolicy::UtilizationLimit(0.7)),
            ("P7", MappingPolicy::UtilizationLimit(0.9)),
            ("P8", MappingPolicy::Dynamic),
        ]
    }
}

/// Everything a mapping decision may consult.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// Current reserved-pool utilization in `[0, 1]`.
    pub reserved_utilization: f64,
    /// The job's target quality `QT` (from classification, or 0 when
    /// profiling info is unavailable).
    pub job_quality: f64,
    /// The on-demand instance type the job would receive.
    pub od_itype: InstanceType,
    /// Cores the job needs (for queue estimation).
    pub job_cores: u32,
    /// Jobs currently queued for reserved capacity.
    pub queue_len: usize,
    /// Expected spin-up overhead of a large (16-vCPU) on-demand instance.
    pub expected_spinup_large: SimDuration,
    /// Per-type delivered-quality monitor.
    pub monitor: &'a QualityMonitor,
    /// The adaptive limits (only consulted by [`MappingPolicy::Dynamic`]).
    pub limits: &'a DynamicLimits,
    /// The queueing-time estimator.
    pub queue_estimator: &'a QueueEstimator,
    /// Decision time — lets the queue estimator credit the part of the
    /// current release cycle that has already elapsed.
    pub now: SimTime,
}

/// Where the policy sends the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Schedule on the reserved pool (queueing there if it is full).
    Reserved,
    /// Schedule on the strategy's usual on-demand instance type.
    OnDemand,
    /// Schedule on a *large* (16-vCPU) on-demand instance even under HM —
    /// the hard-limit escape hatch for sensitive jobs whose queueing time
    /// would exceed the spin-up overhead.
    OnDemandLarge,
    /// Queue locally until reserved capacity frees up.
    Queue,
}

impl MappingPolicy {
    /// Decides where to place a job.
    pub fn decide<R: Rng + ?Sized>(&self, ctx: &MappingContext<'_>, rng: &mut R) -> Placement {
        match *self {
            MappingPolicy::Random => {
                if rng.gen::<bool>() {
                    Placement::Reserved
                } else {
                    Placement::OnDemand
                }
            }
            MappingPolicy::QualityThreshold(threshold) => {
                if ctx.job_quality > threshold {
                    Placement::Reserved
                } else {
                    Placement::OnDemand
                }
            }
            MappingPolicy::UtilizationLimit(limit) => {
                if ctx.reserved_utilization < limit {
                    Placement::Reserved
                } else {
                    Placement::OnDemand
                }
            }
            MappingPolicy::Dynamic => Self::decide_dynamic(ctx),
        }
    }

    /// The Figure 8 decision procedure.
    fn decide_dynamic(ctx: &MappingContext<'_>) -> Placement {
        let util = ctx.reserved_utilization;
        let soft = ctx.limits.soft();
        let hard = ctx.limits.hard();
        if util < soft {
            // Below the soft limit: sensitive and insensitive jobs alike
            // use the already-paid-for reserved resources.
            return Placement::Reserved;
        }
        // The quality the on-demand instance type guarantees 90% of the
        // time, vs the quality the job needs.
        let od_good_enough = ctx.monitor.q90(ctx.od_itype) >= ctx.job_quality;
        if util < hard {
            if od_good_enough {
                Placement::OnDemand
            } else {
                Placement::Reserved
            }
        } else if od_good_enough {
            Placement::OnDemand
        } else {
            // Saturated reserved pool and a sensitive job: queue, unless
            // the wait would exceed spinning up a large on-demand
            // instance (which is insensitive-safe).
            let wait = ctx
                .queue_estimator
                .estimate_wait(ctx.job_cores, ctx.queue_len, ctx.now);
            match wait {
                Some(w) if w > ctx.expected_spinup_large => Placement::OnDemandLarge,
                Some(_) => Placement::Queue,
                // Cold estimator: queue briefly while the queue is short,
                // escape to a large instance once it builds up.
                None if ctx.queue_len < 10 => Placement::Queue,
                None => Placement::OnDemandLarge,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::rng::SimRng;
    use hcloud_sim::SimTime;

    struct Fixture {
        monitor: QualityMonitor,
        limits: DynamicLimits,
        estimator: QueueEstimator,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                monitor: QualityMonitor::default(),
                limits: DynamicLimits::default(),
                estimator: QueueEstimator::default(),
            }
        }

        fn ctx(&self, util: f64, quality: f64) -> MappingContext<'_> {
            MappingContext {
                reserved_utilization: util,
                job_quality: quality,
                od_itype: InstanceType::standard(2),
                job_cores: 2,
                queue_len: 0,
                expected_spinup_large: SimDuration::from_secs(18),
                monitor: &self.monitor,
                limits: &self.limits,
                queue_estimator: &self.estimator,
                now: SimTime::ZERO,
            }
        }
    }

    #[test]
    fn random_policy_is_roughly_fair() {
        let f = Fixture::new();
        let mut rng = SimRng::from_seed_u64(3);
        let reserved = (0..1000)
            .filter(|_| {
                MappingPolicy::Random.decide(&f.ctx(0.5, 0.5), &mut rng) == Placement::Reserved
            })
            .count();
        assert!((400..600).contains(&reserved), "reserved picks {reserved}");
    }

    #[test]
    fn quality_threshold_splits_on_q() {
        let f = Fixture::new();
        let mut rng = SimRng::from_seed_u64(1);
        let p2 = MappingPolicy::QualityThreshold(0.8);
        assert_eq!(p2.decide(&f.ctx(0.2, 0.9), &mut rng), Placement::Reserved);
        assert_eq!(p2.decide(&f.ctx(0.2, 0.5), &mut rng), Placement::OnDemand);
    }

    #[test]
    fn utilization_limit_splits_on_load() {
        let f = Fixture::new();
        let mut rng = SimRng::from_seed_u64(1);
        let p6 = MappingPolicy::UtilizationLimit(0.7);
        assert_eq!(p6.decide(&f.ctx(0.5, 0.9), &mut rng), Placement::Reserved);
        assert_eq!(p6.decide(&f.ctx(0.75, 0.9), &mut rng), Placement::OnDemand);
    }

    #[test]
    fn dynamic_below_soft_always_reserved() {
        let f = Fixture::new();
        let mut rng = SimRng::from_seed_u64(1);
        // Even a fully tolerant job goes to reserved below the soft limit.
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.3, 0.0), &mut rng),
            Placement::Reserved
        );
    }

    #[test]
    fn dynamic_mid_band_separates_by_q90() {
        let mut f = Fixture::new();
        // Teach the monitor that st2 delivers ~0.85.
        for _ in 0..50 {
            f.monitor.record(InstanceType::standard(2), 0.85);
        }
        let mut rng = SimRng::from_seed_u64(1);
        // Tolerant job (QT 0.5 < 0.85): on-demand.
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.7, 0.5), &mut rng),
            Placement::OnDemand
        );
        // Sensitive job (QT 0.95 > 0.85): reserved.
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.7, 0.95), &mut rng),
            Placement::Reserved
        );
    }

    #[test]
    fn dynamic_above_hard_queues_sensitive_jobs_when_wait_is_short() {
        let mut f = Fixture::new();
        for _ in 0..50 {
            f.monitor.record(InstanceType::standard(2), 0.80);
        }
        // Frequent releases → short estimated waits.
        for k in 0..50u64 {
            f.estimator.record_release(4, SimTime::from_secs(k));
        }
        let mut rng = SimRng::from_seed_u64(1);
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.9, 0.95), &mut rng),
            Placement::Queue
        );
    }

    #[test]
    fn dynamic_above_hard_escapes_to_large_od_when_wait_is_long() {
        let mut f = Fixture::new();
        for _ in 0..50 {
            f.monitor.record(InstanceType::standard(2), 0.80);
        }
        // Releases every 100 s → estimated wait far exceeds spin-up.
        for k in 0..50u64 {
            f.estimator.record_release(4, SimTime::from_secs(k * 100));
        }
        let mut rng = SimRng::from_seed_u64(1);
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.9, 0.95), &mut rng),
            Placement::OnDemandLarge
        );
    }

    #[test]
    fn dynamic_above_hard_insensitive_jobs_still_use_od() {
        let mut f = Fixture::new();
        for _ in 0..50 {
            f.monitor.record(InstanceType::standard(2), 0.80);
        }
        let mut rng = SimRng::from_seed_u64(1);
        assert_eq!(
            MappingPolicy::Dynamic.decide(&f.ctx(0.95, 0.3), &mut rng),
            Placement::OnDemand
        );
    }

    #[test]
    fn paper_set_has_eight_policies() {
        let set = MappingPolicy::paper_set();
        assert_eq!(set.len(), 8);
        assert_eq!(set[0].0, "P1");
        assert_eq!(set[7].1, MappingPolicy::Dynamic);
    }
}
