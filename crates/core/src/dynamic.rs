//! The dynamic policy's adaptive utilization limits (Figure 8 / 9-left).
//!
//! The dynamic policy keeps two utilization limits on the reserved pool:
//!
//! * a **soft limit** (experimentally 60–65%) below which every incoming
//!   job is placed on reserved resources;
//! * a **hard limit** (~80%) above which jobs that need reserved quality
//!   are queued (or sent to large on-demand instances when the estimated
//!   queueing time exceeds the spin-up overhead).
//!
//! The soft limit is adjusted by a feedback loop with linear transfer
//! functions on the queue length: a sharply growing queue means the
//! reserved pool should become *more* selective (lower soft limit); a
//! queue empty for a long stretch means it can accept more (higher soft
//! limit). Figure 9 (left) shows exactly this trace.

use hcloud_sim::{SimDuration, SimTime};

/// Adaptive soft/hard utilization limits.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicLimits {
    soft: f64,
    hard: f64,
    min_soft: f64,
    max_soft: f64,
    /// Gain applied to queue growth (fraction of soft limit per queued job
    /// per adjustment).
    decrease_gain: f64,
    /// Linear recovery per second of empty queue.
    increase_rate: f64,
    last_queue_len: usize,
    last_adjust: SimTime,
    empty_since: Option<SimTime>,
    /// Trace of `(time, soft limit)` for Figure 9 (left).
    trace: Vec<(SimTime, f64)>,
}

impl Default for DynamicLimits {
    /// The paper's experimental defaults: soft limit starting at 65%
    /// (the 60–65% band), hard limit 85% (Figure 8 annotates the hard
    /// limit at ~80%, with saturation above).
    fn default() -> Self {
        DynamicLimits::new(0.65, 0.85)
    }
}

impl DynamicLimits {
    /// Creates limits with the given starting soft and fixed hard limit.
    ///
    /// # Panics
    /// Panics unless `0 < soft < hard <= 1`.
    pub fn new(soft: f64, hard: f64) -> Self {
        assert!(
            0.0 < soft && soft < hard && hard <= 1.0,
            "invalid limits soft={soft} hard={hard}"
        );
        DynamicLimits {
            soft,
            hard,
            min_soft: 0.30,
            max_soft: hard - 0.02,
            decrease_gain: 0.01,
            increase_rate: 0.001,
            last_queue_len: 0,
            last_adjust: SimTime::ZERO,
            empty_since: Some(SimTime::ZERO),
            trace: vec![(SimTime::ZERO, soft)],
        }
    }

    /// The current soft limit.
    pub fn soft(&self) -> f64 {
        self.soft
    }

    /// The hard limit.
    pub fn hard(&self) -> f64 {
        self.hard
    }

    /// Feeds the current queue length into the feedback loop. Call
    /// periodically (every monitor tick).
    pub fn observe_queue(&mut self, queue_len: usize, now: SimTime) {
        let dt = now.saturating_since(self.last_adjust);
        self.last_adjust = now;
        if queue_len > self.last_queue_len {
            // Queue grew: become more selective, proportionally to the
            // growth (linear transfer function).
            let growth = (queue_len - self.last_queue_len) as f64;
            self.soft = (self.soft - self.decrease_gain * growth).max(self.min_soft);
            self.empty_since = None;
        } else if queue_len == 0 {
            // Queue empty: recover linearly with time.
            let empty_for = match self.empty_since {
                Some(t) => now.saturating_since(t),
                None => {
                    self.empty_since = Some(now);
                    SimDuration::ZERO
                }
            };
            if empty_for >= SimDuration::from_secs(30) {
                self.soft = (self.soft + self.increase_rate * dt.as_secs_f64()).min(self.max_soft);
            }
        } else {
            self.empty_since = None;
        }
        self.last_queue_len = queue_len;
        if self
            .trace
            .last()
            .is_none_or(|&(_, v)| (v - self.soft).abs() > 1e-9)
        {
            self.trace.push((now, self.soft));
        }
    }

    /// Sets the soft limit directly (strategy-driven adaptation, e.g.
    /// the blocking-threshold controller), clamped to the same
    /// `[min, max]` band the feedback loop honours and recorded in the
    /// trace like [`DynamicLimits::observe_queue`] adjustments.
    pub fn set_soft(&mut self, soft: f64, now: SimTime) {
        self.soft = soft.clamp(self.min_soft, self.max_soft);
        self.last_adjust = now;
        if self
            .trace
            .last()
            .is_none_or(|&(_, v)| (v - self.soft).abs() > 1e-9)
        {
            self.trace.push((now, self.soft));
        }
    }

    /// The `(time, soft limit)` trace (Figure 9 left).
    pub fn trace(&self) -> &[(SimTime, f64)] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_the_papers_band() {
        let d = DynamicLimits::default();
        assert!((0.60..=0.65).contains(&d.soft()));
        assert!((d.hard() - 0.85).abs() < 1e-9);
    }

    #[test]
    fn queue_growth_lowers_soft_limit() {
        let mut d = DynamicLimits::default();
        let before = d.soft();
        d.observe_queue(0, SimTime::from_secs(10));
        d.observe_queue(25, SimTime::from_secs(20));
        assert!(d.soft() < before, "soft should drop on queue growth");
    }

    #[test]
    fn sharp_growth_drops_more_than_mild_growth() {
        let mut mild = DynamicLimits::default();
        mild.observe_queue(2, SimTime::from_secs(10));
        let mut sharp = DynamicLimits::default();
        sharp.observe_queue(40, SimTime::from_secs(10));
        assert!(sharp.soft() < mild.soft());
    }

    #[test]
    fn sustained_empty_queue_recovers_limit() {
        let mut d = DynamicLimits::default();
        d.observe_queue(30, SimTime::from_secs(10));
        let depressed = d.soft();
        for k in 2..200u64 {
            d.observe_queue(0, SimTime::from_secs(10 * k));
        }
        assert!(
            d.soft() > depressed,
            "soft should recover when queue stays empty"
        );
    }

    #[test]
    fn soft_limit_stays_in_bounds() {
        let mut d = DynamicLimits::default();
        // Hammer with growth.
        for k in 1..200u64 {
            d.observe_queue((k * 10) as usize, SimTime::from_secs(k));
        }
        assert!(d.soft() >= 0.30 - 1e-9);
        // Then a very long idle stretch.
        for k in 200..4000u64 {
            d.observe_queue(0, SimTime::from_secs(k * 10));
        }
        assert!(d.soft() <= d.hard() - 0.02 + 1e-9);
    }

    #[test]
    fn trace_records_changes() {
        let mut d = DynamicLimits::default();
        d.observe_queue(10, SimTime::from_secs(5));
        d.observe_queue(20, SimTime::from_secs(6));
        assert!(d.trace().len() >= 3);
        let mut last_t = SimTime::ZERO;
        for &(t, v) in d.trace() {
            assert!(t >= last_t);
            assert!((0.0..=1.0).contains(&v));
            last_t = t;
        }
    }

    #[test]
    #[should_panic(expected = "invalid limits")]
    fn rejects_inverted_limits() {
        DynamicLimits::new(0.9, 0.8);
    }

    #[test]
    fn set_soft_clamps_and_traces() {
        let mut d = DynamicLimits::default();
        d.set_soft(0.05, SimTime::from_secs(10));
        assert!((d.soft() - 0.30).abs() < 1e-12, "clamped to min");
        d.set_soft(0.99, SimTime::from_secs(20));
        assert!(
            (d.soft() - (d.hard() - 0.02)).abs() < 1e-12,
            "clamped to max"
        );
        d.set_soft(0.5, SimTime::from_secs(30));
        assert!((d.soft() - 0.5).abs() < 1e-12);
        assert_eq!(d.trace().last(), Some(&(SimTime::from_secs(30), 0.5)));
        // A no-op set does not grow the trace.
        let len = d.trace().len();
        d.set_soft(0.5, SimTime::from_secs(40));
        assert_eq!(d.trace().len(), len);
    }
}
