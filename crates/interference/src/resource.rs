//! The shared resources jobs contend on, and dense per-resource vectors.
//!
//! The paper (following Quasar) examines **N = 10** shared resources. A
//! job's interference profile is a vector `C = [c_1 … c_10]`, `c_i ∈ [0,1]`,
//! where a large `c_i` means the job both puts a lot of pressure on
//! resource `i` and is sensitive to contention in it.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of shared resources examined (N in the paper).
pub const NUM_RESOURCES: usize = 10;

/// One of the ten shared server resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Core compute (SMT contention, scheduler pressure).
    Cpu,
    /// L1 instruction/data cache.
    CacheL1,
    /// Private L2 cache.
    CacheL2,
    /// Shared last-level cache.
    CacheLlc,
    /// Memory bandwidth.
    MemBandwidth,
    /// Memory capacity.
    MemCapacity,
    /// Disk bandwidth.
    DiskBandwidth,
    /// Disk capacity.
    DiskCapacity,
    /// Network bandwidth.
    NetBandwidth,
    /// Network latency (switch/NIC queueing).
    NetLatency,
}

impl Resource {
    /// All resources, in canonical index order.
    pub const ALL: [Resource; NUM_RESOURCES] = [
        Resource::Cpu,
        Resource::CacheL1,
        Resource::CacheL2,
        Resource::CacheLlc,
        Resource::MemBandwidth,
        Resource::MemCapacity,
        Resource::DiskBandwidth,
        Resource::DiskCapacity,
        Resource::NetBandwidth,
        Resource::NetLatency,
    ];

    /// The canonical index of this resource (0..10).
    pub fn index(self) -> usize {
        Resource::ALL
            .iter()
            .position(|&r| r == self)
            .expect("resource present in ALL")
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Resource::Cpu => "cpu",
            Resource::CacheL1 => "l1",
            Resource::CacheL2 => "l2",
            Resource::CacheLlc => "llc",
            Resource::MemBandwidth => "mem-bw",
            Resource::MemCapacity => "mem-cap",
            Resource::DiskBandwidth => "disk-bw",
            Resource::DiskCapacity => "disk-cap",
            Resource::NetBandwidth => "net-bw",
            Resource::NetLatency => "net-lat",
        };
        f.write_str(name)
    }
}

/// A dense vector with one entry per shared resource.
///
/// Entries are free-form `f64`s; pressure/sensitivity vectors keep them in
/// `[0, 1]` (see [`ResourceVector::clamped_unit`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector([f64; NUM_RESOURCES]);

impl ResourceVector {
    /// The all-zeros vector.
    pub const ZERO: ResourceVector = ResourceVector([0.0; NUM_RESOURCES]);

    /// Creates a vector from raw entries.
    pub const fn new(values: [f64; NUM_RESOURCES]) -> Self {
        ResourceVector(values)
    }

    /// Creates a vector whose entries all equal `v`.
    pub const fn uniform(v: f64) -> Self {
        ResourceVector([v; NUM_RESOURCES])
    }

    /// Creates a vector by evaluating `f` at every index.
    pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        ResourceVector(std::array::from_fn(f))
    }

    /// The raw entries, in canonical resource order.
    pub fn as_array(&self) -> &[f64; NUM_RESOURCES] {
        &self.0
    }

    /// The entry for `resource`.
    pub fn get(&self, resource: Resource) -> f64 {
        self.0[resource.index()]
    }

    /// Sets the entry for `resource`, returning `self` for chaining.
    pub fn with(mut self, resource: Resource, value: f64) -> Self {
        self.0[resource.index()] = value;
        self
    }

    /// Element-wise sum.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector::from_fn(|i| self.0[i] + other.0[i])
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector::from_fn(|i| self.0[i] - other.0[i])
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: f64) -> ResourceVector {
        ResourceVector::from_fn(|i| self.0[i] * k)
    }

    /// Element-wise product (used to weight pressure by sensitivity).
    pub fn hadamard(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector::from_fn(|i| self.0[i] * other.0[i])
    }

    /// Dot product.
    pub fn dot(&self, other: &ResourceVector) -> f64 {
        (0..NUM_RESOURCES).map(|i| self.0[i] * other.0[i]).sum()
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Arithmetic mean of entries.
    pub fn mean(&self) -> f64 {
        self.sum() / NUM_RESOURCES as f64
    }

    /// Largest entry.
    pub fn max(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Clamps every entry into `[0, 1]`.
    pub fn clamped_unit(&self) -> ResourceVector {
        ResourceVector::from_fn(|i| self.0[i].clamp(0.0, 1.0))
    }

    /// Entries sorted by decreasing magnitude — the `C'` rearrangement of
    /// Section 3.3, feeding the order-preserving Q encoding.
    pub fn sorted_desc(&self) -> [f64; NUM_RESOURCES] {
        let mut v = self.0;
        v.sort_by(|a, b| b.partial_cmp(a).expect("NaN in resource vector"));
        v
    }

    /// Whether all entries are finite and inside `[0, 1]`.
    pub fn is_unit_range(&self) -> bool {
        self.0
            .iter()
            .all(|v| v.is_finite() && (0.0..=1.0).contains(v))
    }

    /// Euclidean distance to `other` (used by classification accuracy
    /// metrics in the Quasar substrate).
    pub fn distance(&self, other: &ResourceVector) -> f64 {
        (0..NUM_RESOURCES)
            .map(|i| (self.0[i] - other.0[i]).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<Resource> for ResourceVector {
    type Output = f64;
    fn index(&self, r: Resource) -> &f64 {
        &self.0[r.index()]
    }
}

impl IndexMut<Resource> for ResourceVector {
    fn index_mut(&mut self, r: Resource) -> &mut f64 {
        &mut self.0[r.index()]
    }
}

impl From<[f64; NUM_RESOURCES]> for ResourceVector {
    fn from(values: [f64; NUM_RESOURCES]) -> Self {
        ResourceVector(values)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (r, v)) in Resource::ALL.iter().zip(self.0.iter()).enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}={v:.2}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_canonical_and_unique() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn indexing_by_resource() {
        let mut v = ResourceVector::ZERO;
        v[Resource::CacheLlc] = 0.8;
        assert_eq!(v.get(Resource::CacheLlc), 0.8);
        assert_eq!(v[Resource::Cpu], 0.0);
    }

    #[test]
    fn with_builds_chains() {
        let v = ResourceVector::ZERO
            .with(Resource::Cpu, 0.5)
            .with(Resource::NetBandwidth, 0.25);
        assert_eq!(v[Resource::Cpu], 0.5);
        assert_eq!(v[Resource::NetBandwidth], 0.25);
    }

    #[test]
    fn arithmetic_is_elementwise() {
        let a = ResourceVector::uniform(0.5);
        let b = ResourceVector::uniform(0.25);
        assert_eq!(a.add(&b), ResourceVector::uniform(0.75));
        assert_eq!(a.sub(&b), ResourceVector::uniform(0.25));
        assert_eq!(a.scale(2.0), ResourceVector::uniform(1.0));
        assert_eq!(a.hadamard(&b), ResourceVector::uniform(0.125));
        assert!((a.dot(&b) - 10.0 * 0.125).abs() < 1e-12);
    }

    #[test]
    fn aggregations() {
        let v = ResourceVector::from_fn(|i| i as f64);
        assert_eq!(v.sum(), 45.0);
        assert_eq!(v.mean(), 4.5);
        assert_eq!(v.max(), 9.0);
    }

    #[test]
    fn sorted_desc_sorts() {
        let v = ResourceVector::from_fn(|i| ((i * 7) % 10) as f64 / 10.0);
        let s = v.sorted_desc();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn clamp_and_range_check() {
        let v = ResourceVector::uniform(1.5);
        assert!(!v.is_unit_range());
        assert!(v.clamped_unit().is_unit_range());
        assert_eq!(v.clamped_unit(), ResourceVector::uniform(1.0));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = ResourceVector::ZERO;
        let b = ResourceVector::uniform(1.0);
        assert!((a.distance(&b) - (10.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }
}
