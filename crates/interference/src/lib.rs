//! # hcloud-interference — shared-resource interference model
//!
//! HCloud's provisioning decisions revolve around how much interference a
//! job generates in — and tolerates from — shared server resources. This
//! crate is the stand-in for the iBench/Quasar interference methodology the
//! paper relies on (its reference \[21\]):
//!
//! * [`resource`] — the N = 10 shared resources the paper examines and
//!   dense per-resource vectors ([`ResourceVector`]);
//! * [`quality`] — the **order-preserving encoding** of a job's sorted
//!   sensitivity vector into a single scalar resource quality requirement
//!   `Q ∈ [0, 1]` (Section 3.3 of the paper, reproduced exactly);
//! * [`slowdown`] — the colocation model: given the aggregate pressure on a
//!   server and a job's sensitivity, how much does the job slow down, and
//!   what *resource quality* does an instance deliver.
//!
//! ```
//! use hcloud_interference::{ResourceVector, quality::resource_quality};
//!
//! let cache_bound = ResourceVector::from_fn(|i| if i == 3 { 0.9 } else { 0.1 });
//! let tolerant = ResourceVector::uniform(0.05);
//! assert!(resource_quality(&cache_bound) > resource_quality(&tolerant));
//! ```

pub mod quality;
pub mod resource;
pub mod slowdown;

pub use quality::resource_quality;
pub use resource::{Resource, ResourceVector, NUM_RESOURCES};
pub use slowdown::SlowdownModel;
