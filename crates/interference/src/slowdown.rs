//! Colocation slowdown and delivered-instance-quality model.
//!
//! When a job shares a server with other load (co-scheduled jobs on
//! reserved instances, or *external* cloud tenants on small on-demand
//! instances), every shared resource the job is sensitive to contributes a
//! slowdown. [`SlowdownModel`] turns an aggregate **pressure vector** (the
//! sum of everyone else's per-resource demands, normalized so `1.0` =
//! server capacity) plus the job's **sensitivity vector** into a
//! multiplicative slowdown ≥ 1.
//!
//! The same model defines the **delivered resource quality** of an
//! instance — the `q ∈ (0, 1]` that HCloud monitors per instance type and
//! whose 90th percentile (`Q90`) the dynamic mapping policy compares
//! against a job's target quality `QT` (Section 4.2, Figure 8).

use crate::resource::{ResourceVector, NUM_RESOURCES};

/// The contention-to-slowdown model.
///
/// Per resource `i`, with aggregate foreign pressure `p_i` (capacity = 1):
///
/// ```text
/// penalty_i = slope · min(p_i, 1)  +  saturation_penalty · max(p_i − 1, 0)
/// slowdown  = 1 + Σ_i w_i · c_i · penalty_i
/// ```
///
/// The weights are **not uniform**: contention bites hardest in disk
/// bandwidth, memory bandwidth and the shared LLC (the resources iBench
/// shows colocated analytics hammer), and least in the private caches —
/// which is how a Hadoop job on a shared small instance can slow down
/// 1.5–2× (Figure 1) while memcached's service-time inflation stays
/// moderate until spikes saturate it (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownModel {
    weights: ResourceVector,
    contention_slope: f64,
    saturation_penalty: f64,
}

impl Default for SlowdownModel {
    /// Calibrated so that, at the paper's default ~25% external load, an
    /// analytics job (disk/memory-bandwidth-bound) slows ~1.4–1.6× and a
    /// fully sensitive probe ~2.3×, with steep extra penalties once a
    /// resource is oversubscribed.
    fn default() -> Self {
        // Canonical order: cpu, l1, l2, llc, mem-bw, mem-cap, disk-bw,
        // disk-cap, net-bw, net-lat.
        let weights =
            ResourceVector::new([0.10, 0.02, 0.03, 0.18, 0.19, 0.08, 0.18, 0.04, 0.08, 0.10]);
        SlowdownModel {
            weights,
            contention_slope: 3.0,
            saturation_penalty: 8.0,
        }
    }
}

impl SlowdownModel {
    /// Creates a model with explicit parameters.
    ///
    /// `weights` are normalized to sum to 1.
    ///
    /// # Panics
    /// Panics if any parameter is negative or `weights` sums to zero.
    pub fn new(weights: ResourceVector, contention_slope: f64, saturation_penalty: f64) -> Self {
        assert!(
            contention_slope >= 0.0 && saturation_penalty >= 0.0,
            "slowdown parameters must be non-negative"
        );
        let total = weights.sum();
        assert!(total > 0.0, "weights must not sum to zero");
        SlowdownModel {
            weights: weights.scale(1.0 / total),
            contention_slope,
            saturation_penalty,
        }
    }

    /// The per-resource importance weights (normalized).
    pub fn weights(&self) -> &ResourceVector {
        &self.weights
    }

    /// The multiplicative slowdown (≥ 1) a job with `sensitivity` suffers
    /// under aggregate foreign `pressure`.
    ///
    /// `sensitivity` entries are clamped into `[0, 1]`; `pressure` entries
    /// are clamped below at 0 but may exceed 1 (oversubscription).
    pub fn slowdown(&self, sensitivity: &ResourceVector, pressure: &ResourceVector) -> f64 {
        let c = sensitivity.clamped_unit();
        let mut acc = 0.0;
        let w = self.weights.as_array();
        let ca = c.as_array();
        let pa = pressure.as_array();
        for i in 0..NUM_RESOURCES {
            let p = pa[i].max(0.0);
            let below = p.min(1.0);
            let excess = (p - 1.0).max(0.0);
            let penalty = self.contention_slope * below + self.saturation_penalty * excess;
            acc += w[i] * ca[i] * penalty;
        }
        1.0 + acc
    }

    /// The resource quality `q ∈ (0, 1]` this instance delivers:
    /// `1 − 0.85 · (weighted foreign pressure)`, floored at 0.05.
    ///
    /// `q = 1` on an idle, dedicated server; `q` drops toward 0.15 as
    /// foreign pressure approaches saturation. The scale is chosen to be
    /// commensurate with the job-quality encoding `Q` of
    /// [`crate::quality`], so HCloud's `Q90 ≥ QT` comparisons are
    /// meaningful. HCloud monitors this value over time per instance type
    /// to build the `Q90` distributions the dynamic policy consults.
    pub fn delivered_quality(&self, pressure: &ResourceVector) -> f64 {
        let w = self.weights.as_array();
        let pa = pressure.as_array();
        let mut level = 0.0;
        for i in 0..NUM_RESOURCES {
            level += w[i] * pa[i].clamp(0.0, 1.0);
        }
        (1.0 - 0.85 * level).clamp(0.05, 1.0)
    }

    /// Convenience: quality delivered under spatially uniform pressure
    /// `level` on every resource (how the external-load generator expresses
    /// "the server is ~25% busy").
    pub fn quality_at_uniform_load(&self, level: f64) -> f64 {
        self.delivered_quality(&ResourceVector::uniform(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    #[test]
    fn no_pressure_means_no_slowdown() {
        let m = SlowdownModel::default();
        let c = ResourceVector::uniform(1.0);
        assert_eq!(m.slowdown(&c, &ResourceVector::ZERO), 1.0);
        assert_eq!(m.delivered_quality(&ResourceVector::ZERO), 1.0);
    }

    #[test]
    fn insensitive_jobs_are_immune() {
        let m = SlowdownModel::default();
        let pressure = ResourceVector::uniform(2.0);
        assert_eq!(m.slowdown(&ResourceVector::ZERO, &pressure), 1.0);
    }

    #[test]
    fn slowdown_monotone_in_pressure() {
        let m = SlowdownModel::default();
        let c = ResourceVector::uniform(0.8);
        let mut last = 1.0;
        for step in 1..=20 {
            let p = ResourceVector::uniform(step as f64 * 0.1);
            let s = m.slowdown(&c, &p);
            assert!(s >= last, "slowdown not monotone at step {step}");
            last = s;
        }
    }

    #[test]
    fn slowdown_monotone_in_sensitivity() {
        let m = SlowdownModel::default();
        let p = ResourceVector::uniform(0.5);
        let s_low = m.slowdown(&ResourceVector::uniform(0.2), &p);
        let s_high = m.slowdown(&ResourceVector::uniform(0.9), &p);
        assert!(s_high > s_low);
    }

    #[test]
    fn calibration_bands() {
        let m = SlowdownModel::default();
        // ~25% external load: decent quality.
        let q25 = m.quality_at_uniform_load(0.25);
        assert!((0.70..0.90).contains(&q25), "q at 25% load = {q25}");
        // Saturated: well below every latency-critical job's needs.
        let q100 = m.quality_at_uniform_load(1.0);
        assert!((0.05..0.30).contains(&q100), "q at 100% load = {q100}");
        // An analytics-shaped job (disk/mem-bandwidth heavy) slows
        // noticeably at the paper's default external load (Figure 1).
        let analytics =
            ResourceVector::new([0.45, 0.15, 0.20, 0.30, 0.65, 0.40, 0.75, 0.35, 0.30, 0.10]);
        let s = m.slowdown(&analytics, &ResourceVector::uniform(0.23));
        assert!((1.15..1.7).contains(&s), "analytics slowdown {s}");
    }

    #[test]
    fn oversubscription_penalized_steeply() {
        let m = SlowdownModel::default();
        let c = ResourceVector::uniform(1.0);
        let at_capacity = m.slowdown(&c, &ResourceVector::uniform(1.0));
        let oversubscribed = m.slowdown(&c, &ResourceVector::uniform(1.5));
        assert!(oversubscribed > at_capacity + 1.0);
    }

    #[test]
    fn only_sensitive_resources_matter() {
        let m = SlowdownModel::default();
        // Job only cares about LLC; pressure only on disk → immune.
        let c = ResourceVector::ZERO.with(Resource::CacheLlc, 1.0);
        let p = ResourceVector::ZERO.with(Resource::DiskBandwidth, 0.9);
        assert_eq!(m.slowdown(&c, &p), 1.0);
        // Pressure on LLC → hurt.
        let p2 = ResourceVector::ZERO.with(Resource::CacheLlc, 0.9);
        assert!(m.slowdown(&c, &p2) > 1.0);
    }

    #[test]
    fn weights_are_normalized() {
        let m = SlowdownModel::new(ResourceVector::uniform(3.0), 1.0, 1.0);
        assert!((m.weights().sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quality_in_unit_interval() {
        let m = SlowdownModel::default();
        for step in 0..40 {
            let q = m.quality_at_uniform_load(step as f64 * 0.1);
            assert!(q > 0.0 && q <= 1.0, "q={q} at load {}", step as f64 * 0.1);
        }
    }

    #[test]
    #[should_panic(expected = "weights must not sum to zero")]
    fn zero_weights_rejected() {
        SlowdownModel::new(ResourceVector::ZERO, 1.0, 1.0);
    }
}
