//! The order-preserving resource-quality encoding of Section 3.3.
//!
//! The paper encodes a job's sensitivity vector into a single scalar like
//! so: rearrange `C = [c_1 … c_N]` by decreasing magnitude into
//! `C' = [c_j, c_k, …, c_n]`, then
//!
//! ```text
//! Q = c_j · 10^(2(N−1)) + c_k · 10^(2(N−2)) + … + c_n
//! ```
//!
//! normalized to `[0, 1]`. Each coefficient occupies two decimal digits, so
//! the encoding is **lexicographic on the sorted vector**: a job whose
//! largest sensitivity exceeds another's always has a larger Q, with ties
//! broken by the second-largest, and so on. High Q ⇒ resource-demanding
//! job; low Q ⇒ tolerant job.
//!
//! To make the order preservation *exact* (rather than subject to f64
//! rounding at 10^18 magnitudes), we quantize each sorted coefficient to
//! two decimal digits and accumulate in `u128`, then normalize. This is
//! faithful to the paper's "two decimal digits per coefficient" construction
//! and gives us a property-testable invariant.

use crate::resource::{ResourceVector, NUM_RESOURCES};

/// Number of quantization levels per coefficient (two decimal digits).
const LEVELS: u128 = 100;

/// Encodes a sensitivity vector into the raw (unnormalized) base-100
/// integer of the paper's formula.
///
/// Coefficients are clamped into `[0, 1]` and quantized to `round(c·99)`,
/// i.e. two decimal digits.
pub fn encode_raw(c: &ResourceVector) -> u128 {
    let sorted = c.clamped_unit().sorted_desc();
    let mut acc: u128 = 0;
    for &coeff in sorted.iter() {
        let digit = (coeff * (LEVELS - 1) as f64).round() as u128;
        acc = acc * LEVELS + digit;
    }
    acc
}

/// The largest possible raw encoding (all coefficients = 1.0).
pub fn encode_raw_max() -> u128 {
    LEVELS.pow(NUM_RESOURCES as u32) - 1
}

/// The resource quality `Q ∈ [0, 1]` a job needs to satisfy its QoS
/// constraints (Section 3.3).
///
/// High `Q` denotes a resource-demanding job; low `Q` a job that can
/// tolerate some interference.
///
/// ```
/// use hcloud_interference::{ResourceVector, resource_quality};
///
/// let demanding = ResourceVector::uniform(0.9);
/// let tolerant = ResourceVector::uniform(0.1);
/// assert!(resource_quality(&demanding) > resource_quality(&tolerant));
/// assert!(resource_quality(&demanding) <= 1.0);
/// assert!(resource_quality(&tolerant) >= 0.0);
/// ```
pub fn resource_quality(c: &ResourceVector) -> f64 {
    encode_raw(c) as f64 / encode_raw_max() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    #[test]
    fn zero_vector_encodes_to_zero() {
        assert_eq!(encode_raw(&ResourceVector::ZERO), 0);
        assert_eq!(resource_quality(&ResourceVector::ZERO), 0.0);
    }

    #[test]
    fn ones_vector_encodes_to_one() {
        let v = ResourceVector::uniform(1.0);
        assert_eq!(encode_raw(&v), encode_raw_max());
        assert_eq!(resource_quality(&v), 1.0);
    }

    #[test]
    fn dominant_coefficient_wins() {
        // One strong sensitivity beats many weak ones: lexicographic order.
        let one_strong = ResourceVector::ZERO.with(Resource::CacheLlc, 0.8);
        let all_weak = ResourceVector::uniform(0.5);
        assert!(resource_quality(&one_strong) > resource_quality(&all_weak));
    }

    #[test]
    fn encoding_ignores_resource_position() {
        // Only the sorted magnitudes matter, not which resource they're in.
        let a = ResourceVector::ZERO
            .with(Resource::Cpu, 0.7)
            .with(Resource::NetLatency, 0.3);
        let b = ResourceVector::ZERO
            .with(Resource::MemBandwidth, 0.7)
            .with(Resource::CacheL1, 0.3);
        assert_eq!(encode_raw(&a), encode_raw(&b));
    }

    #[test]
    fn ties_broken_by_second_coefficient() {
        let a = ResourceVector::ZERO
            .with(Resource::Cpu, 0.9)
            .with(Resource::CacheL2, 0.4);
        let b = ResourceVector::ZERO
            .with(Resource::Cpu, 0.9)
            .with(Resource::CacheL2, 0.3);
        assert!(encode_raw(&a) > encode_raw(&b));
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let over = ResourceVector::uniform(2.0);
        assert_eq!(resource_quality(&over), 1.0);
        let under = ResourceVector::uniform(-1.0);
        assert_eq!(resource_quality(&under), 0.0);
    }

    #[test]
    fn quality_is_monotone_in_every_coefficient() {
        let base = ResourceVector::uniform(0.3);
        let q0 = resource_quality(&base);
        for r in Resource::ALL {
            let bumped = base.with(r, 0.6);
            assert!(
                resource_quality(&bumped) > q0,
                "bumping {r} did not increase Q"
            );
        }
    }
}
