//! Worker-count digest identity for the `perf_fleet` scenario.
//!
//! The engine promises results are bit-identical regardless of
//! `HCLOUD_JOBS`; this pins that promise on the fleet bench's fast-mode
//! scenario (the same one CI smokes), and pins the digest itself to the
//! committed `crates/bench/goldens/BENCH_fleet_fast.json` golden so a
//! simulation-byte drift fails here before it fails in CI.

use std::sync::Arc;

use hcloud::{RunConfig, StrategyKind};
use hcloud_bench::fleet::{fleet_config, run_digest};
use hcloud_bench::{Engine, ExperimentCtx, ExperimentPlan, RunSpec};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::Scenario;

#[test]
fn fleet_fast_digests_are_identical_across_worker_counts() {
    let scenario = Arc::new(Scenario::generate(fleet_config(true), &RngFactory::new(42)));
    let config = RunConfig::new(StrategyKind::OnDemandMixed).with_retention_mult(0.05);
    let digests: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let engine = Engine::new(ExperimentCtx::new(42).with_jobs(jobs));
            let mut plan = ExperimentPlan::new();
            plan.push(
                RunSpec::on(scenario.clone(), StrategyKind::OnDemandMixed).config(config.clone()),
            );
            plan.push(
                RunSpec::on(scenario.clone(), StrategyKind::OnDemandMixed)
                    .config(config.clone())
                    .seed(43),
            );
            engine
                .run_plan(&plan)
                .results
                .iter()
                .map(run_digest)
                .collect()
        })
        .collect();
    assert_eq!(
        digests[0], digests[1],
        "HCLOUD_JOBS=1 and 4 must be byte-identical"
    );
    assert_eq!(
        digests[0][0], "1bc1579abdfea0db",
        "seed-42 digest is pinned to the committed BENCH_fleet_fast.json golden"
    );
}

/// Worker-count identity for the two theory-grounded registry
/// strategies: RA's blocking-threshold soft-limit walk and QC's EWMA
/// utilization ceiling both live entirely in simulation time, so
/// `HCLOUD_JOBS` must not perturb them either.
#[test]
fn new_strategy_digests_are_identical_across_worker_counts() {
    use hcloud::StrategyRegistry;

    let scenario = Arc::new(Scenario::generate(fleet_config(true), &RngFactory::new(42)));
    for short in ["RA", "QC"] {
        let strategy = StrategyRegistry::builtin()
            .get(short)
            .expect("registered strategy");
        let digests: Vec<Vec<String>> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                let engine = Engine::new(ExperimentCtx::new(42).with_jobs(jobs));
                let mut plan = ExperimentPlan::new();
                plan.push(RunSpec::on(scenario.clone(), &strategy));
                plan.push(RunSpec::on(scenario.clone(), &strategy).seed(43));
                engine
                    .run_plan(&plan)
                    .results
                    .iter()
                    .map(run_digest)
                    .collect()
            })
            .collect();
        assert_eq!(
            digests[0], digests[1],
            "{short}: HCLOUD_JOBS=1 and 4 must be byte-identical"
        );
    }
}

/// Worker-count identity for a tenanted scenario: the tenancy gate's
/// defer/drain/preempt machinery runs entirely in simulation time, so
/// `HCLOUD_JOBS` must not perturb a multi-tenant run either.
#[test]
fn tenanted_digests_are_identical_across_worker_counts() {
    use hcloud_tenancy::TenancyPlan;
    use hcloud_workloads::{ScenarioConfig, ScenarioKind};

    let base = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.05, 10),
        &RngFactory::new(42),
    );
    let mut plan = TenancyPlan::zipf(24, 1.1, 48, 0.5);
    let ids: Vec<u64> = base.jobs().iter().map(|j| j.id.0).collect();
    plan.assign_jobs(&ids, &mut RngFactory::new(42).stream("tenant-assign"));
    let scenario = Arc::new(base.with_tenancy(plan));

    let digests: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let engine = Engine::new(ExperimentCtx::new(42).with_jobs(jobs));
            let plan: ExperimentPlan = [StrategyKind::StaticReserved, StrategyKind::HybridMixed]
                .iter()
                .map(|&s| RunSpec::on(scenario.clone(), s))
                .collect();
            engine
                .run_plan(&plan)
                .results
                .iter()
                .map(run_digest)
                .collect()
        })
        .collect();
    assert_eq!(
        digests[0], digests[1],
        "HCLOUD_JOBS=1 and 4 must be byte-identical for tenanted runs"
    );
}
