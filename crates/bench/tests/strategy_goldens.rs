//! The trait port of the five paper strategies is byte-identical.
//!
//! PR 9 moved SR/OdF/OdM/HF/HM from `StrategyKind` match arms onto the
//! [`ProvisioningStrategy`] trait behind the registry. These tests pin
//! that port three ways:
//!
//! * registry-resolved handles reproduce the committed
//!   `BENCH_hotpath_fast.json` digests exactly (the same digests CI
//!   compares after running `perf_hotpath`);
//! * enum dispatch and registry dispatch agree byte-for-byte across a
//!   property-searched grid of strategy × fault plan × tenancy × seed;
//! * so a behavioural regression in the port fails here, in-tree,
//!   before it fails in CI.

use hcloud::runner::{run_scenario, RunCtx};
use hcloud::{RunConfig, StrategyKind, StrategyRegistry};
use hcloud_bench::fleet::run_digest;
use hcloud_faults::FaultPlanId;
use hcloud_sim::rng::RngFactory;
use hcloud_tenancy::TenancyPlan;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

/// The committed fast-mode hot-path golden (the digests CI enforces).
fn hotpath_golden() -> hcloud_json::Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/goldens/BENCH_hotpath_fast.json"
    );
    let text = std::fs::read_to_string(path).expect("committed golden exists");
    hcloud_json::parse(&text).expect("golden is valid JSON")
}

/// Registry-resolved paper strategies reproduce the committed hot-path
/// golden digests on the exact scenario `perf_hotpath` runs in fast
/// mode (high-variability ×0.25, 20 minutes, seed 42).
#[test]
fn registry_strategies_match_the_committed_hotpath_golden() {
    let scenario = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.25, 20),
        &RngFactory::new(42),
    );
    let golden = hotpath_golden();
    let rows = golden
        .get("strategies")
        .and_then(|v| v.as_array())
        .expect("golden has strategy rows");
    assert_eq!(rows.len(), StrategyKind::ALL.len());
    for row in rows {
        let short = row
            .get("strategy")
            .and_then(|v| v.as_str())
            .expect("row names a strategy");
        let strategy = StrategyRegistry::builtin()
            .get(short)
            .expect("golden strategy is registered");
        let factory = RngFactory::new(42);
        let r = run_scenario(
            &scenario,
            &RunConfig::new(&strategy),
            &RunCtx::new(&factory),
        )
        .expect("no auditor attached");
        let want = row.get("digest").and_then(|v| v.as_str()).expect("digest");
        assert_eq!(
            run_digest(&r),
            want,
            "{short}: trait-ported strategy drifted from the committed golden"
        );
        let events = row.get("events").and_then(|v| v.as_f64()).expect("events");
        assert_eq!(r.counters.events_processed as f64, events, "{short} events");
        let instances = row
            .get("instances")
            .and_then(|v| v.as_f64())
            .expect("instances");
        assert_eq!(r.usage_records.len() as f64, instances, "{short} instances");
    }
}

/// A small tenanted-or-not scenario for the property search.
fn property_scenario(seed: u64, tenants: usize) -> Scenario {
    let scenario = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.04, 10),
        &RngFactory::new(seed),
    );
    if tenants == 0 {
        return scenario;
    }
    let mut plan = TenancyPlan::zipf(tenants, 1.1, 48, 0.5);
    let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
    plan.assign_jobs(&ids, &mut RngFactory::new(seed).stream("tenant-assign"));
    scenario.with_tenancy(plan)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
    /// Enum dispatch (the compat shim) and registry dispatch resolve to
    /// byte-identical simulations for every paper strategy, under any
    /// fault plan, with or without a tenancy gate, at any seed.
    #[test]
    fn enum_and_registry_dispatch_are_byte_identical(
        seed in 0u64..1024,
        strategy_idx in 0usize..StrategyKind::ALL.len(),
        fault_idx in 0usize..FaultPlanId::ALL.len(),
        tenants in 0usize..10,
    ) {
        use proptest::prelude::prop_assert_eq;

        let kind = StrategyKind::ALL[strategy_idx];
        let fault_plan = FaultPlanId::ALL[fault_idx];
        let scenario = property_scenario(seed, tenants);
        let via_enum = {
            let config = RunConfig::new(kind).with_faults(fault_plan.plan());
            let factory = RngFactory::new(seed);
            run_scenario(&scenario, &config, &RunCtx::new(&factory))
                .expect("no auditor attached")
        };
        let via_registry = {
            let strategy = StrategyRegistry::builtin()
                .get(kind.short_name())
                .expect("paper strategy is registered");
            let config = RunConfig::new(&strategy).with_faults(fault_plan.plan());
            let factory = RngFactory::new(seed);
            run_scenario(&scenario, &config, &RunCtx::new(&factory))
                .expect("no auditor attached")
        };
        prop_assert_eq!(
            run_digest(&via_enum),
            run_digest(&via_registry),
            "{}/{}/{} tenants: enum and registry dispatch diverged",
            kind, fault_plan.name(), tenants
        );
    }
}
