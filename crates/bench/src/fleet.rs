//! Shared plumbing for the perf benches: the FNV result digest and the
//! fleet-scale scenario.
//!
//! The digest is the identity oracle the perf benches (and CI) use to
//! prove an optimisation changed no simulation byte: FNV-1a 64-bit over
//! every per-job outcome, usage record and headline counter. Both
//! `perf_hotpath` and `perf_fleet` hash through this one implementation,
//! so their committed goldens stay comparable across refactors.

use hcloud::RunResult;
use hcloud_sim::time::SimDuration;
use hcloud_workloads::{ScenarioConfig, ScenarioKind};

/// FNV-1a 64-bit, the digest primitive (no external deps, stable).
pub struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` bit pattern (bit-exact, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// A deterministic digest of everything the simulation decided: per-job
/// outcomes (bit-exact), usage records and the headline counters. Two
/// builds disagreeing on any placement, timing or accounting byte
/// disagree here.
pub fn run_digest(r: &RunResult) -> String {
    let mut h = Fnv::new();
    h.u64(r.makespan.as_micros());
    h.u64(r.outcomes.len() as u64);
    for o in &r.outcomes {
        h.u64(o.id.0);
        h.u64(o.started.as_micros());
        h.u64(o.finished.as_micros());
        h.u64(o.cores as u64);
        h.u64(o.on_reserved as u64);
        h.f64(o.normalized_perf);
        h.u64(o.queue_delay.as_micros());
        h.u64(o.spinup_delay.as_micros());
    }
    h.u64(r.usage_records.len() as u64);
    for u in &r.usage_records {
        h.u64(u.itype.vcpus() as u64);
        h.u64(u.reserved as u64);
        h.u64(u.from.as_micros());
        h.u64(u.to.as_micros());
    }
    h.u64(r.counters.od_acquired as u64);
    h.u64(r.counters.queued_jobs as u64);
    h.u64(r.counters.reschedules as u64);
    h.u64(r.counters.events_processed as u64);
    format!("{:016x}", h.finish())
}

/// The fleet scenario: the paper's 2-hour high-variability arrival
/// window densified to ~1M jobs (mean inter-arrival 7.2 ms instead of
/// Table 2's 1 s). Under OdM — the strategy that spawns the most
/// instances — this acquires well past 100k instances, the scale the
/// reservation auto-scaling and multi-tenant directions need. Fast mode
/// keeps the same shape at ~36k jobs for CI smoke runs.
pub fn fleet_config(fast: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig::paper(ScenarioKind::HighVariability);
    if fast {
        config.duration = SimDuration::from_mins(12);
        config.mean_interarrival = SimDuration::from_micros(20_000);
        config.load_scale = 0.25;
    } else {
        config.mean_interarrival = SimDuration::from_micros(7_200);
        config.load_scale = 5.0;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference values.
        let mut h = Fnv::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325, "offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fleet_config_is_fleet_sized() {
        let full = fleet_config(false);
        let expected = full.duration.as_secs_f64() / full.mean_interarrival.as_secs_f64();
        assert!(
            expected > 900_000.0,
            "~1M-job arrival window, got {expected}"
        );
        let fast = fleet_config(true);
        let expected = fast.duration.as_secs_f64() / fast.mean_interarrival.as_secs_f64();
        assert!(
            (10_000.0..100_000.0).contains(&expected),
            "fast mode stays smoke-sized, got {expected}"
        );
    }
}
