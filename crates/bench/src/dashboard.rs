//! The generated paper-parity & perf-trajectory dashboard.
//!
//! [`write_dashboard`] walks the [`crate::registry`] against the working
//! tree — `results/*.json` artifact stamps, committed goldens, and the
//! repo-root `BENCH_hotpath.json` / `BENCH_fleet.json` perf records — and
//! renders two files under `docs/alignment/`:
//!
//! * `STATUS.md` — one coverage row per registered experiment (artifact
//!   freshness, golden, trace/audit/fault coverage, CI job, digest),
//!   plus the rendered perf trajectory;
//! * `PERF_TRAJECTORY.json` — a cumulative, append-only record of the
//!   perf benches' wall-clock/digest rows. Re-rendering from the same
//!   inputs is byte-identical (rows already present are never
//!   re-appended, and nothing here reads the clock), which is what lets
//!   CI regenerate the dashboard and fail on `git diff --exit-code`.
//!
//! Run it with `cargo run -p hcloud-bench --bin render_dashboard` or
//! `hcloud-cli dashboard`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use hcloud_json::{ObjectBuilder, Value};

use crate::artifacts::{self, SCHEMA_VERSION};
use crate::fleet::Fnv;
use crate::registry::{self, ExperimentInfo, ExperimentKind};

/// Where the rendered dashboard lives, relative to the repo root.
pub const DASHBOARD_DIR: &str = "docs/alignment";

/// One artifact's freshness, as judged from its stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Freshness {
    /// Stamped with the current schema version by the owning experiment.
    Fresh,
    /// Present but unstamped, mis-stamped, or stamped by another binary.
    Stale,
    /// No file at `results/<stem>.json`.
    Missing,
}

/// Parses `path` as JSON, if it exists and parses.
fn load_json(path: &Path) -> Option<Value> {
    let body = fs::read_to_string(path).ok()?;
    hcloud_json::parse(&body).ok()
}

/// Judges one artifact's stamp against its owning experiment. The stamp
/// is either a `meta` envelope (`write_json` artifacts) or top-level
/// `schema_version` + `bench` keys (the perf benches' documents).
fn artifact_freshness(root: &Path, info: &ExperimentInfo, stem: &str) -> Freshness {
    let Some(doc) = load_json(&root.join(format!("results/{stem}.json"))) else {
        return Freshness::Missing;
    };
    let stamp = doc.get("meta").unwrap_or(&doc);
    let version = stamp.get("schema_version").and_then(Value::as_u64);
    let bench = stamp.get("bench").and_then(Value::as_str);
    if version == Some(SCHEMA_VERSION) && bench == Some(info.id) {
        Freshness::Fresh
    } else {
        Freshness::Stale
    }
}

/// The coverage matrix's artifact cell: `3/3 fresh`, `1/3 fresh (2
/// stale)`, `0/1 fresh (1 missing)`, or `-` for binaries that write no
/// JSON artifacts.
fn artifact_cell(root: &Path, info: &ExperimentInfo) -> String {
    if info.artifacts.is_empty() {
        return "-".to_string();
    }
    let states: Vec<Freshness> = info
        .artifacts
        .iter()
        .map(|stem| artifact_freshness(root, info, stem))
        .collect();
    let fresh = states.iter().filter(|&&s| s == Freshness::Fresh).count();
    let stale = states.iter().filter(|&&s| s == Freshness::Stale).count();
    let missing = states.iter().filter(|&&s| s == Freshness::Missing).count();
    let mut cell = format!("{fresh}/{} fresh", states.len());
    if stale > 0 || missing > 0 {
        let mut notes = Vec::new();
        if stale > 0 {
            notes.push(format!("{stale} stale"));
        }
        if missing > 0 {
            notes.push(format!("{missing} missing"));
        }
        let _ = write!(cell, " ({})", notes.join(", "));
    }
    cell
}

/// An FNV-1a digest-of-digests over every `digest` field found in the
/// experiment's artifacts (the perf documents carry one per strategy or
/// queue) — a compact identity for "did any simulated byte move".
fn digest_cell(root: &Path, info: &ExperimentInfo) -> String {
    let mut h = Fnv::new();
    let mut found = false;
    for stem in info.artifacts {
        let Some(doc) = load_json(&root.join(format!("results/{stem}.json"))) else {
            continue;
        };
        for rows_key in ["strategies", "queues"] {
            if let Some(rows) = doc.get(rows_key).and_then(Value::as_array) {
                for row in rows {
                    if let Some(digest) = row.get("digest").and_then(Value::as_str) {
                        h.write(digest.as_bytes());
                        found = true;
                    }
                }
            }
        }
    }
    if found {
        format!("`{:016x}`", h.finish())
    } else {
        "-".to_string()
    }
}

fn check(flag: bool) -> &'static str {
    if flag {
        "yes"
    } else {
        "-"
    }
}

/// Registry entries in dashboard order: grouped by kind (paper material
/// first), then by id.
fn ordered_registry() -> Vec<&'static ExperimentInfo> {
    let rank = |kind: ExperimentKind| match kind {
        ExperimentKind::PaperFigure => 0,
        ExperimentKind::PaperTable => 1,
        ExperimentKind::Replication => 2,
        ExperimentKind::Extension => 3,
        ExperimentKind::Perf => 4,
        ExperimentKind::Tooling => 5,
    };
    let mut entries: Vec<&'static ExperimentInfo> = registry::ALL.to_vec();
    entries.sort_by_key(|e| (rank(e.kind), e.id));
    entries
}

/// Extracts the perf-trajectory candidate rows from the repo-root
/// `BENCH_hotpath.json`: one row per section holding a `strategies`
/// array (`baseline`, `post_index`, and whatever later PRs add).
fn hotpath_rows(root: &Path) -> Vec<Value> {
    let Some(Value::Object(pairs)) = load_json(&root.join("BENCH_hotpath.json")) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for (entry, section) in &pairs {
        let Some(strategies) = section.get("strategies").and_then(Value::as_array) else {
            continue;
        };
        let mut h = Fnv::new();
        for s in strategies {
            if let Some(d) = s.get("digest").and_then(Value::as_str) {
                h.write(d.as_bytes());
            }
        }
        let mut b = ObjectBuilder::new()
            .set("bench", "perf_hotpath")
            .set("entry", entry.as_str());
        for key in ["total_wall_ms", "quantile_churn_ms"] {
            if let Some(v) = section.get(key).and_then(Value::as_f64) {
                b = b.set(key, v);
            }
        }
        rows.push(b.set("digest", format!("{:016x}", h.finish())).build());
    }
    rows
}

/// Extracts the perf-trajectory candidate rows from the repo-root
/// `BENCH_fleet.json`: one row per queue implementation.
fn fleet_rows(root: &Path) -> Vec<Value> {
    let Some(doc) = load_json(&root.join("BENCH_fleet.json")) else {
        return Vec::new();
    };
    let Some(queues) = doc.get("queues").and_then(Value::as_array) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for q in queues {
        let Some(queue) = q.get("queue").and_then(Value::as_str) else {
            continue;
        };
        let mut b = ObjectBuilder::new()
            .set("bench", "perf_fleet")
            .set("entry", queue);
        for key in ["wall_ms", "events", "instances"] {
            if let Some(v) = q.get(key).and_then(Value::as_f64) {
                b = b.set(key, v);
            }
        }
        if let Some(d) = q.get("digest").and_then(Value::as_str) {
            b = b.set("digest", d);
        }
        rows.push(b.build());
    }
    rows
}

/// The cumulative trajectory document: the existing
/// `docs/alignment/PERF_TRAJECTORY.json` rows plus any candidate row
/// from the committed `BENCH_*.json` files not already recorded.
/// Appending is idempotent, so re-rendering never churns the file.
pub fn updated_trajectory(root: &Path) -> Value {
    let mut rows: Vec<Value> = load_json(&root.join(DASHBOARD_DIR).join("PERF_TRAJECTORY.json"))
        .and_then(|doc| doc.get("rows").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    for candidate in hotpath_rows(root).into_iter().chain(fleet_rows(root)) {
        if !rows.contains(&candidate) {
            rows.push(candidate);
        }
    }
    ObjectBuilder::new()
        .set(
            "meta",
            ObjectBuilder::new()
                .set("schema_version", SCHEMA_VERSION as f64)
                .set("bench", "render_dashboard")
                .build(),
        )
        .set("rows", Value::Array(rows))
        .build()
}

/// Renders one trajectory row as a markdown table line.
fn trajectory_line(row: &Value) -> String {
    let s = |key: &str| {
        row.get(key)
            .and_then(Value::as_str)
            .unwrap_or("-")
            .to_string()
    };
    let ms = |key: &str| {
        row.get(key)
            .and_then(Value::as_f64)
            .map_or("-".to_string(), |v| format!("{v:.1}"))
    };
    let n = |key: &str| {
        row.get(key)
            .and_then(Value::as_f64)
            .map_or("-".to_string(), |v| format!("{v:.0}"))
    };
    format!(
        "| {} | {} | {} | {} | {} | `{}` |",
        s("bench"),
        s("entry"),
        if row.get("total_wall_ms").is_some() {
            ms("total_wall_ms")
        } else {
            ms("wall_ms")
        },
        ms("quantile_churn_ms"),
        n("events"),
        s("digest"),
    )
}

/// Renders `STATUS.md` from the registry, the working tree, and the
/// already-merged trajectory document. Pure function of its inputs — no
/// clocks, no environment — so rendering twice is byte-identical.
pub fn render_status(root: &Path, trajectory: &Value) -> String {
    let mut out = String::new();
    out.push_str("# Paper-parity & perf-trajectory dashboard\n\n");
    out.push_str(
        "<!-- GENERATED FILE: do not edit. Regenerate with\n     \
         `cargo run -p hcloud-bench --bin render_dashboard` (or `hcloud-cli dashboard`).\n     \
         CI regenerates this and fails on drift. -->\n\n",
    );

    out.push_str("## Coverage matrix\n\n");
    out.push_str(
        "| experiment | paper ref | kind | artifacts | golden | trace | audit | faults | CI job | digest |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for info in ordered_registry() {
        let golden = match info.golden {
            Some(path) => {
                if root.join(path).is_file() {
                    "yes"
                } else {
                    "MISSING"
                }
            }
            None => "-",
        };
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            info.id,
            info.paper_ref,
            info.kind.name(),
            artifact_cell(root, info),
            golden,
            check(info.trace_covered),
            check(info.audit_covered),
            check(info.fault_covered),
            info.ci_job,
            digest_cell(root, info),
        );
    }
    out.push_str(
        "\nColumns: **artifacts** — `results/*.json` files stamped by this experiment at \
         the current schema version (stale = present but unstamped or mis-attributed); \
         **golden** — committed CI golden; **trace/audit/faults** — CI exercises the binary \
         under `HCLOUD_TRACE=full` / `HCLOUD_AUDIT=strict` / an active fault plan; \
         **digest** — FNV-1a over the artifact's result digests (perf benches only).\n\n",
    );

    out.push_str("## Claims under test\n\n");
    for info in ordered_registry() {
        let _ = writeln!(out, "- `{}` — {}", info.id, info.claim);
    }
    out.push('\n');

    out.push_str("## Perf trajectory\n\n");
    out.push_str(
        "Cumulative wall-clock/digest record from the committed `BENCH_hotpath.json` and \
         `BENCH_fleet.json` (see `PERF_TRAJECTORY.json` next to this file; wall-clock \
         numbers are machine-dependent, digests are not).\n\n",
    );
    out.push_str("| bench | entry | wall ms | quantile churn ms | events | digest |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    if let Some(rows) = trajectory.get("rows").and_then(Value::as_array) {
        for row in rows {
            out.push_str(&trajectory_line(row));
            out.push('\n');
        }
    }
    out
}

/// Renders and writes `docs/alignment/STATUS.md` +
/// `PERF_TRAJECTORY.json` under `root`, reporting through
/// [`crate::artifacts`]. Returns whether both writes succeeded.
pub fn write_dashboard(root: &Path) -> bool {
    let started = Instant::now();
    let dir = root.join(DASHBOARD_DIR);
    if let Err(e) = fs::create_dir_all(&dir) {
        artifacts::artifact_failure(format!("create {}", dir.display()), e);
        artifacts::add_report_span(started.elapsed());
        return false;
    }
    let trajectory = updated_trajectory(root);
    let status = render_status(root, &trajectory);
    let mut ok = true;
    for (name, body) in [
        ("PERF_TRAJECTORY.json", trajectory.to_pretty() + "\n"),
        ("STATUS.md", status),
    ] {
        let path = dir.join(name);
        match fs::write(&path, body) {
            Ok(()) => artifacts::artifact_written(&path),
            Err(e) => {
                artifacts::artifact_failure(format!("write {}", path.display()), e);
                ok = false;
            }
        }
    }
    artifacts::add_report_span(started.elapsed());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/bench sits two levels under the repo root")
    }

    #[test]
    fn rendering_twice_is_byte_identical() {
        let root = repo_root();
        let traj_a = updated_trajectory(root);
        let traj_b = updated_trajectory(root);
        assert_eq!(traj_a.to_pretty(), traj_b.to_pretty());
        let a = render_status(root, &traj_a);
        let b = render_status(root, &traj_b);
        assert_eq!(a, b, "STATUS.md rendering must be deterministic");
    }

    #[test]
    fn trajectory_merge_is_idempotent_and_carries_both_benches() {
        let root = repo_root();
        let merged = updated_trajectory(root);
        let rows = merged.get("rows").and_then(Value::as_array).expect("rows");
        assert!(
            rows.iter()
                .any(|r| r.get("bench").and_then(Value::as_str) == Some("perf_hotpath")),
            "hotpath rows present"
        );
        assert!(
            rows.iter()
                .any(|r| r.get("bench").and_then(Value::as_str) == Some("perf_fleet")),
            "fleet rows present"
        );
        // Merging candidates into an already-merged document adds nothing.
        let mut again = rows.clone();
        for candidate in hotpath_rows(root).into_iter().chain(fleet_rows(root)) {
            assert!(
                again.contains(&candidate),
                "candidate row missing from merged doc: {candidate:?}"
            );
            if !again.contains(&candidate) {
                again.push(candidate);
            }
        }
        assert_eq!(again.len(), rows.len());
    }

    #[test]
    fn status_lists_every_registered_experiment() {
        let root = repo_root();
        let status = render_status(root, &updated_trajectory(root));
        for info in registry::ALL {
            assert!(
                status.contains(&format!("`{}`", info.id)),
                "{} missing from STATUS.md",
                info.id
            );
        }
        assert!(status.contains("## Perf trajectory"));
        assert!(status.contains("GENERATED FILE"));
    }

    #[test]
    fn freshness_distinguishes_missing_from_stale() {
        let root = repo_root();
        // A registered experiment with a nonexistent stem is missing.
        let info = registry::find("replication").expect("registered");
        assert_eq!(
            artifact_freshness(root, info, "definitely_not_an_artifact"),
            Freshness::Missing
        );
        // Goldens exist but are stamped by no one: judged stale if they
        // were claimed as results artifacts (they never are; this guards
        // the judgement logic itself via the fast-mode golden's shape).
        let doc = load_json(&root.join("crates/bench/goldens/BENCH_fleet_fast.json"))
            .expect("golden parses");
        assert_eq!(doc.get("bench").and_then(Value::as_str), Some("perf_fleet"));
    }
}
