//! Text tables, ASCII plots and JSON export for the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use crate::artifacts;
use crate::registry;

/// The `meta` stamp written into every artifact: schema version, the
/// announced experiment's registry id (see [`registry::announce`]),
/// and — when profiling ran — the deterministic per-subsystem op
/// counts. Exactly one line, stable key order.
fn meta_stamp() -> String {
    let mut meta = format!("{{\"schema_version\": {}", artifacts::SCHEMA_VERSION);
    match registry::current() {
        Some(info) => {
            let _ = write!(meta, ", \"bench\": \"{}\"", info.id);
        }
        None => meta.push_str(", \"bench\": null"),
    }
    if let Some(counts) = artifacts::profile_ops() {
        meta.push_str(", \"profile_ops\": {");
        for (i, (name, ops)) in counts.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            let _ = write!(meta, "{comma}\"{name}\": {ops}");
        }
        meta.push('}');
    }
    meta.push('}');
    meta
}

/// A simple aligned text table.
///
/// ```
/// use hcloud_bench::Table;
/// let mut t = Table::new(vec!["strategy", "cost"]);
/// t.row(vec!["SR".into(), "1.00".into()]);
/// t.row(vec!["HM".into(), "0.54".into()]);
/// let s = t.to_string();
/// assert!(s.contains("strategy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders a numeric series as a unicode sparkline.
///
/// ```
/// use hcloud_bench::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Renders one heat-map row: utilization values in `[0, 1]` as shaded
/// cells (the Figures 19–20 look).
pub fn heatmap_row(values: &[f64]) -> String {
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = (v.clamp(0.0, 1.0) * 4.0).round() as usize;
            SHADES[idx.min(4)]
        })
        .collect()
}

/// Writes `(x, series...)` data as JSON under `results/<name>.json`,
/// creating the directory if needed. Returns whether the write
/// succeeded; failures are reported through [`crate::artifacts`] and
/// latch a nonzero process exit (via [`crate::Harness::finish`]) while
/// the figure still prints to stdout.
pub fn write_json(name: &str, headers: &[&str], rows: &[Vec<f64>]) -> bool {
    let started = Instant::now();
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        artifacts::artifact_failure("create results/", e);
        artifacts::add_report_span(started.elapsed());
        return false;
    }
    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"meta\": {},", meta_stamp());
    let _ = writeln!(
        body,
        "  \"columns\": [{}],",
        headers
            .iter()
            .map(|h| format!("\"{h}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .iter()
            .map(|v| {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(body, "    [{cells}]{comma}");
    }
    body.push_str("  ]\n}\n");
    let path = dir.join(format!("{name}.json"));
    let ok = match fs::write(&path, body) {
        Err(e) => {
            artifacts::artifact_failure(format!("write {}", path.display()), e);
            false
        }
        Ok(()) => {
            artifacts::artifact_written(&path);
            true
        }
    };
    artifacts::add_report_span(started.elapsed());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("longer"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        assert_eq!(sparkline(&[]), "");
        // Constant series does not panic.
        assert_eq!(sparkline(&[3.0, 3.0]).chars().count(), 2);
    }

    #[test]
    fn heatmap_row_shades() {
        let s = heatmap_row(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
    }
}
