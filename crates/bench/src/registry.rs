//! The self-describing experiment registry.
//!
//! Every bench binary is one experiment: it reproduces a paper figure or
//! table, replicates a headline claim across seeds, extends the paper, or
//! guards performance. This module is the single typed list of those
//! experiments — one [`ExperimentInfo`] per `src/bin/*.rs` file — so
//! tooling can enumerate coverage instead of guessing from filenames:
//!
//! * each binary declares `const INFO: &ExperimentInfo = &registry::…`
//!   and [`announce`]s it at startup (or constructs its harness with
//!   [`crate::Harness::for_experiment`], which announces for it);
//! * [`crate::report::write_json`] reads the announced entry to stamp
//!   every `results/*.json` artifact with the producing experiment's id
//!   and the artifact [`crate::artifacts::SCHEMA_VERSION`];
//! * the dashboard generator (`render_dashboard`, `hcloud-cli
//!   dashboard`) walks [`ALL`] against `results/`, the goldens and the
//!   committed `BENCH_*.json` files to render
//!   `docs/alignment/STATUS.md`.
//!
//! A completeness test pins the registry to the filesystem: every
//! `src/bin/*.rs` appears exactly once in [`ALL`], and every registered
//! golden exists — no unregistered or phantom experiments.

use std::sync::Mutex;

/// What kind of experiment a binary is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// Reproduces a numbered paper figure.
    PaperFigure,
    /// Reproduces a numbered paper table.
    PaperTable,
    /// Replicates headline claims across seeds.
    Replication,
    /// Goes beyond the paper (Section 5.5 directions, ablations).
    Extension,
    /// Guards wall-clock and result digests.
    Perf,
    /// Renders other experiments' outputs; runs no simulation itself.
    Tooling,
}

impl ExperimentKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::PaperFigure => "paper-figure",
            ExperimentKind::PaperTable => "paper-table",
            ExperimentKind::Replication => "replication",
            ExperimentKind::Extension => "extension",
            ExperimentKind::Perf => "perf",
            ExperimentKind::Tooling => "tooling",
        }
    }
}

/// One experiment's self-description: everything the dashboard needs to
/// render a coverage row without running the binary.
#[derive(Debug)]
pub struct ExperimentInfo {
    /// Registry id == the binary's `src/bin/<id>.rs` stem.
    pub id: &'static str,
    /// The paper figure/table/claim this experiment covers.
    pub paper_ref: &'static str,
    /// What kind of experiment this is.
    pub kind: ExperimentKind,
    /// One-line statement of the claim the binary checks.
    pub claim: &'static str,
    /// Scenario kinds exercised (`"-"` when none are simulated).
    pub scenarios: &'static str,
    /// Strategies exercised (`"-"` when none).
    pub strategies: &'static str,
    /// `results/<stem>.json` artifacts the binary writes.
    pub artifacts: &'static [&'static str],
    /// Committed golden this experiment is diffed against in CI,
    /// relative to the repo root.
    pub golden: Option<&'static str>,
    /// CI runs this binary under `HCLOUD_TRACE=full`.
    pub trace_covered: bool,
    /// CI runs this binary under `HCLOUD_AUDIT=strict`.
    pub audit_covered: bool,
    /// CI runs this binary under an active fault plan.
    pub fault_covered: bool,
    /// The CI job that executes the binary (`"manual"` when none does).
    pub ci_job: &'static str,
}

impl ExperimentInfo {
    /// The `results/<stem>.json` paths this experiment produces,
    /// relative to the repo root.
    pub fn artifact_paths(&self) -> impl Iterator<Item = String> + '_ {
        self.artifacts
            .iter()
            .map(|stem| format!("results/{stem}.json"))
    }
}

macro_rules! experiments {
    ($($name:ident => { $($field:ident : $value:expr),* $(,)? })*) => {
        $(pub static $name: ExperimentInfo = ExperimentInfo { $($field: $value),* };)*
        /// Every registered experiment, in `src/bin/` order.
        pub static ALL: &[&ExperimentInfo] = &[$(&$name),*];
    };
}

experiments! {
    ABLATIONS => {
        id: "ablations",
        paper_ref: "beyond-paper ablations",
        kind: ExperimentKind::Extension,
        claim: "removing soft limits / QoS checks / Quasar profiling each degrades the dynamic policy",
        scenarios: "high-variability",
        strategies: "HM",
        artifacts: &["ablation_limits", "ablation_quasar"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    EXT_DATA_LOCALITY => {
        id: "ext_data_locality",
        paper_ref: "§5.5 data management",
        kind: ExperimentKind::Extension,
        claim: "data-transfer penalties shift the hybrid split toward the private facility",
        scenarios: "high-variability",
        strategies: "HF HM",
        artifacts: &["ext_data_locality"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    EXT_FAULT_RESILIENCE => {
        id: "ext_fault_resilience",
        paper_ref: "fault-injection extension",
        kind: ExperimentKind::Extension,
        claim: "SLO attainment degrades gracefully as full-chaos fault intensity rises",
        scenarios: "high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["ext_fault_resilience"],
        golden: None,
        trace_covered: true,
        audit_covered: true,
        fault_covered: true,
        ci_job: "smoke",
    }
    EXT_LONG_HORIZON => {
        id: "ext_long_horizon",
        paper_ref: "§5.5 long-horizon + spot market",
        kind: ExperimentKind::Extension,
        claim: "DSL-authored multi-week demand shapes run digest-pinned under HM, and spot-market preemption recovers through the fault-requeue path with an exactly reconciled billing partition",
        scenarios: "dsl-diurnal dsl-flash-crowd dsl-batch-burst",
        strategies: "HM",
        artifacts: &["ext_long_horizon"],
        golden: Some("crates/bench/goldens/ext_long_horizon_fast.json"),
        trace_covered: false,
        audit_covered: true,
        fault_covered: true,
        ci_job: "long-horizon",
    }
    EXT_MULTI_TENANT => {
        id: "ext_multi_tenant",
        paper_ref: "§6 shared-cluster extension",
        kind: ExperimentKind::Extension,
        claim: "weighted fair share holds per-tenant SLOs under Zipf-skewed tenant populations, and starved guaranteed queues reclaim share via preemption",
        scenarios: "high-variability",
        strategies: "SR HM",
        artifacts: &["ext_multi_tenant"],
        golden: Some("crates/bench/goldens/ext_multi_tenant_fast.json"),
        trace_covered: true,
        audit_covered: true,
        fault_covered: true,
        ci_job: "tenancy",
    }
    EXT_SPOT_PARTITIONING => {
        id: "ext_spot_partitioning",
        paper_ref: "§5.5 spot + partitioning",
        kind: ExperimentKind::Extension,
        claim: "spot bidding and server partitioning extend the cost/performance frontier",
        scenarios: "high-variability",
        strategies: "HM",
        artifacts: &["ext_spot_bids", "ext_partitioning"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    EXT_THEORY_STRATEGIES => {
        id: "ext_theory_strategies",
        paper_ref: "post-paper autoscaling theory",
        kind: ExperimentKind::Extension,
        claim: "the reservation-autoscale and queueing-capacity registry strategies survive full chaos and Zipf tenancy head-to-head with HF/HM, digest-pinned",
        scenarios: "high-variability",
        strategies: "HF HM RA QC",
        artifacts: &["ext_theory_strategies"],
        golden: Some("crates/bench/goldens/ext_theory_strategies_fast.json"),
        trace_covered: false,
        audit_covered: true,
        fault_covered: true,
        ci_job: "theory",
    }
    FIG01 => {
        id: "fig01_variability_batch",
        paper_ref: "Figure 1",
        kind: ExperimentKind::PaperFigure,
        claim: "Hadoop completion times spread widely on small shared instances, stay tight on m16",
        scenarios: "-",
        strategies: "-",
        artifacts: &["fig01_variability_batch"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG02 => {
        id: "fig02_variability_memcached",
        paper_ref: "Figure 2",
        kind: ExperimentKind::PaperFigure,
        claim: "memcached latency is unpredictable on shared instance types",
        scenarios: "-",
        strategies: "-",
        artifacts: &["fig02_variability_memcached"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG03_TAB02 => {
        id: "fig03_tab02_scenarios",
        paper_ref: "Figure 3 / Table 2",
        kind: ExperimentKind::PaperFigure,
        claim: "the three workload scenarios match the paper's demand curves and parameters",
        scenarios: "static low-variability high-variability",
        strategies: "-",
        artifacts: &["fig03_scenarios"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG04_FIG05 => {
        id: "fig04_fig05_basic_strategies",
        paper_ref: "Figures 4-5",
        kind: ExperimentKind::PaperFigure,
        claim: "basic strategies trade performance for cost; profiling info narrows the gap",
        scenarios: "static low-variability high-variability",
        strategies: "SR OdF OdM",
        artifacts: &["fig04a_batch", "fig04b_memcached", "fig05_cost"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "test",
    }
    FIG06_FIG07 => {
        id: "fig06_fig07_mapping_policies",
        paper_ref: "Figures 6-7",
        kind: ExperimentKind::PaperFigure,
        claim: "the P4 interference-aware mapping policy dominates P1-P8 alternatives",
        scenarios: "high-variability",
        strategies: "HF HM",
        artifacts: &["fig06_07_policies"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG09 => {
        id: "fig09_dynamic_policy",
        paper_ref: "Figure 9",
        kind: ExperimentKind::PaperFigure,
        claim: "the soft utilization limit adapts to queue pressure and wait-time validation triggers",
        scenarios: "high-variability",
        strategies: "HM",
        artifacts: &["fig09a_soft_limit", "fig09b_wait_validation"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG10_FIG11 => {
        id: "fig10_fig11_hybrid",
        paper_ref: "Figures 10-11",
        kind: ExperimentKind::PaperFigure,
        claim: "hybrid strategies approach SR performance at a fraction of its cost",
        scenarios: "static low-variability high-variability",
        strategies: "SR HF HM",
        artifacts: &["fig10a_batch", "fig10b_memcached", "fig11_cost"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "test",
    }
    FIG12 => {
        id: "fig12_price_ratio",
        paper_ref: "Figure 12",
        kind: ExperimentKind::PaperFigure,
        claim: "hybrid cost advantage persists across on-demand:reserved price ratios",
        scenarios: "static low-variability high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["fig12_price_ratio"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG13 => {
        id: "fig13_duration",
        paper_ref: "Figure 13",
        kind: ExperimentKind::PaperFigure,
        claim: "reserved amortization flips the cost ranking as deployment duration grows",
        scenarios: "static low-variability high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["fig13_duration"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG14 => {
        id: "fig14_spinup_external",
        paper_ref: "Figure 14",
        kind: ExperimentKind::PaperFigure,
        claim: "performance degrades with spin-up time and external load, HM most robust",
        scenarios: "high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["fig14a_spinup", "fig14b_external"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG15 => {
        id: "fig15_retention",
        paper_ref: "Figure 15",
        kind: ExperimentKind::PaperFigure,
        claim: "longer retention trades cost for performance on the on-demand side",
        scenarios: "high-variability",
        strategies: "OdM HM",
        artifacts: &["fig15_retention"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG16 => {
        id: "fig16_sensitive_fraction",
        paper_ref: "Figure 16",
        kind: ExperimentKind::PaperFigure,
        claim: "cost and performance degrade as the interference-sensitive fraction rises",
        scenarios: "high-variability",
        strategies: "SR OdM HM",
        artifacts: &["fig16_sensitive"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG17 => {
        id: "fig17_pricing_models",
        paper_ref: "Figure 17",
        kind: ExperimentKind::PaperFigure,
        claim: "the strategy ranking survives AWS-, GCE- and Azure-style pricing models",
        scenarios: "static low-variability high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["fig17_pricing_models"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG18 => {
        id: "fig18_allocation",
        paper_ref: "Figure 18",
        kind: ExperimentKind::PaperFigure,
        claim: "allocation traces track required cores; hybrids blend reserved and on-demand",
        scenarios: "high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["fig18_allocation"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG19_20 => {
        id: "fig19_20_utilization",
        paper_ref: "Figures 19-20",
        kind: ExperimentKind::PaperFigure,
        claim: "per-instance utilization heatmaps show hybrids packing reserved capacity densely",
        scenarios: "high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &[
            "fig19_20_util_sr",
            "fig19_20_util_odf",
            "fig19_20_util_odm",
            "fig19_20_util_hf",
            "fig19_20_util_hm",
        ],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    FIG21 => {
        id: "fig21_breakdown",
        paper_ref: "Figure 21",
        kind: ExperimentKind::PaperFigure,
        claim: "HM sends batch to on-demand and keeps latency-critical work on reserved",
        scenarios: "low-variability",
        strategies: "HM",
        artifacts: &["fig21_breakdown"],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    PERF_FLEET => {
        id: "perf_fleet",
        paper_ref: "perf: fleet-scale engine",
        kind: ExperimentKind::Perf,
        claim: "the ~1M-job fleet run is digest-identical across queues and worker counts",
        scenarios: "high-variability-fleet",
        strategies: "OdM",
        artifacts: &["BENCH_fleet"],
        golden: Some("crates/bench/goldens/BENCH_fleet_fast.json"),
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "perf-fleet",
    }
    PERF_HOTPATH => {
        id: "perf_hotpath",
        paper_ref: "perf: scheduler hot path",
        kind: ExperimentKind::Perf,
        claim: "per-arrival provisioning decisions stay cheap; digests pin every simulated byte",
        scenarios: "high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["BENCH_hotpath"],
        golden: Some("crates/bench/goldens/BENCH_hotpath_fast.json"),
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "perf",
    }
    RENDER_DASHBOARD => {
        id: "render_dashboard",
        paper_ref: "coverage dashboard",
        kind: ExperimentKind::Tooling,
        claim: "docs/alignment/{STATUS.md,PERF_TRAJECTORY.json} regenerate byte-identically",
        scenarios: "-",
        strategies: "-",
        artifacts: &[],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "dashboard",
    }
    RENDER_FIGURES => {
        id: "render_figures",
        paper_ref: "figure rendering",
        kind: ExperimentKind::Tooling,
        claim: "SVG charts regenerate from the committed results/*.json series",
        scenarios: "-",
        strategies: "-",
        artifacts: &[],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    REPLICATION => {
        id: "replication",
        paper_ref: "headline claims xN seeds",
        kind: ExperimentKind::Replication,
        claim: "SR>OdM performance, hybrid cost savings and profiling gains replicate across seeds",
        scenarios: "static low-variability high-variability",
        strategies: "SR OdF OdM HF HM",
        artifacts: &["replication"],
        golden: None,
        trace_covered: true,
        audit_covered: true,
        fault_covered: false,
        ci_job: "smoke",
    }
    TAB01_03 => {
        id: "tab01_03_strategies",
        paper_ref: "Tables 1 & 3",
        kind: ExperimentKind::PaperTable,
        claim: "the qualitative configuration comparison and strategy matrix match the paper",
        scenarios: "-",
        strategies: "SR OdF OdM HF HM",
        artifacts: &[],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
    TAB_OVERHEADS => {
        id: "tab_overheads",
        paper_ref: "§5.2 overheads",
        kind: ExperimentKind::PaperTable,
        claim: "provisioning-decision overheads stay within the paper's reported budget",
        scenarios: "high-variability",
        strategies: "HM",
        artifacts: &[],
        golden: None,
        trace_covered: false,
        audit_covered: false,
        fault_covered: false,
        ci_job: "manual",
    }
}

/// Looks an experiment up by registry id.
pub fn find(id: &str) -> Option<&'static ExperimentInfo> {
    ALL.iter().copied().find(|e| e.id == id)
}

static CURRENT: Mutex<Option<&'static ExperimentInfo>> = Mutex::new(None);

/// Declares `info` the running experiment. Binaries call this (directly
/// or through [`crate::Harness::for_experiment`]) before writing
/// artifacts, so [`crate::report::write_json`] can stamp them.
pub fn announce(info: &'static ExperimentInfo) {
    *CURRENT.lock().expect("registry lock poisoned") = Some(info);
}

/// The experiment announced by this process, if any.
pub fn current() -> Option<&'static ExperimentInfo> {
    *CURRENT.lock().expect("registry lock poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::path::Path;

    /// The repo root, from the bench crate's manifest directory.
    fn repo_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/bench sits two levels under the repo root")
    }

    #[test]
    fn every_binary_is_registered_exactly_once() {
        let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
        let mut stems = BTreeSet::new();
        for entry in std::fs::read_dir(&bin_dir).expect("src/bin exists") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                stems.insert(
                    path.file_stem()
                        .and_then(|s| s.to_str())
                        .expect("utf-8 stem")
                        .to_string(),
                );
            }
        }
        let ids: BTreeSet<String> = ALL.iter().map(|e| e.id.to_string()).collect();
        assert_eq!(ids.len(), ALL.len(), "duplicate registry ids");
        assert_eq!(
            ids, stems,
            "registry ids and src/bin/*.rs stems must match exactly"
        );
    }

    #[test]
    fn registered_goldens_and_committed_artifacts_exist() {
        let root = repo_root();
        for e in ALL {
            if let Some(golden) = e.golden {
                assert!(
                    root.join(golden).is_file(),
                    "{}: golden {golden} missing",
                    e.id
                );
            }
            for artifact in e.artifact_paths() {
                assert!(
                    root.join(&artifact).is_file(),
                    "{}: committed artifact {artifact} missing (run the binary and commit it)",
                    e.id
                );
            }
        }
    }

    #[test]
    fn artifact_stems_are_claimed_by_one_experiment() {
        let mut seen = BTreeSet::new();
        for e in ALL {
            for stem in e.artifacts {
                assert!(seen.insert(*stem), "artifact {stem} registered twice");
            }
        }
    }

    #[test]
    fn ci_jobs_use_known_names() {
        let jobs: BTreeSet<&str> = [
            "test",
            "perf",
            "perf-fleet",
            "smoke",
            "dashboard",
            "manual",
            "tenancy",
            "theory",
            "long-horizon",
        ]
        .into_iter()
        .collect();
        for e in ALL {
            assert!(
                jobs.contains(e.ci_job),
                "{}: unknown CI job {}",
                e.id,
                e.ci_job
            );
        }
    }

    #[test]
    fn announce_is_visible_process_wide() {
        announce(&REPLICATION);
        let cur = current().expect("announced");
        assert_eq!(cur.id, "replication");
        assert!(find("perf_fleet").is_some());
        assert!(find("no_such_bench").is_none());
        // Re-announcing moves the pointer (bins announce exactly once;
        // tests may announce repeatedly).
        announce(&PERF_HOTPATH);
        assert_eq!(current().expect("announced").id, "perf_hotpath");
        announce(&REPLICATION);
    }
}
