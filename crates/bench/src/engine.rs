//! The parallel experiment engine.
//!
//! Every point of every figure is an independent, deterministic
//! simulation: a `(scenario, strategy, config, seed)` tuple fully
//! determines its [`RunResult`]. This module turns that independence into
//! throughput. A binary describes its whole sweep as an
//! [`ExperimentPlan`] — a list of typed [`RunSpec`]s — and the [`Engine`]
//! fans the runs out across a scoped thread pool
//! (`std::thread::scope`; no extra dependencies), collecting results
//! **in plan order**, so the output is bit-identical to sequential
//! execution regardless of thread count:
//!
//! ```text
//! plan (Vec<RunSpec>) ──► shared scenario table (generated once, deduped)
//!                      ──► worker pool (HCLOUD_JOBS or available_parallelism)
//!                      ──► results indexed by plan position  +  telemetry
//! ```
//!
//! Determinism holds because each run draws only from its own
//! [`RngFactory`] (seeded from the spec) and reads an immutable shared
//! scenario; workers never share mutable state beyond the work-stealing
//! index. The collection key is the spec's plan index, assigned before
//! any thread starts.
//!
//! Ambient configuration (`HCLOUD_SEED`, `HCLOUD_FAST`, `HCLOUD_JOBS`,
//! `HCLOUD_TRACE`) is parsed once into an [`ExperimentCtx`]; malformed
//! values are a hard error rather than a silent fallback.
//!
//! With `HCLOUD_TRACE=full` every simulated run carries an enabled
//! [`Tracer`] and the outcome includes one [`RunTrace`] per plan index —
//! the structured event stream the harness writes under
//! `results/traces/`. Traces are stamped with sim time only, so they are
//! bit-identical for any `HCLOUD_JOBS` value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcloud::runner::{run_scenario_queued, RunCtx};

use crate::env::EnvOpts;
use hcloud::{MappingPolicy, RunConfig, RunResult, StrategyId, StrategyRef};
use hcloud_audit::{AuditMode, Auditor};
use hcloud_faults::{FaultPlan, FaultPlanId};
use hcloud_sim::event::QueueKind;
use hcloud_sim::rng::RngFactory;
use hcloud_telemetry::{
    MetricsRegistry, ProfSpan, ProfileSnapshot, Profiler, RunMeta, TraceEvent, TraceMode, Tracer,
};
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

/// The ambient experiment context: master seed, fast (smoke) mode, and
/// the worker-count override. One typed home for what used to be three
/// scattered `std::env::var` call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentCtx {
    /// The master seed every ambient-seeded run derives from
    /// (`HCLOUD_SEED`, default 42).
    pub master_seed: u64,
    /// Fast mode shrinks scenarios for smoke runs (`HCLOUD_FAST=1`).
    pub fast: bool,
    /// Explicit worker count (`HCLOUD_JOBS`); `None` uses
    /// `std::thread::available_parallelism`.
    pub jobs: Option<usize>,
    /// Telemetry mode (`HCLOUD_TRACE`): `off` (default), `summary`
    /// (phase spans on stderr), or `full` (spans + per-run flight
    /// recorder).
    pub trace: TraceMode,
    /// Ambient fault plan (`HCLOUD_FAULTS`): `off` (default) or a
    /// built-in plan name. Applied to every run whose spec does not set
    /// its own plan.
    pub faults: FaultPlanId,
    /// Conservation-audit mode (`HCLOUD_AUDIT`): `off` (default),
    /// `final` (identities checked at end of run) or `strict`
    /// (violations abort at the offending event).
    pub audit: AuditMode,
    /// Event-queue implementation (`HCLOUD_QUEUE`): `wheel` (timing
    /// wheel, default) or `heap`. Digest-identical either way; the knob
    /// trades only wall clock.
    pub queue: QueueKind,
    /// Strategy focus (`HCLOUD_STRATEGY`): restrict a binary's sweep to
    /// one registered strategy (registry id or short name); `None` runs
    /// the binary's full strategy set.
    pub strategy: Option<StrategyId>,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        ExperimentCtx {
            master_seed: 42,
            fast: false,
            jobs: None,
            trace: TraceMode::Off,
            faults: FaultPlanId::Off,
            audit: AuditMode::Off,
            queue: QueueKind::Wheel,
            strategy: None,
        }
    }
}

impl From<EnvOpts> for ExperimentCtx {
    fn from(opts: EnvOpts) -> Self {
        ExperimentCtx {
            master_seed: opts.seed,
            fast: opts.fast,
            jobs: opts.jobs,
            trace: opts.trace,
            faults: opts.faults,
            audit: opts.audit,
            queue: opts.queue,
            strategy: opts.strategy,
        }
    }
}

impl ExperimentCtx {
    /// A context with the given master seed and the defaults otherwise.
    pub fn new(master_seed: u64) -> Self {
        ExperimentCtx {
            master_seed,
            ..Default::default()
        }
    }

    /// Sets fast (smoke) mode.
    pub fn with_fast(mut self, fast: bool) -> Self {
        self.fast = fast;
        self
    }

    /// Pins the worker count (1 = sequential).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets the telemetry mode.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the ambient fault plan.
    pub fn with_faults(mut self, faults: FaultPlanId) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the conservation-audit mode.
    pub fn with_audit(mut self, audit: AuditMode) -> Self {
        self.audit = audit;
        self
    }

    /// Sets the event-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the strategy focus.
    pub fn with_strategy(mut self, strategy: StrategyId) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Parses the eight ambient variables. Malformed values are an error
    /// with a message naming the variable, the offending value, and what
    /// was expected — never a silent fallback.
    #[allow(clippy::too_many_arguments)]
    pub fn parse(
        seed: Option<&str>,
        fast: Option<&str>,
        jobs: Option<&str>,
        trace: Option<&str>,
        faults: Option<&str>,
        audit: Option<&str>,
        queue: Option<&str>,
        strategy: Option<&str>,
    ) -> Result<Self, String> {
        EnvOpts::parse(seed, fast, jobs, trace, faults, audit, queue, strategy).map(Self::from)
    }

    /// Reads `HCLOUD_SEED` / `HCLOUD_FAST` / `HCLOUD_JOBS` /
    /// `HCLOUD_TRACE` / `HCLOUD_FAULTS` / `HCLOUD_AUDIT` /
    /// `HCLOUD_QUEUE` / `HCLOUD_STRATEGY` from the environment.
    pub fn from_env() -> Result<Self, String> {
        EnvOpts::from_env().map(Self::from)
    }

    /// [`Self::from_env`] for binaries: prints the error and exits 2
    /// instead of running an experiment the user didn't configure.
    pub fn from_env_or_exit() -> Self {
        Self::from_env().unwrap_or_else(|message| {
            eprintln!("error: {message}");
            std::process::exit(2);
        })
    }

    /// The scenario configuration for `kind` under this context: paper
    /// scale normally, a scaled-down variant in fast mode.
    pub fn scenario_config(&self, kind: ScenarioKind) -> ScenarioConfig {
        if self.fast {
            ScenarioConfig::scaled(kind, 0.15, 25)
        } else {
            ScenarioConfig::paper(kind)
        }
    }

    /// Generates the scenario for `kind` under `seed` (ambient seed if
    /// `None`) in this context's scale.
    pub fn scenario(&self, kind: ScenarioKind, seed: Option<u64>) -> Scenario {
        let seed = seed.unwrap_or(self.master_seed);
        Scenario::generate(self.scenario_config(kind), &RngFactory::new(seed))
    }

    /// Worker threads for a plan of `runs` independent simulations.
    pub fn worker_count(&self, runs: usize) -> usize {
        let pool = self
            .jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        pool.min(runs).max(1)
    }
}

/// Where a [`RunSpec`] gets its scenario.
#[derive(Debug, Clone)]
enum ScenarioSource {
    /// Generated from the context (deduped across the plan by
    /// `(kind, seed)`).
    Kind(ScenarioKind),
    /// Provided by the caller (custom scale or sweep-generated).
    Explicit(Arc<Scenario>),
}

/// One experiment point: scenario, strategy + configuration, seed.
///
/// Build with the chained API and submit through an [`ExperimentPlan`]
/// (or [`crate::Harness::run`] for a single cached run):
///
/// ```no_run
/// use hcloud::StrategyKind;
/// use hcloud_bench::RunSpec;
/// use hcloud_workloads::ScenarioKind;
///
/// let spec = RunSpec::of(ScenarioKind::HighVariability, StrategyKind::HybridMixed)
///     .profiling(false)
///     .seed(7);
/// ```
#[derive(Debug, Clone)]
pub struct RunSpec {
    scenario: ScenarioSource,
    config: RunConfig,
    seed: Option<u64>,
    label: Option<String>,
}

impl RunSpec {
    /// A paper-default run of `strategy` (a [`StrategyRef`], a
    /// [`hcloud::StrategyKind`], or anything else convertible) on the
    /// generated scenario `kind`.
    pub fn of(kind: ScenarioKind, strategy: impl Into<StrategyRef>) -> RunSpec {
        RunSpec {
            scenario: ScenarioSource::Kind(kind),
            config: RunConfig::new(strategy),
            seed: None,
            label: None,
        }
    }

    /// A paper-default run of `strategy` on an explicitly provided
    /// scenario (custom scale, sensitivity sweeps, CLI scenario files).
    pub fn on(scenario: Arc<Scenario>, strategy: impl Into<StrategyRef>) -> RunSpec {
        RunSpec {
            scenario: ScenarioSource::Explicit(scenario),
            config: RunConfig::new(strategy),
            seed: None,
            label: None,
        }
    }

    /// Sets whether Quasar profiling information is available.
    pub fn profiling(mut self, profiling: bool) -> RunSpec {
        self.config = self.config.with_profiling(profiling);
        self
    }

    /// Sets the mapping policy.
    pub fn policy(mut self, policy: MappingPolicy) -> RunSpec {
        self.config = self.config.with_policy(policy);
        self
    }

    /// Pins this run's master seed (replication sweeps); defaults to the
    /// context's ambient seed.
    pub fn seed(mut self, seed: u64) -> RunSpec {
        self.seed = Some(seed);
        self
    }

    /// Replaces the whole run configuration (strategy included).
    pub fn config(mut self, config: RunConfig) -> RunSpec {
        self.config = config;
        self
    }

    /// Applies a [`RunConfig`] builder chain to this spec's
    /// configuration:
    /// `spec.map_config(|c| c.with_retention_mult(4.0))`.
    pub fn map_config(mut self, f: impl FnOnce(RunConfig) -> RunConfig) -> RunSpec {
        self.config = f(self.config);
        self
    }

    /// Sets this run's fault plan explicitly (overriding the ambient
    /// `HCLOUD_FAULTS` plan).
    pub fn faults(mut self, faults: FaultPlan) -> RunSpec {
        self.config = self.config.with_faults(faults);
        self
    }

    /// Attaches a human-readable label for telemetry output.
    pub fn label(mut self, label: impl Into<String>) -> RunSpec {
        self.label = Some(label.into());
        self
    }

    /// The run configuration.
    pub fn get_config(&self) -> &RunConfig {
        &self.config
    }

    /// The strategy under test.
    pub fn strategy(&self) -> StrategyRef {
        self.config.strategy.clone()
    }

    /// The scenario kind, when the engine generates the scenario.
    pub fn scenario_kind(&self) -> Option<ScenarioKind> {
        match &self.scenario {
            ScenarioSource::Kind(kind) => Some(*kind),
            ScenarioSource::Explicit(_) => None,
        }
    }

    /// The label shown in telemetry: explicit, or derived.
    fn display_label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let scenario = match &self.scenario {
            ScenarioSource::Kind(kind) => format!("{kind:?}"),
            ScenarioSource::Explicit(_) => "custom".to_string(),
        };
        match self.seed {
            Some(seed) => format!("{scenario}/{}/seed{seed}", self.config.strategy),
            None => format!("{scenario}/{}", self.config.strategy),
        }
    }

    /// The flight-recorder identity of this run under `ctx`.
    pub(crate) fn run_meta(&self, ctx: &ExperimentCtx) -> RunMeta {
        let scenario = match &self.scenario {
            ScenarioSource::Kind(kind) => format!("{kind:?}"),
            ScenarioSource::Explicit(_) => "custom".to_string(),
        };
        RunMeta {
            label: self.display_label(),
            scenario,
            strategy: self.config.strategy.to_string(),
            seed: self.seed.unwrap_or(ctx.master_seed),
        }
    }

    /// The configuration this spec actually runs under `ctx`: the spec's
    /// own, with the ambient `HCLOUD_FAULTS` plan layered onto runs that
    /// did not set one themselves.
    pub(crate) fn effective_config(&self, ctx: &ExperimentCtx) -> RunConfig {
        if ctx.faults != FaultPlanId::Off && self.config.faults.is_off() {
            self.config.clone().with_faults(ctx.faults.plan())
        } else {
            self.config.clone()
        }
    }

    /// In-process cache identity: the scenario source, seed, and the full
    /// effective configuration (via its `Debug` form, which round-trips
    /// every field including floats).
    pub(crate) fn cache_key(&self, ctx: &ExperimentCtx) -> String {
        let scenario = match &self.scenario {
            ScenarioSource::Kind(kind) => format!("kind:{kind:?}"),
            // Pointer identity: only valid in-process, which is exactly
            // the cache's lifetime. Distinct-but-equal scenarios miss the
            // cache (costing time, never correctness).
            ScenarioSource::Explicit(s) => format!("ptr:{:p}", Arc::as_ptr(s)),
        };
        format!(
            "{scenario}|seed:{}|{:?}",
            self.seed.unwrap_or(ctx.master_seed),
            self.effective_config(ctx)
        )
    }
}

/// An ordered list of [`RunSpec`]s submitted as one unit. Plan order is
/// the result order.
#[derive(Debug, Clone, Default)]
pub struct ExperimentPlan {
    specs: Vec<RunSpec>,
}

impl ExperimentPlan {
    /// An empty plan.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan::default()
    }

    /// Appends a run.
    pub fn push(&mut self, spec: RunSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specs, in plan order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }
}

impl From<Vec<RunSpec>> for ExperimentPlan {
    fn from(specs: Vec<RunSpec>) -> Self {
        ExperimentPlan { specs }
    }
}

impl FromIterator<RunSpec> for ExperimentPlan {
    fn from_iter<I: IntoIterator<Item = RunSpec>>(iter: I) -> Self {
        ExperimentPlan {
            specs: iter.into_iter().collect(),
        }
    }
}

/// Per-run telemetry: what one simulation cost.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// The spec's label.
    pub label: String,
    /// Wall-clock time of this simulation.
    pub wall: Duration,
    /// Events its discrete-event loop processed.
    pub events: usize,
    /// Incremental placement-index maintenance operations its scheduler
    /// performed.
    pub index_rebuilds: usize,
    /// Placement queries its scheduler answered straight from a
    /// maintained index.
    pub placement_fastpath: usize,
    /// Per-subsystem profiling spans (op counts are deterministic; wall
    /// clock is machine-dependent). Empty unless the context's trace
    /// mode reports spans.
    pub profile: ProfileSnapshot,
}

/// One run's recorded trace: identity plus the sim-time-ordered event
/// stream. Produced only under [`TraceMode::Full`].
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The run's flight-recorder identity (header line of its file).
    pub meta: RunMeta,
    /// The structured events, in sim-time order.
    pub events: Vec<TraceEvent>,
}

/// Plan-level telemetry: enough to see the fan-out working.
#[derive(Debug, Clone, Default)]
pub struct PlanTelemetry {
    /// Per-run details, in plan order (simulated runs only; cache hits
    /// don't appear).
    pub runs: Vec<RunTelemetry>,
    /// Wall-clock time of the whole plan.
    pub wall: Duration,
    /// Wall-clock time spent generating shared scenarios (the
    /// `scenario-gen` span).
    pub scenario_wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Runs served from the harness cache (always 0 at engine level).
    pub cache_hits: usize,
}

impl PlanTelemetry {
    /// Total simulation time across runs — what a sequential executor
    /// would have paid.
    pub fn cpu_time(&self) -> Duration {
        self.runs.iter().map(|r| r.wall).sum()
    }

    /// Total events processed across runs.
    pub fn total_events(&self) -> usize {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Total placement-index maintenance operations across runs.
    pub fn total_index_rebuilds(&self) -> usize {
        self.runs.iter().map(|r| r.index_rebuilds).sum()
    }

    /// Total index-served placement queries across runs.
    pub fn total_placement_fastpath(&self) -> usize {
        self.runs.iter().map(|r| r.placement_fastpath).sum()
    }

    /// Per-subsystem profiling spans summed across runs (empty unless
    /// the trace mode reports spans).
    pub fn total_profile(&self) -> ProfileSnapshot {
        let mut total = ProfileSnapshot::default();
        for run in &self.runs {
            total.absorb(&run.profile);
        }
        total
    }

    /// Observed parallel speedup: summed per-run time over plan
    /// wall-clock.
    pub fn speedup(&self) -> f64 {
        self.cpu_time().as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// The plan's cost, restated as a structured [`MetricsRegistry`]:
    /// counters for run / cache / event totals, gauges for the pool
    /// shape and per-phase wall-clock, and a streaming histogram of
    /// per-run simulation time.
    pub fn registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("runs_simulated", self.runs.len() as u64);
        reg.counter_add("cache_hits", self.cache_hits as u64);
        reg.counter_add("events_processed", self.total_events() as u64);
        reg.counter_add("index-rebuild", self.total_index_rebuilds() as u64);
        reg.counter_add("placement-fastpath", self.total_placement_fastpath() as u64);
        let profile = self.total_profile();
        for span in ProfSpan::ALL {
            reg.counter_add(&format!("prof_{}_ops", span.name()), profile.get(span).ops);
        }
        reg.gauge_set("workers", self.workers as f64);
        reg.gauge_set("plan_wall_s", self.wall.as_secs_f64());
        reg.gauge_set("scenario_gen_s", self.scenario_wall.as_secs_f64());
        for run in &self.runs {
            reg.observe("run_wall_s", run.wall.as_secs_f64());
        }
        reg
    }

    /// One summary line (print to stderr so figure output on stdout stays
    /// byte-identical across worker counts). Reads from
    /// [`Self::registry`], so the line and any serialized snapshot can
    /// never disagree.
    pub fn summary(&self) -> String {
        let reg = self.registry();
        let wall = reg.gauge("plan_wall_s").unwrap_or(0.0);
        let cpu = reg.histogram("run_wall_s").map_or(0.0, |h| h.sum());
        format!(
            "{} run(s) + {} cached on {} worker(s): {:.2}s wall, {:.2}s simulation ({:.2}x), {} events",
            reg.counter("runs_simulated"),
            reg.counter("cache_hits"),
            reg.gauge("workers").unwrap_or(0.0) as usize,
            wall,
            cpu,
            cpu / wall.max(1e-9),
            reg.counter("events_processed"),
        )
    }

    /// Merges another plan's telemetry into this one (session totals).
    pub fn absorb(&mut self, other: &PlanTelemetry) {
        self.runs.extend(other.runs.iter().cloned());
        self.wall += other.wall;
        self.scenario_wall += other.scenario_wall;
        self.workers = self.workers.max(other.workers);
        self.cache_hits += other.cache_hits;
    }
}

/// A completed plan: results in plan order plus telemetry.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// One result per spec, at the spec's plan index.
    pub results: Vec<RunResult>,
    /// One trace per spec under [`TraceMode::Full`] (plan-index aligned;
    /// all `None` otherwise).
    pub traces: Vec<Option<RunTrace>>,
    /// What it cost.
    pub telemetry: PlanTelemetry,
}

/// The execution layer: resolves scenarios, fans runs out, collects
/// deterministically.
#[derive(Debug, Clone)]
pub struct Engine {
    ctx: ExperimentCtx,
}

impl Engine {
    /// An engine under `ctx`.
    pub fn new(ctx: ExperimentCtx) -> Engine {
        Engine { ctx }
    }

    /// The context.
    pub fn ctx(&self) -> &ExperimentCtx {
        &self.ctx
    }

    /// Generates (once) every scenario the plan needs, keyed by
    /// `(kind, seed)`. Sequential and deterministic: generation order is
    /// plan order.
    fn scenario_table(&self, plan: &ExperimentPlan) -> HashMap<(ScenarioKind, u64), Arc<Scenario>> {
        let mut table = HashMap::new();
        for spec in &plan.specs {
            if let ScenarioSource::Kind(kind) = &spec.scenario {
                let seed = spec.seed.unwrap_or(self.ctx.master_seed);
                table
                    .entry((*kind, seed))
                    .or_insert_with(|| Arc::new(self.ctx.scenario(*kind, Some(seed))));
            }
        }
        table
    }

    /// Runs the whole plan, fanning independent simulations across up to
    /// `ctx.worker_count(plan.len())` scoped threads. Results come back
    /// in plan order and are bit-identical for any worker count.
    ///
    /// An audit violation (`HCLOUD_AUDIT=final`/`strict`) is a hard
    /// failure: the message is printed and the process exits 3 — a run
    /// that broke a conservation identity must never land in a figure.
    /// Use [`Engine::try_run_plan`] to handle the error instead.
    pub fn run_plan(&self, plan: &ExperimentPlan) -> PlanOutcome {
        self.try_run_plan(plan).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            std::process::exit(3);
        })
    }

    /// [`Engine::run_plan`], but an audit violation comes back as
    /// `Err("run <label>: <violation>")` (the first failing plan index
    /// wins) instead of terminating the process.
    pub fn try_run_plan(&self, plan: &ExperimentPlan) -> Result<PlanOutcome, String> {
        let started = Instant::now();
        let scenarios = self.scenario_table(plan);
        let scenario_wall = started.elapsed();
        let n = plan.len();
        let workers = self.ctx.worker_count(n);
        let tracing = self.ctx.trace.records_events();
        let profiling = self.ctx.trace.reports_spans();
        let audit = self.ctx.audit;

        type RunOut = Result<(RunResult, RunTelemetry, Option<RunTrace>), String>;
        let execute = |spec: &RunSpec| -> RunOut {
            let seed = spec.seed.unwrap_or(self.ctx.master_seed);
            let scenario: &Scenario = match &spec.scenario {
                ScenarioSource::Kind(kind) => &scenarios[&(*kind, seed)],
                ScenarioSource::Explicit(s) => s,
            };
            let factory = RngFactory::new(seed);
            let config = spec.effective_config(&self.ctx);
            let run_started = Instant::now();
            let profiler = if profiling {
                Profiler::enabled()
            } else {
                Profiler::disabled()
            };
            let (result, trace) = if tracing || profiling || audit.is_enabled() {
                let tracer = if tracing {
                    Tracer::enabled()
                } else {
                    Tracer::disabled()
                };
                let auditor = Auditor::new(audit);
                let result = run_scenario_queued(
                    self.ctx.queue,
                    scenario,
                    &config,
                    &RunCtx::new(&factory)
                        .with_tracer(&tracer)
                        .with_auditor(&auditor)
                        .with_profiler(&profiler),
                )
                .map_err(|violation| format!("run {}: {violation}", spec.display_label()))?;
                let trace = tracing.then(|| RunTrace {
                    meta: spec.run_meta(&self.ctx),
                    events: tracer.take(),
                });
                (result, trace)
            } else {
                (
                    run_scenario_queued(self.ctx.queue, scenario, &config, &RunCtx::new(&factory))
                        .expect("no auditor attached"),
                    None,
                )
            };
            let telemetry = RunTelemetry {
                label: spec.display_label(),
                wall: run_started.elapsed(),
                events: result.counters.events_processed,
                index_rebuilds: result.counters.index_rebuilds,
                placement_fastpath: result.counters.placement_fastpath,
                profile: profiler.snapshot(),
            };
            Ok((result, telemetry, trace))
        };

        let mut slots: Vec<Option<RunOut>> = Vec::new();
        slots.resize_with(n, || None);

        if workers <= 1 {
            for (slot, spec) in slots.iter_mut().zip(&plan.specs) {
                *slot = Some(execute(spec));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, execute(&plan.specs[i])));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    let local = handle.join().expect("engine worker panicked");
                    for (i, run) in local {
                        slots[i] = Some(run);
                    }
                }
            });
        }

        let mut results = Vec::with_capacity(n);
        let mut runs = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        for slot in slots {
            let (result, telemetry, trace) = slot.expect("every plan index executed")?;
            results.push(result);
            runs.push(telemetry);
            traces.push(trace);
        }
        let telemetry = PlanTelemetry {
            runs,
            wall: started.elapsed(),
            scenario_wall,
            workers,
            cache_hits: 0,
        };
        // Feed the deterministic op counts into the process-wide totals
        // the artifact stamp reads; plan-level aggregation keeps the
        // stamped counts independent of worker count.
        crate::artifacts::add_profile(&telemetry.total_profile());
        Ok(PlanOutcome {
            results,
            traces,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud::StrategyKind;

    #[test]
    fn ctx_defaults_match_legacy_behaviour() {
        let ctx = ExperimentCtx::parse(None, None, None, None, None, None, None, None).unwrap();
        assert_eq!(ctx.master_seed, 42);
        assert!(!ctx.fast);
        assert_eq!(ctx.jobs, None);
        assert_eq!(ctx.trace, TraceMode::Off);
        assert_eq!(ctx.faults, FaultPlanId::Off);
        assert_eq!(ctx.audit, AuditMode::Off);
        assert_eq!(ctx.queue, QueueKind::Wheel);
        assert_eq!(ctx.strategy, None);
    }

    #[test]
    fn ctx_parses_explicit_values() {
        let ctx = ExperimentCtx::parse(
            Some("7"),
            Some("1"),
            Some("3"),
            Some("full"),
            Some("full-chaos"),
            Some("strict"),
            Some("heap"),
            Some("RA"),
        )
        .unwrap();
        assert_eq!(ctx.master_seed, 7);
        assert!(ctx.fast);
        assert_eq!(ctx.jobs, Some(3));
        assert_eq!(ctx.trace, TraceMode::Full);
        assert_eq!(ctx.faults, FaultPlanId::FullChaos);
        assert_eq!(ctx.audit, AuditMode::Strict);
        assert_eq!(ctx.queue, QueueKind::Heap);
        assert_eq!(
            ctx.strategy.map(|s| s.as_str()),
            Some("reservation-autoscale")
        );
        let ctx = ExperimentCtx::parse(
            None,
            Some("0"),
            None,
            Some("summary"),
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(!ctx.fast);
        assert_eq!(ctx.trace, TraceMode::Summary);
        let ctx = ExperimentCtx::parse(
            None,
            None,
            None,
            Some("off"),
            Some("off"),
            Some("final"),
            Some("wheel"),
            None,
        )
        .unwrap();
        assert_eq!(ctx.trace, TraceMode::Off);
        assert_eq!(ctx.faults, FaultPlanId::Off);
        assert_eq!(ctx.audit, AuditMode::Final);
        assert_eq!(ctx.queue, QueueKind::Wheel);
        assert_eq!(ctx.strategy, None);
    }

    #[test]
    fn ctx_rejects_malformed_values_loudly() {
        let e = ExperimentCtx::parse(Some("banana"), None, None, None, None, None, None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_SEED") && e.contains("banana"), "{e}");
        let e = ExperimentCtx::parse(None, Some("yes"), None, None, None, None, None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_FAST") && e.contains("yes"), "{e}");
        let e =
            ExperimentCtx::parse(None, None, Some("0"), None, None, None, None, None).unwrap_err();
        assert!(e.contains("HCLOUD_JOBS"), "{e}");
        let e = ExperimentCtx::parse(None, None, Some("many"), None, None, None, None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_JOBS") && e.contains("many"), "{e}");
        let e = ExperimentCtx::parse(None, None, None, Some("loud"), None, None, None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_TRACE") && e.contains("loud"), "{e}");
        let e = ExperimentCtx::parse(None, None, None, None, Some("mayhem"), None, None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_FAULTS") && e.contains("mayhem"), "{e}");
        let e = ExperimentCtx::parse(None, None, None, None, None, Some("paranoid"), None, None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_AUDIT") && e.contains("paranoid"), "{e}");
        let e = ExperimentCtx::parse(None, None, None, None, None, None, Some("stack"), None)
            .unwrap_err();
        assert!(e.contains("HCLOUD_QUEUE") && e.contains("stack"), "{e}");
        let e = ExperimentCtx::parse(None, None, None, None, None, None, None, Some("bogus"))
            .unwrap_err();
        assert!(e.contains("HCLOUD_STRATEGY") && e.contains("bogus"), "{e}");
    }

    #[test]
    fn heap_queue_runs_are_digest_identical_to_wheel() {
        let plan = ExperimentPlan::from(vec![RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::HybridMixed,
        )]);
        let ctx = ExperimentCtx::new(42).with_fast(true).with_jobs(1);
        let wheel = Engine::new(ctx).run_plan(&plan);
        let heap = Engine::new(ctx.with_queue(QueueKind::Heap)).run_plan(&plan);
        assert_eq!(wheel.results, heap.results);
    }

    #[test]
    fn ambient_fault_plan_changes_cache_key_but_respects_explicit_plans() {
        let off = ExperimentCtx::new(42);
        let chaotic = ExperimentCtx::new(42).with_faults(FaultPlanId::FullChaos);
        let spec = RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed);
        assert_ne!(spec.cache_key(&off), spec.cache_key(&chaotic));
        assert!(spec.effective_config(&off).faults.is_off());
        assert!(!spec.effective_config(&chaotic).faults.is_off());
        // A spec-level plan wins over the ambient one.
        let pinned = spec.clone().faults(FaultPlanId::FlakySpinups.plan());
        assert_eq!(
            pinned.effective_config(&chaotic).faults.name,
            "flaky-spinups"
        );
    }

    #[test]
    fn worker_count_clamps_to_plan_size() {
        let ctx = ExperimentCtx::new(1).with_jobs(8);
        assert_eq!(ctx.worker_count(3), 3);
        assert_eq!(ctx.worker_count(0), 1);
        assert_eq!(ctx.worker_count(100), 8);
    }

    #[test]
    fn specs_build_and_label() {
        let spec = RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed)
            .profiling(false)
            .seed(9);
        assert!(!spec.get_config().profiling);
        assert_eq!(spec.strategy(), StrategyKind::HybridMixed);
        assert_eq!(spec.scenario_kind(), Some(ScenarioKind::Static));
        assert!(spec.display_label().contains("seed9"));
        let labelled = spec.label("custom-label");
        assert_eq!(labelled.display_label(), "custom-label");
    }

    #[test]
    fn cache_keys_distinguish_configs_and_seeds() {
        let ctx = ExperimentCtx::new(42);
        let a = RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed);
        let b = a.clone().profiling(false);
        let c = a.clone().seed(43);
        let d = a.clone().map_config(|c| c.with_retention_mult(4.0));
        let keys: Vec<String> = [&a, &b, &c, &d].iter().map(|s| s.cache_key(&ctx)).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "specs {i} and {j} collide");
            }
        }
        // Ambient seed is explicit in the key, so seed(42) == default.
        assert_eq!(a.cache_key(&ctx), a.clone().seed(42).cache_key(&ctx));
    }

    #[test]
    fn parallel_results_match_sequential_and_plan_order() {
        let mut plan = ExperimentPlan::new();
        for strategy in [StrategyKind::StaticReserved, StrategyKind::HybridMixed] {
            for seed in [1u64, 2] {
                plan.push(RunSpec::of(ScenarioKind::Static, strategy).seed(seed));
            }
        }
        let ctx = ExperimentCtx::new(42).with_fast(true);
        let seq = Engine::new(ctx.with_jobs(1)).run_plan(&plan);
        let par = Engine::new(ctx.with_jobs(4)).run_plan(&plan);
        assert_eq!(seq.results, par.results);
        assert_eq!(seq.results.len(), 4);
        assert_eq!(par.telemetry.workers, 4);
        // The placement-index counters are deterministic across worker
        // counts and actually fire on the hybrid runs.
        for (s, p) in seq.results.iter().zip(&par.results) {
            assert_eq!(s.counters.index_rebuilds, p.counters.index_rebuilds);
            assert_eq!(s.counters.placement_fastpath, p.counters.placement_fastpath);
        }
        assert!(
            seq.results.iter().any(|r| r.counters.index_rebuilds > 0),
            "hybrid runs must exercise the on-demand indices"
        );
        // Plan order: spec i's strategy at result i.
        for (spec, result) in plan.specs().iter().zip(&seq.results) {
            assert_eq!(spec.strategy(), result.strategy);
        }
        assert!(seq.telemetry.total_events() > 0);
        // Off mode records no traces.
        assert!(seq.traces.iter().all(Option::is_none));
    }

    #[test]
    fn full_trace_mode_records_every_run() {
        let mut plan = ExperimentPlan::new();
        plan.push(RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed).seed(3));
        plan.push(RunSpec::of(ScenarioKind::Static, StrategyKind::StaticReserved).seed(3));
        let ctx = ExperimentCtx::new(42)
            .with_fast(true)
            .with_trace(TraceMode::Full);
        let outcome = Engine::new(ctx.with_jobs(1)).run_plan(&plan);
        assert_eq!(outcome.traces.len(), 2);
        for (spec, trace) in plan.specs().iter().zip(&outcome.traces) {
            let trace = trace.as_ref().expect("full mode traces every run");
            assert!(!trace.events.is_empty());
            assert_eq!(trace.meta.seed, 3);
            assert_eq!(trace.meta.scenario, "Static");
            assert_eq!(trace.meta.label, spec.display_label());
        }
        // Tracing never perturbs results.
        let plain =
            Engine::new(ExperimentCtx::new(42).with_fast(true).with_jobs(1)).run_plan(&plan);
        assert_eq!(plain.results, outcome.results);
    }

    #[test]
    fn registry_restates_the_summary() {
        let mut plan = ExperimentPlan::new();
        plan.push(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ));
        let ctx = ExperimentCtx::new(42).with_fast(true).with_jobs(1);
        let outcome = Engine::new(ctx).run_plan(&plan);
        let reg = outcome.telemetry.registry();
        assert_eq!(reg.counter("runs_simulated"), 1);
        assert_eq!(reg.counter("cache_hits"), 0);
        assert_eq!(
            reg.counter("events_processed") as usize,
            outcome.telemetry.total_events()
        );
        assert_eq!(reg.gauge("workers"), Some(1.0));
        assert_eq!(reg.histogram("run_wall_s").unwrap().count(), 1);
        let summary = outcome.telemetry.summary();
        assert!(
            summary.starts_with("1 run(s) + 0 cached on 1 worker(s):"),
            "{summary}"
        );
    }

    #[test]
    fn strict_audit_plan_succeeds_and_matches_unaudited_results() {
        let mut plan = ExperimentPlan::new();
        plan.push(RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed).seed(5));
        plan.push(RunSpec::of(ScenarioKind::HighVariability, StrategyKind::OnDemandMixed).seed(5));
        let ctx = ExperimentCtx::new(42).with_fast(true).with_jobs(2);
        let plain = Engine::new(ctx).run_plan(&plan);
        let audited = Engine::new(ctx.with_audit(AuditMode::Strict))
            .try_run_plan(&plan)
            .expect("clean runs pass a strict audit");
        // Auditing observes the run; it never perturbs it.
        assert_eq!(plain.results, audited.results);
    }

    #[test]
    fn summary_profiling_never_perturbs_results_and_counts_spans() {
        let mut plan = ExperimentPlan::new();
        plan.push(RunSpec::of(ScenarioKind::Static, StrategyKind::HybridMixed).seed(8));
        plan.push(RunSpec::of(ScenarioKind::LowVariability, StrategyKind::OnDemandFull).seed(8));
        let ctx = ExperimentCtx::new(42).with_fast(true).with_jobs(2);
        let plain = Engine::new(ctx).run_plan(&plan);
        let profiled = Engine::new(ctx.with_trace(TraceMode::Summary)).run_plan(&plan);
        // Profiling observes the run; it never perturbs it.
        assert_eq!(plain.results, profiled.results);
        // Off mode keeps the profiler fully disabled...
        assert!(plain.telemetry.total_profile().is_empty());
        // ...while summary mode times every span of every run, and the
        // deterministic ops counts surface as registry counters.
        let profile = profiled.telemetry.total_profile();
        for span in ProfSpan::ALL {
            assert!(
                profile.get(span).ops > 0,
                "span {} never fired",
                span.name()
            );
        }
        let reg = profiled.telemetry.registry();
        assert_eq!(
            reg.counter("prof_find-placement_ops"),
            profile.get(ProfSpan::FindPlacement).ops
        );
        assert_eq!(
            reg.counter("prof_event-pop_ops"),
            profile.get(ProfSpan::EventPop).ops
        );
    }
}
