//! Figure 3 / Table 2: the three workload scenarios.
//!
//! Prints the target required-core curves (Figure 3) as sparklines plus a
//! resampled series, and the measured Table 2 characteristics of the
//! generated job streams.

use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{paper_scenario, sparkline, write_json, ExperimentCtx, Table};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG03_TAB02;

fn main() -> std::process::ExitCode {
    registry::announce(INFO);
    let ctx = ExperimentCtx::from_env_or_exit();
    println!("Figure 3: the three workload scenarios (required cores over time)\n");
    let step = SimDuration::from_mins(2);
    let mut json_rows: Vec<Vec<f64>> = Vec::new();
    let mut curves: Vec<(ScenarioKind, Vec<f64>)> = Vec::new();
    for kind in ScenarioKind::ALL {
        let config = ctx.scenario_config(kind);
        let mut series = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= SimTime::ZERO + config.duration {
            series.push(config.target_cores(t));
            t += step;
        }
        println!("{:>16}: {}", kind.name(), sparkline(&series));
        curves.push((kind, series));
    }
    let n = curves[0].1.len();
    for i in 0..n {
        let minutes = (i as f64) * step.as_mins_f64();
        json_rows.push(vec![
            minutes,
            curves[0].1[i],
            curves[1].1[i],
            curves[2].1[i],
        ]);
    }
    write_json(
        "fig03_scenarios",
        &["minute", "static", "low_var", "high_var"],
        &json_rows,
    );

    println!(
        "\nTable 2: workload scenario characteristics (measured from the generated streams)\n"
    );
    let mut t2 = Table::new(vec!["", "Static", "Low Var", "High Var"]);
    let stats: Vec<_> = ScenarioKind::ALL
        .iter()
        .map(|&k| paper_scenario(k).stats())
        .collect();
    t2.row(
        std::iter::once("max:min resources ratio".to_string())
            .chain(stats.iter().map(|s| format!("{:.1}x", s.max_min_ratio)))
            .collect(),
    );
    t2.row(
        std::iter::once("batch:low-latency - in jobs".to_string())
            .chain(
                stats
                    .iter()
                    .map(|s| format!("{:.1}x", s.batch_lc_job_ratio)),
            )
            .collect(),
    );
    t2.row(
        std::iter::once("         - in core-seconds".to_string())
            .chain(
                stats
                    .iter()
                    .map(|s| format!("{:.1}x", s.batch_lc_core_ratio)),
            )
            .collect(),
    );
    t2.row(
        std::iter::once("mean job duration (min)".to_string())
            .chain(stats.iter().map(|s| format!("{:.1}", s.mean_duration_mins)))
            .collect(),
    );
    t2.row(
        std::iter::once("jobs generated".to_string())
            .chain(stats.iter().map(|s| format!("{}", s.job_count)))
            .collect(),
    );
    let ideal: Vec<String> = ScenarioKind::ALL
        .iter()
        .map(|&k| format!("{:.1}", paper_scenario(k).ideal_completion().as_hours_f64()))
        .collect();
    t2.row(
        std::iter::once("ideal completion time (hr)".to_string())
            .chain(ideal)
            .collect(),
    );
    println!("{t2}");
    println!("(paper: ratios 1.1x/1.5x/6.2x, jobs 4.2x/3.6x/4.1x, cores 1.4x/1.4x/1.5x, ideal ~2.1/2.0/2.0 hr)");
    hcloud_bench::artifacts::exit_code()
}
