//! Statistical replication of the headline results across seeds.
//!
//! Single-run numbers can be flattered by one lucky seed. This binary
//! re-runs the high-variability comparison over ten master seeds and
//! reports mean ± standard deviation for every headline metric, plus the
//! worst-case seed — the reproduction's claims should survive all of
//! them.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::stats::OnlineStats;
use hcloud_workloads::ScenarioKind;

const SEEDS: [u64; 10] = [42, 7, 11, 21, 33, 99, 123, 2024, 31337, 271828];

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::REPLICATION;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let model = PricingModel::aws();
    println!(
        "Replication: headline metrics over {} seeds, high-variability scenario\n",
        SEEDS.len()
    );

    // Per-strategy accumulators.
    let mut perf: Vec<OnlineStats> = vec![OnlineStats::new(); 5];
    let mut degradation: Vec<OnlineStats> = vec![OnlineStats::new(); 5];
    let mut cost: Vec<OnlineStats> = vec![OnlineStats::new(); 5];
    // Headline ratios per seed.
    let mut hm_within = OnlineStats::new();
    let mut odm_vs_sr = OnlineStats::new();
    let mut hm_vs_odm = OnlineStats::new();
    let mut util = OnlineStats::new();
    let mut worst_hm_within = f64::MIN;
    let mut json: Vec<Vec<f64>> = Vec::new();

    // All 50 runs (10 seeds x 5 strategies) fan out as one plan.
    let plan: hcloud_bench::ExperimentPlan = SEEDS
        .iter()
        .flat_map(|&seed| {
            StrategyKind::ALL
                .iter()
                .map(move |&s| RunSpec::of(ScenarioKind::HighVariability, s).seed(seed))
        })
        .collect();
    let results = h.run_plan(plan);

    for (sidx, &seed) in SEEDS.iter().enumerate() {
        let runs = &results[sidx * StrategyKind::ALL.len()..(sidx + 1) * StrategyKind::ALL.len()];
        let mut jrow = vec![seed as f64];
        for (i, r) in runs.iter().enumerate() {
            perf[i].record(r.mean_normalized_perf());
            degradation[i].record(r.mean_degradation());
            cost[i].record(r.cost(&rates, &model).total());
            jrow.push(r.mean_degradation());
        }
        json.push(jrow);
        let sr = runs[0].mean_degradation();
        let odm = runs[2].mean_degradation();
        let hm = runs[4].mean_degradation();
        let within =
            (runs[4].mean_normalized_perf() / runs[0].mean_normalized_perf() - 1.0).abs() * 100.0;
        hm_within.record(within);
        worst_hm_within = worst_hm_within.max(within);
        odm_vs_sr.record(odm / sr);
        hm_vs_odm.record(odm / hm);
        if let Some(u) = runs[4].mean_reserved_utilization() {
            util.record(u * 100.0);
        }
    }

    let fmt = |s: &OnlineStats| {
        format!(
            "{:.3} ± {:.3}",
            s.mean().unwrap_or(f64::NAN),
            s.std_dev().unwrap_or(f64::NAN)
        )
    };
    let mut t = Table::new(vec![
        "strategy",
        "mean perf",
        "mean degradation",
        "run cost $",
    ]);
    for (i, strategy) in StrategyKind::ALL.iter().enumerate() {
        t.row(vec![
            strategy.short_name().into(),
            fmt(&perf[i]),
            fmt(&degradation[i]),
            fmt(&cost[i]),
        ]);
    }
    println!("{t}");

    println!("Headline checks across seeds (mean ± std, worst seed):");
    println!(
        "  OdM degradation vs SR: {}x (paper: 2.2x)",
        fmt(&odm_vs_sr)
    );
    println!(
        "  HM improvement vs OdM: {}x (paper: 2.1x)",
        fmt(&hm_vs_odm)
    );
    println!(
        "  HM gap to SR: {}% — worst seed {:.1}% (paper: within 8%)",
        fmt(&hm_within),
        worst_hm_within
    );
    println!("  HM reserved utilization: {}% (paper: ~80%)", fmt(&util));
    write_json(
        "replication",
        &["seed", "SR_deg", "OdF_deg", "OdM_deg", "HF_deg", "HM_deg"],
        &json,
    );
    h.finish("replication")
}
