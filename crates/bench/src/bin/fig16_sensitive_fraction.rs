//! Figure 16: performance and cost sensitivity to workload
//! characteristics — the fraction of interference-sensitive applications
//! (memcached + real-time Spark) sweeps 0–100% on the high-variability
//! scenario.

use std::sync::Arc;

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::{Scenario, ScenarioKind};

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG16;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let factory = h.factory();
    let rates = Rates::default();
    let model = PricingModel::aws();
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    println!("Figure 16: sensitivity to the fraction of interference-sensitive jobs\n");
    let mut perf_t = Table::new(vec!["sensitive %", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut cost_t = Table::new(vec!["sensitive %", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();

    // One modified scenario per sweep point, all runs in one plan
    // (plus the unmodified static-SR cost baseline).
    let scenarios: Vec<Arc<Scenario>> = fractions
        .iter()
        .map(|&f| {
            let mut config = h.ctx().scenario_config(ScenarioKind::HighVariability);
            config.sensitive_fraction = Some(f);
            Arc::new(Scenario::generate(config, &factory))
        })
        .collect();
    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(
        ScenarioKind::Static,
        StrategyKind::StaticReserved,
    ));
    for scenario in &scenarios {
        for strategy in StrategyKind::ALL {
            plan.push(RunSpec::on(Arc::clone(scenario), strategy));
        }
    }
    h.run_plan(plan);

    // Cost baseline: the unmodified static scenario under SR.
    let baseline_cost = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &model)
        .total();

    for (scenario, &f) in scenarios.iter().zip(&fractions) {
        let mut perf_row = vec![format!("{:.0}", f * 100.0)];
        let mut cost_row = vec![format!("{:.0}", f * 100.0)];
        let mut jrow = vec![f * 100.0];
        for strategy in StrategyKind::ALL {
            let r = h.run(RunSpec::on(Arc::clone(scenario), strategy));
            let p = r.p95_normalized_perf() * 100.0;
            let c = r.cost(&rates, &model).total() / baseline_cost;
            perf_row.push(format!("{p:.0}"));
            cost_row.push(format!("{c:.2}"));
            jrow.push(p);
            jrow.push(c);
        }
        perf_t.row(perf_row);
        cost_t.row(cost_row);
        json.push(jrow);
    }
    println!("p95 performance normalized to isolation (%):\n{perf_t}");
    println!("cost normalized to static-SR:\n{cost_t}");
    println!("(paper: SR behaves well throughout — provisioned for peak, no external");
    println!(" load; hybrids hold up until ~80% sensitive jobs, when reserved");
    println!(" queueing bites; the on-demand strategies degrade the most, and all");
    println!(" strategies except SR grow more expensive as sensitivity rises)");
    write_json(
        "fig16_sensitive",
        &[
            "sensitive_pct",
            "SR_perf",
            "SR_cost",
            "OdF_perf",
            "OdF_cost",
            "OdM_perf",
            "OdM_cost",
            "HF_perf",
            "HF_cost",
            "HM_perf",
            "HM_cost",
        ],
        &json,
    );
    h.finish("fig16")
}
