//! Figure 16: performance and cost sensitivity to workload
//! characteristics — the fraction of interference-sensitive applications
//! (memcached + real-time Spark) sweeps 0–100% on the high-variability
//! scenario.

use hcloud::{runner::run_scenario, RunConfig, StrategyKind};
use hcloud_bench::{harness, write_json, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioKind};

fn main() {
    let factory = RngFactory::new(harness::master_seed());
    let rates = Rates::default();
    let model = PricingModel::aws();
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    println!("Figure 16: sensitivity to the fraction of interference-sensitive jobs\n");
    let mut perf_t = Table::new(vec!["sensitive %", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut cost_t = Table::new(vec!["sensitive %", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();

    // Cost baseline: the unmodified static scenario under SR.
    let static_scenario = harness::paper_scenario(ScenarioKind::Static);
    let baseline_cost = run_scenario(
        &static_scenario,
        &RunConfig::new(StrategyKind::StaticReserved),
        &factory,
    )
    .cost(&rates, &model)
    .total();

    for &f in &fractions {
        let mut config = harness::scenario_config(ScenarioKind::HighVariability);
        config.sensitive_fraction = Some(f);
        let scenario = Scenario::generate(config, &factory);
        let mut perf_row = vec![format!("{:.0}", f * 100.0)];
        let mut cost_row = vec![format!("{:.0}", f * 100.0)];
        let mut jrow = vec![f * 100.0];
        for strategy in StrategyKind::ALL {
            let r = run_scenario(&scenario, &RunConfig::new(strategy), &factory);
            let p = r.p95_normalized_perf() * 100.0;
            let c = r.cost(&rates, &model).total() / baseline_cost;
            perf_row.push(format!("{p:.0}"));
            cost_row.push(format!("{c:.2}"));
            jrow.push(p);
            jrow.push(c);
        }
        perf_t.row(perf_row);
        cost_t.row(cost_row);
        json.push(jrow);
    }
    println!("p95 performance normalized to isolation (%):\n{perf_t}");
    println!("cost normalized to static-SR:\n{cost_t}");
    println!("(paper: SR behaves well throughout — provisioned for peak, no external");
    println!(" load; hybrids hold up until ~80% sensitive jobs, when reserved");
    println!(" queueing bites; the on-demand strategies degrade the most, and all");
    println!(" strategies except SR grow more expensive as sensitivity rises)");
    write_json(
        "fig16_sensitive",
        &[
            "sensitive_pct",
            "SR_perf",
            "SR_cost",
            "OdF_perf",
            "OdF_cost",
            "OdM_perf",
            "OdM_cost",
            "HF_perf",
            "HF_cost",
            "HM_perf",
            "HM_cost",
        ],
        &json,
    );
}
