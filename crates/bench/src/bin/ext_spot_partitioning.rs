//! Section 5.5 extensions: spot instances and resource partitioning.
//!
//! The paper defers both to future work; this binary quantifies them in
//! our reproduction.
//!
//! * **Spot instances**: HM routes tolerant batch jobs' *new* on-demand
//!   acquisitions to the spot market. Sweep the bid multiplier: lower
//!   bids save more per hour but get terminated by market spikes
//!   (terminated jobs are evacuated to regular on-demand capacity,
//!   losing at most one checkpoint interval of progress).
//! * **Resource partitioning**: cache/memory-bandwidth/network caps
//!   shield shared instances from that fraction of external pressure.
//!   Sweep the isolation degree and watch OdM — the strategy whose
//!   weakness is exactly this unpredictability — recover.

use hcloud::config::SpotPolicy;
use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_SPOT_PARTITIONING;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    let rates = Rates::default();
    let model = PricingModel::aws();

    let bids = [0.36, 0.40, 0.45, 0.60, 1.00, 2.00];
    let isolations = [0.0, 0.25, 0.5, 0.75, 1.0];
    let spot_spec = |bid| {
        RunSpec::of(kind, StrategyKind::HybridMixed).map_config(move |c| {
            c.with_spot(SpotPolicy {
                bid_multiplier: bid,
                max_quality: 0.80,
            })
        })
    };
    let partition_spec =
        |strategy, iso| RunSpec::of(kind, strategy).map_config(move |c| c.with_partitioning(iso));
    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(kind, StrategyKind::HybridMixed));
    for &bid in &bids {
        plan.push(spot_spec(bid));
    }
    for &iso in &isolations {
        for strategy in [StrategyKind::OnDemandMixed, StrategyKind::HybridMixed] {
            plan.push(partition_spec(strategy, iso));
        }
    }
    h.run_plan(plan);

    println!("Extension A: spot instances under HM (high variability)\n");
    let base = h.run(RunSpec::of(kind, StrategyKind::HybridMixed));
    let base_cost = base.cost(&rates, &model).total();
    let mut t = Table::new(vec![
        "bid (x od)",
        "perf",
        "cost vs HM",
        "spot acquired",
        "terminations",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    t.row(vec![
        "no spot".into(),
        format!("{:.3}", base.mean_normalized_perf()),
        "100%".into(),
        "0".into(),
        "0".into(),
    ]);
    for &bid in &bids {
        let r = h.run(spot_spec(bid));
        let cost = r.cost(&rates, &model).total();
        t.row(vec![
            format!("{bid:.2}"),
            format!("{:.3}", r.mean_normalized_perf()),
            format!("{:.0}%", cost / base_cost * 100.0),
            format!("{}", r.counters.spot_acquired),
            format!("{}", r.counters.spot_terminations),
        ]);
        json.push(vec![
            bid,
            r.mean_normalized_perf(),
            cost / base_cost,
            r.counters.spot_acquired as f64,
            r.counters.spot_terminations as f64,
        ]);
    }
    println!("{t}");
    println!("(very low bids churn through terminations; bids near the on-demand");
    println!(" price stop saving; the sweet spot sits around 0.5-1.0x)\n");
    write_json(
        "ext_spot_bids",
        &["bid", "perf", "cost_vs_hm", "spot_acquired", "terminations"],
        &json,
    );

    println!("Extension B: resource partitioning (high variability)\n");
    let mut t = Table::new(vec![
        "isolation",
        "OdM perf",
        "OdM lc mean (µs)",
        "HM perf",
        "HM lc mean (µs)",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for &iso in &isolations {
        let mut row = vec![format!("{:.0}%", iso * 100.0)];
        let mut jrow = vec![iso];
        for strategy in [StrategyKind::OnDemandMixed, StrategyKind::HybridMixed] {
            let r = h.run(partition_spec(strategy, iso));
            let lc = r.lc_latency_boxplot().expect("LC jobs");
            row.push(format!("{:.3}", r.mean_normalized_perf()));
            row.push(format!("{:.0}", lc.mean));
            jrow.push(r.mean_normalized_perf());
            jrow.push(lc.mean);
        }
        t.row(row);
        json.push(jrow);
    }
    println!("{t}");
    println!("(partitioning the LLC, memory and network bandwidth recovers a large");
    println!(" share of OdM's interference-induced gap — Section 5.5: \"resource");
    println!(" partitioning can reduce unpredictability in fully on-demand");
    println!(" systems\"; the residual gap is spin-up overhead and contention in");
    println!(" unpartitionable resources)");
    write_json(
        "ext_partitioning",
        &["isolation", "OdM_perf", "OdM_lc", "HM_perf", "HM_lc"],
        &json,
    );
    h.finish("ext_spot_partitioning")
}
