//! Figures 6 and 7: sensitivity to the application-mapping policy.
//!
//! For the high-variability scenario under HF and HM, runs every mapping
//! policy P1–P8 and reports (Figure 6) the performance of jobs on
//! reserved and on-demand resources normalized to isolation, and
//! (Figure 7) the utilization of reserved resources and total cost
//! normalized to static-SR.

use hcloud::{MappingPolicy, StrategyKind};
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::stats::mean;
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG06_FIG07;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let model = PricingModel::aws();
    let kind = ScenarioKind::HighVariability;
    let strategies = [StrategyKind::HybridFull, StrategyKind::HybridMixed];

    // One plan: the SR-static cost baseline plus the 2x8 policy grid.
    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(
        ScenarioKind::Static,
        StrategyKind::StaticReserved,
    ));
    for strategy in strategies {
        for (_, policy) in MappingPolicy::paper_set() {
            plan.push(RunSpec::of(kind, strategy).policy(policy));
        }
    }
    h.run_plan(plan);

    let baseline = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &model)
        .total();

    println!("Figures 6-7: mapping policies P1-P8, high variability scenario\n");
    println!("P1 random | P2 Q>80% reserved | P3 Q>50% | P4 Q>20% |");
    println!("P5 load<50% | P6 load<70% | P7 load<90% | P8 dynamic\n");

    let mut t = Table::new(vec![
        "strategy",
        "policy",
        "perf(reserved)%",
        "perf(on-demand)%",
        "reserved util%",
        "cost(xSR-static)",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for strategy in strategies {
        for (sidx, (label, policy)) in MappingPolicy::paper_set().into_iter().enumerate() {
            let r = h.run(RunSpec::of(kind, strategy).policy(policy));
            let perf_res = mean(&r.normalized_perf(Some(true))).unwrap_or(f64::NAN) * 100.0;
            let perf_od = mean(&r.normalized_perf(Some(false))).unwrap_or(f64::NAN) * 100.0;
            let util = r.mean_reserved_utilization().unwrap_or(0.0) * 100.0;
            let cost = r.cost(&rates, &model).total() / baseline;
            t.row(vec![
                strategy.short_name().into(),
                label.into(),
                format!("{perf_res:.1}"),
                format!("{perf_od:.1}"),
                format!("{util:.0}"),
                format!("{cost:.2}"),
            ]);
            json.push(vec![
                strategy as u8 as f64,
                sidx as f64,
                perf_res,
                perf_od,
                util,
                cost,
            ]);
        }
    }
    println!("{t}");
    println!("(paper: random and static-limit policies hurt one side or the other;");
    println!(" the dynamic policy P8 keeps both sides >85-90% of isolation with");
    println!(" high reserved utilization and the lowest cost)");
    write_json(
        "fig06_07_policies",
        &[
            "strategy",
            "policy",
            "perf_reserved",
            "perf_od",
            "util",
            "cost",
        ],
        &json,
    );
    h.finish("fig06_fig07")
}
