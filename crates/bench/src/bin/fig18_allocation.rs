//! Figure 18: resource allocation over time for the five strategies on
//! the high-variability scenario — required cores vs reserved and
//! on-demand allocations.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{sparkline, write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG18;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    let required = h.scenario(kind).required_cores_series();
    let step = SimDuration::from_mins(4);

    let plan: ExperimentPlan = StrategyKind::ALL
        .iter()
        .map(|&s| RunSpec::of(kind, s))
        .collect();
    h.run_plan(plan);

    println!("Figure 18: resource allocation, high-variability scenario\n");
    let mut json: Vec<Vec<f64>> = Vec::new();
    for strategy in StrategyKind::ALL {
        let r = h.run(RunSpec::of(kind, strategy));
        let end = r.makespan;
        let mut req = Vec::new();
        let mut res = Vec::new();
        let mut od = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= end {
            req.push(required.value_at(t));
            res.push(r.reserved_cores as f64);
            od.push(r.od_allocated.value_at(t));
            t += step;
        }
        println!("Configuration: {}", strategy.short_name());
        println!("  required  {}", sparkline(&req));
        println!(
            "  reserved  {}",
            sparkline(&res.iter().map(|&v| v.max(1e-9)).collect::<Vec<_>>())
        );
        println!("  on-demand {}", sparkline(&od));
        let mean_alloc: f64 =
            res.iter().zip(&od).map(|(a, b)| a + b).sum::<f64>() / res.len() as f64;
        let mean_req: f64 = req.iter().sum::<f64>() / req.len() as f64;
        println!(
            "  makespan {:.0} min, mean allocated {:.0} cores vs mean required {:.0} cores\n",
            end.as_mins_f64(),
            mean_alloc,
            mean_req
        );
        for (i, ((rq, rs), o)) in req.iter().zip(&res).zip(&od).enumerate() {
            json.push(vec![
                strategy as u8 as f64,
                i as f64 * step.as_mins_f64(),
                *rq,
                *rs,
                *o,
            ]);
        }
    }

    let mut t = Table::new(vec![
        "strategy",
        "od acquired",
        "avg od active",
        "released immediately",
    ]);
    for strategy in StrategyKind::ALL {
        let r = h.run(RunSpec::of(kind, strategy));
        let avg_od = r
            .od_allocated
            .time_weighted_mean(SimTime::ZERO, r.makespan)
            .unwrap_or(0.0)
            / 16.0;
        t.row(vec![
            strategy.short_name().into(),
            format!("{}", r.counters.od_acquired),
            format!("{avg_od:.0} servers-equiv"),
            format!(
                "{} ({:.0}%)",
                r.counters.od_released_immediately,
                100.0 * r.counters.od_released_immediately as f64
                    / r.counters.od_acquired.max(1) as f64
            ),
        ]);
    }
    println!("{t}");
    println!("(paper: SR flat at peak+15%; OdF tracks load with overprovisioning and");
    println!(" 132-min completion; OdM tracks tightest but stretches the scenario 48%");
    println!(" and releases 43% of instances immediately; hybrids reserve the");
    println!(" steady-state minimum — HM released 11% immediately)");
    write_json(
        "fig18_allocation",
        &["strategy", "minute", "required", "reserved", "on_demand"],
        &json,
    );
    h.finish("fig18")
}
