//! Renders SVG versions of the paper's figures from the JSON series the
//! figure binaries write under `results/`.
//!
//! Run the figure binaries first (they produce `results/*.json`), then:
//!
//! ```text
//! cargo run --release -p hcloud-bench --bin render_figures
//! ```
//!
//! Each available figure renders in a light and a dark variant under
//! `results/figures/`. Missing JSON inputs are skipped with a note — the
//! JSON files double as the table view for every chart.

use std::fs;

use hcloud_bench::plot::{save_both, BoxChart, BoxGroup, BoxStats, LineChart, Series};
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_json::Value;

const STRATEGIES: [&str; 5] = ["SR", "OdF", "OdM", "HF", "HM"];
const SCENARIOS: [&str; 3] = ["Static", "Low Variability", "High Variability"];

/// Loads `results/<name>.json` written by [`hcloud_bench::write_json`].
fn load(name: &str) -> Option<Vec<Vec<f64>>> {
    let body = fs::read_to_string(format!("results/{name}.json")).ok()?;
    let v: Value = hcloud_json::parse(&body).ok()?;
    let rows = v.get("rows")?.as_array()?;
    Some(
        rows.iter()
            .filter_map(|r| {
                r.as_array().map(|cells| {
                    cells
                        .iter()
                        .map(|c| c.as_f64().unwrap_or(f64::NAN))
                        .collect()
                })
            })
            .collect(),
    )
}

fn skip(name: &str) {
    eprintln!("(skipping {name}: run its figure binary first to produce results/{name}.json)");
}

/// Figure 3: the three scenario demand curves.
fn fig03() {
    let Some(rows) = load("fig03_scenarios") else {
        return skip("fig03_scenarios");
    };
    let names = ["Static", "Low var", "High var"];
    let chart = LineChart {
        title: "Figure 3: the three workload scenarios".into(),
        x_label: "time (minutes)".into(),
        y_label: "required cores".into(),
        y_max: None,
        series: (0..3)
            .map(|i| Series {
                name: names[i].into(),
                points: rows.iter().map(|r| (r[0], r[1 + i])).collect(),
            })
            .collect(),
    };
    save_both("fig03_scenarios", |t| chart.render_svg(t));
}

/// Figures 4/10: grouped boxplots per scenario and strategy.
fn boxfig(json: &str, out: &str, title: &str, y_label: &str, strategies: &[usize]) {
    let Some(rows) = load(json) else {
        return skip(json);
    };
    let groups = SCENARIOS
        .iter()
        .enumerate()
        .map(|(si, name)| BoxGroup {
            label: name.to_string(),
            boxes: rows
                .iter()
                // profiling == 1 (with profiling info) rows only.
                .filter(|r| r[0] as usize == si && r[2] == 1.0)
                .map(|r| {
                    let slot = strategies
                        .iter()
                        .position(|&s| s == r[1] as usize)
                        .map(|k| strategies[k])
                        .unwrap_or(r[1] as usize);
                    (
                        slot,
                        BoxStats {
                            p5: r[3],
                            p25: r[4],
                            mean: r[5],
                            p75: r[6],
                            p95: r[7],
                        },
                    )
                })
                .collect(),
        })
        .collect();
    let chart = BoxChart {
        title: title.into(),
        y_label: y_label.into(),
        series_names: STRATEGIES.iter().map(|s| s.to_string()).collect(),
        groups,
    };
    save_both(out, |t| chart.render_svg(t));
}

/// A generic "one line per strategy" sweep figure.
fn sweep_fig(json: &str, out: &str, title: &str, x_label: &str, y_label: &str) {
    let Some(rows) = load(json) else {
        return skip(json);
    };
    let chart = LineChart {
        title: title.into(),
        x_label: x_label.into(),
        y_label: y_label.into(),
        y_max: None,
        series: STRATEGIES
            .iter()
            .enumerate()
            .map(|(i, name)| Series {
                name: name.to_string(),
                points: rows.iter().map(|r| (r[0], r[1 + i])).collect(),
            })
            .collect(),
    };
    save_both(out, |t| chart.render_svg(t));
}

/// Figures 12/13: per-scenario cost curves, one SVG per scenario.
fn per_scenario_sweep(
    json: &str,
    out_prefix: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    y_max: Option<f64>,
) {
    let Some(rows) = load(json) else {
        return skip(json);
    };
    for (si, scenario) in SCENARIOS.iter().enumerate() {
        let scoped: Vec<&Vec<f64>> = rows.iter().filter(|r| r[0] as usize == si).collect();
        if scoped.is_empty() {
            continue;
        }
        let chart = LineChart {
            title: format!("{title} — {scenario}"),
            x_label: x_label.into(),
            y_label: y_label.into(),
            y_max,
            series: STRATEGIES
                .iter()
                .enumerate()
                .map(|(i, name)| Series {
                    name: name.to_string(),
                    points: scoped.iter().map(|r| (r[1], r[2 + i])).collect(),
                })
                .collect(),
        };
        let slug = scenario.to_lowercase().replace(' ', "_");
        save_both(&format!("{out_prefix}_{slug}"), |t| chart.render_svg(t));
    }
}

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::RENDER_FIGURES;

fn main() -> std::process::ExitCode {
    registry::announce(INFO);
    fig03();
    boxfig(
        "fig04a_batch",
        "fig04a_batch",
        "Figure 4a: batch completion time, SR/OdF/OdM (with profiling)",
        "completion time (minutes)",
        &[0, 1, 2],
    );
    boxfig(
        "fig04b_memcached",
        "fig04b_memcached",
        "Figure 4b: memcached p99 latency, SR/OdF/OdM (with profiling)",
        "p99 latency (µs)",
        &[0, 1, 2],
    );
    boxfig(
        "fig10a_batch",
        "fig10a_batch",
        "Figure 10a: batch completion time, SR/HF/HM (with profiling)",
        "completion time (minutes)",
        &[0, 3, 4],
    );
    boxfig(
        "fig10b_memcached",
        "fig10b_memcached",
        "Figure 10b: memcached p99 latency, SR/HF/HM (with profiling)",
        "p99 latency (µs)",
        &[0, 3, 4],
    );
    // Figure 12's y-axis is capped like the paper's (SR exits the frame
    // at very low ratios where reserved capacity is absurdly expensive).
    per_scenario_sweep(
        "fig12_price_ratio",
        "fig12_price_ratio",
        "Figure 12: cost vs on-demand:reserved price ratio",
        "on-demand : reserved price per hour",
        "cost (× static SR)",
        Some(6.0),
    );
    per_scenario_sweep(
        "fig13_duration",
        "fig13_duration",
        "Figure 13: cost vs deployment duration",
        "duration (weeks)",
        "cost ($1000s)",
        None,
    );
    sweep_fig(
        "fig14a_spinup",
        "fig14a_spinup",
        "Figure 14a: p95 performance vs spin-up overhead",
        "spin-up overhead (s)",
        "p95 perf, normalized to SR (%)",
    );
    sweep_fig(
        "fig14b_external",
        "fig14b_external",
        "Figure 14b: p95 performance vs external load",
        "external load (%)",
        "p95 perf, normalized to isolation (%)",
    );
    eprintln!("done; see results/figures/");
    hcloud_bench::artifacts::exit_code()
}
