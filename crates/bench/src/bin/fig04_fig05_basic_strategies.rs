//! Figures 4 and 5: performance and cost of the basic provisioning
//! strategies (SR, OdF, OdM) on the three scenarios, with and without
//! profiling information.
//!
//! Figure 4a: batch completion-time boxplots. Figure 4b: memcached p99
//! latency boxplots. Figure 5: run cost normalized to the static
//! scenario under SR.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG04_FIG05;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let strategies = [
        StrategyKind::StaticReserved,
        StrategyKind::OnDemandFull,
        StrategyKind::OnDemandMixed,
    ];
    let rates = Rates::default();
    let model = PricingModel::aws();

    // Fan the whole 3x3x2 grid out across the machine up front; the
    // loops below read the cached results in figure order.
    let mut plan = ExperimentPlan::new();
    for kind in ScenarioKind::ALL {
        for strategy in strategies {
            for profiling in [true, false] {
                plan.push(RunSpec::of(kind, strategy).profiling(profiling));
            }
        }
    }
    h.run_plan(plan);

    println!("Figure 4a: batch completion time (minutes)\n");
    let mut t = Table::new(vec![
        "scenario",
        "strategy",
        "profiling",
        "p5",
        "p25",
        "mean",
        "p75",
        "p95",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        for strategy in strategies {
            for profiling in [true, false] {
                let b = h
                    .run(RunSpec::of(kind, strategy).profiling(profiling))
                    .batch_performance_boxplot()
                    .expect("batch jobs present");
                t.row(vec![
                    kind.name().into(),
                    strategy.short_name().into(),
                    if profiling { "with" } else { "without" }.into(),
                    format!("{:.1}", b.p5),
                    format!("{:.1}", b.p25),
                    format!("{:.1}", b.mean),
                    format!("{:.1}", b.p75),
                    format!("{:.1}", b.p95),
                ]);
                json.push(vec![
                    kind as u8 as f64,
                    strategy as u8 as f64,
                    profiling as u8 as f64,
                    b.p5,
                    b.p25,
                    b.mean,
                    b.p75,
                    b.p95,
                ]);
            }
        }
    }
    println!("{t}");
    write_json(
        "fig04a_batch",
        &[
            "scenario",
            "strategy",
            "profiling",
            "p5",
            "p25",
            "mean",
            "p75",
            "p95",
        ],
        &json,
    );

    println!("Figure 4b: memcached p99 request latency (µs)\n");
    let mut t = Table::new(vec![
        "scenario",
        "strategy",
        "profiling",
        "p5",
        "p25",
        "mean",
        "p75",
        "p95",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        for strategy in strategies {
            for profiling in [true, false] {
                let b = h
                    .run(RunSpec::of(kind, strategy).profiling(profiling))
                    .lc_latency_boxplot()
                    .expect("LC jobs present");
                t.row(vec![
                    kind.name().into(),
                    strategy.short_name().into(),
                    if profiling { "with" } else { "without" }.into(),
                    format!("{:.0}", b.p5),
                    format!("{:.0}", b.p25),
                    format!("{:.0}", b.mean),
                    format!("{:.0}", b.p75),
                    format!("{:.0}", b.p95),
                ]);
                json.push(vec![
                    kind as u8 as f64,
                    strategy as u8 as f64,
                    profiling as u8 as f64,
                    b.p5,
                    b.p25,
                    b.mean,
                    b.p75,
                    b.p95,
                ]);
            }
        }
    }
    println!("{t}");
    write_json(
        "fig04b_memcached",
        &[
            "scenario",
            "strategy",
            "profiling",
            "p5",
            "p25",
            "mean",
            "p75",
            "p95",
        ],
        &json,
    );

    println!("Figure 5: cost of fully reserved and on-demand systems");
    println!("(normalized to the static scenario under SR)\n");
    let baseline = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &model)
        .total();
    let mut t = Table::new(vec!["scenario", "SR", "OdF", "OdM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        let costs: Vec<f64> = strategies
            .iter()
            .map(|&s| h.run(RunSpec::of(kind, s)).cost(&rates, &model).total() / baseline)
            .collect();
        t.row(vec![
            kind.name().into(),
            format!("{:.2}", costs[0]),
            format!("{:.2}", costs[1]),
            format!("{:.2}", costs[2]),
        ]);
        json.push(vec![kind as u8 as f64, costs[0], costs[1], costs[2]]);
    }
    println!("{t}");
    println!("(paper: SR lowest per-run charge but needs a 1-year upfront commitment;");
    println!(" on-demand strategies 2.5-3.5x the SR per-run charge)");
    write_json("fig05_cost", &["scenario", "SR", "OdF", "OdM"], &json);

    // Headline check from Section 3.4: SR beats OdM ~2.2x on average.
    let sr = h
        .run(RunSpec::of(
            ScenarioKind::HighVariability,
            StrategyKind::StaticReserved,
        ))
        .mean_degradation();
    let odm = h
        .run(RunSpec::of(
            ScenarioKind::HighVariability,
            StrategyKind::OnDemandMixed,
        ))
        .mean_degradation();
    println!("\nSR vs OdM mean degradation (high variability): {:.2}x vs {:.2}x -> OdM {:.2}x worse (paper: 2.2x)",
        sr, odm, odm / sr);
    h.finish("fig04_fig05")
}
