//! Multi-tenant extension: weighted fair share over one provisioned pool.
//!
//! HCloud provisions for one owner; shared clusters carve the same
//! capacity across thousands of tenants with wildly skewed demand. This
//! experiment attaches a Zipf-weighted [`TenancyPlan`] (2000 tenants in
//! full mode, 200 under `HCLOUD_FAST=1`) to the high-variability
//! scenario and reports, per strategy × variant:
//!
//! * **SLO attainment** — fraction of jobs finishing with normalized
//!   performance ≥ 0.7, overall and for the heaviest tenants;
//! * **Jain fairness** — over per-tenant admission counts (an
//!   equal-share population sits at 1.0; the Zipf skew itself drives
//!   the tenanted runs far below that, which is the point — admissions
//!   track weight, not head-count);
//! * **cost and makespan** — what tenancy gating costs the provider;
//! * tenancy-machinery counters (deferrals, drains, elastic borrows,
//!   starvation-relief preemptions).
//!
//! Two identities are enforced in-binary (hard artifact failure, not a
//! report row):
//!
//! * **empty-plan identity** — a scenario carrying a [`TenancyPlan`]
//!   with zero tenants must produce a byte-identical digest to the
//!   untenanted run (the one-branch-when-off contract, end to end);
//! * **starvation reclaim** — a micro-scenario with a borrower squatting
//!   on a fully-guaranteed pool must show at least one starvation-relief
//!   preemption, with the guaranteed tenant recording the reclaim.
//!
//! CI diffs the fast-mode digests against the committed
//! `crates/bench/goldens/ext_multi_tenant_fast.json`.

use std::process::ExitCode;
use std::sync::Arc;

use hcloud::runner::{run_scenario, RunCtx};
use hcloud::{RunConfig, RunResult, StrategyKind};
use hcloud_bench::fleet::run_digest;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_faults::FaultPlanId;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::SimTime;
use hcloud_tenancy::{TenancyPlan, TenantSpec};
use hcloud_workloads::{AppClass, JobId, JobKind, JobSpec, Scenario, ScenarioConfig, ScenarioKind};

/// Jobs at or above this normalized performance kept their SLO.
const SLO_THRESHOLD: f64 = 0.7;

/// Zipf skew for the tenant weight distribution (rank-1 tenants carry
/// most of the demand, the tail is long and thin).
const ZIPF_SKEW: f64 = 1.1;

/// Fraction of the pool handed out as hard guarantees; the rest is
/// elastic headroom tenants borrow against.
const GUARANTEE_FRAC: f64 = 0.5;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_MULTI_TENANT;

/// The strategies under test: the static baseline and the paper's best
/// hybrid.
const STRATEGIES: [StrategyKind; 2] = [StrategyKind::StaticReserved, StrategyKind::HybridMixed];

/// Scenario variants per strategy.
const VARIANTS: [&str; 3] = ["untenanted", "tenanted", "tenanted-chaos"];

/// Sizes the shared pool to the scenario's mean concurrent core demand:
/// total demanded core-seconds over the arrival window. Tight enough
/// that tenants actually contend, wide enough that the largest job fits.
fn pool_for(scenario: &Scenario) -> u32 {
    let total: f64 = scenario
        .jobs()
        .iter()
        .map(|j| match j.kind {
            JobKind::Batch { work_core_secs } => work_core_secs,
            JobKind::LatencyCritical { lifetime, .. } => j.cores as f64 * lifetime.as_secs_f64(),
        })
        .sum();
    let window = scenario.config().duration.as_secs_f64().max(1.0);
    let avg = (total / window).ceil() as u32;
    let widest = scenario.jobs().iter().map(|j| j.cores).max().unwrap_or(1);
    avg.max(widest).max(8)
}

/// The Zipf-skewed tenant population with every scenario job assigned to
/// a tenant by weighted draw from one named RNG stream.
fn tenant_plan(scenario: &Scenario, tenants: usize, rng: &mut SimRng) -> TenancyPlan {
    let mut plan = TenancyPlan::zipf(tenants, ZIPF_SKEW, pool_for(scenario), GUARANTEE_FRAC);
    let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
    plan.assign_jobs(&ids, rng);
    plan
}

/// The run spec for one (strategy, variant) cell.
fn spec(
    base: &Arc<Scenario>,
    tenanted: &Arc<Scenario>,
    strategy: StrategyKind,
    variant: &str,
) -> RunSpec {
    let scenario = if variant == "untenanted" {
        base
    } else {
        tenanted
    };
    let s = RunSpec::on(Arc::clone(scenario), strategy)
        .label(format!("{variant}/{}", strategy.short_name()));
    if variant == "tenanted-chaos" {
        s.map_config(|c| c.with_faults(FaultPlanId::FullChaos.plan()))
    } else {
        s
    }
}

/// Fraction of `r`'s jobs that kept their SLO.
fn slo_attainment(r: &RunResult) -> f64 {
    let perfs = r.normalized_perf(None);
    let kept = perfs.iter().filter(|&&p| p >= SLO_THRESHOLD).count();
    kept as f64 / perfs.len().max(1) as f64
}

/// A deterministic batch job for the starvation micro-demo (mirrors the
/// scheduler's unit-test fixture: sensitivity seeded by job id).
fn demo_job(id: u64, cores: u32, secs: f64) -> JobSpec {
    let mut rng = SimRng::from_seed_u64(id);
    JobSpec {
        id: JobId(id),
        class: AppClass::SparkBatch,
        arrival: SimTime::ZERO,
        kind: JobKind::Batch {
            work_core_secs: cores as f64 * secs,
        },
        cores,
        sensitivity: AppClass::SparkBatch.sample_sensitivity(&mut rng),
    }
}

/// Runs the starvation-reclaim micro-scenario end to end: tenant 0 is
/// guaranteed the whole pool, tenant 1 (guarantee 0) borrows it first,
/// and the starvation monitor must evict the borrower so the guaranteed
/// tenant reclaims its share. Returns the completed run.
fn starvation_demo(seed: u64) -> RunResult {
    let jobs = vec![demo_job(0, 4, 2_000.0), demo_job(1, 4, 2_000.0)];
    // Without profiling the scheduler sizes jobs by user reservation
    // (deterministic per id); size the pool so either fits alone but
    // never both.
    let pool = jobs
        .iter()
        .map(|j| j.user_sized_cores().clamp(1, 16))
        .max()
        .unwrap_or(4);
    let mut plan = TenancyPlan::new(pool)
        .with_quantum(16.0)
        .with_starvation_secs(30.0)
        .tenant(TenantSpec::new(0, 4.0, pool, pool))
        .tenant(TenantSpec::new(1, 1.0, 0, pool));
    plan.assign(0, 1); // job 0 -> the borrower
    plan.assign(1, 0); // job 1 -> the guaranteed tenant
    let scenario =
        Scenario::from_jobs(ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 10), jobs)
            .with_tenancy(plan);
    let mut config = RunConfig::new(StrategyKind::StaticReserved).without_profiling();
    config.reserved_cores_override = Some(32);
    let factory = RngFactory::new(seed);
    let ctx = RunCtx::new(&factory);
    run_scenario(&scenario, &config, &ctx).expect("no auditor attached")
}

fn main() -> ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let model = PricingModel::aws();
    let tenants = if h.ctx().fast { 200 } else { 2000 };

    // The base scenario and its tenanted twin share every job byte; only
    // the attached plan differs.
    let base = Arc::new(h.scenario(ScenarioKind::HighVariability).clone());
    let plan = tenant_plan(&base, tenants, &mut h.factory().stream("tenant-assign"));
    if let Err(e) = plan.validate() {
        artifacts::artifact_failure("ext_multi_tenant plan", e);
        return artifacts::exit_code();
    }
    let pool = plan.pool_cores;
    let tenanted = Arc::new(base.as_ref().clone().with_tenancy(plan.clone()));
    eprintln!(
        "[ext_multi_tenant] {} jobs, {tenants} tenants (zipf skew {ZIPF_SKEW}), pool {pool} cores",
        base.jobs().len(),
    );

    let mut grid = ExperimentPlan::new();
    for strategy in STRATEGIES {
        for variant in VARIANTS {
            grid.push(spec(&base, &tenanted, strategy, variant));
        }
    }
    h.run_plan(grid);

    // Identity 1: an empty tenancy plan must not perturb the simulation.
    let empty = Arc::new(base.as_ref().clone().with_tenancy(TenancyPlan::new(pool)));
    let untenanted_digest = run_digest(h.run(spec(
        &base,
        &tenanted,
        StrategyKind::HybridMixed,
        "untenanted",
    )));
    let empty_digest = run_digest(
        h.run(RunSpec::on(Arc::clone(&empty), StrategyKind::HybridMixed).label("empty-plan/HM")),
    );
    let identical = untenanted_digest == empty_digest;
    if !identical {
        artifacts::artifact_failure(
            "ext_multi_tenant empty-plan identity",
            format!("untenanted {untenanted_digest} vs empty-plan {empty_digest}"),
        );
        return artifacts::exit_code();
    }
    eprintln!("[ext_multi_tenant] empty-plan identity: byte-identical ({untenanted_digest})");

    // Identity 2: a starved guaranteed tenant must reclaim its share.
    let demo = starvation_demo(h.ctx().master_seed);
    let demo_digest = run_digest(&demo);
    if demo.counters.tenant_preemptions == 0 {
        artifacts::artifact_failure(
            "ext_multi_tenant starvation reclaim",
            "starved guaranteed tenant never preempted the borrower",
        );
        return artifacts::exit_code();
    }
    let reclaims: u64 = demo.tenant_stats.iter().map(|t| t.reclaims).sum();
    eprintln!(
        "[ext_multi_tenant] starvation demo: {} preemption(s), {} reclaim(s), {:.0} core-s lost, digest {demo_digest}",
        demo.counters.tenant_preemptions, reclaims, demo.counters.work_lost_core_secs,
    );

    // The headline grid.
    println!("Multi-tenant fair share: {tenants} Zipf tenants over a {pool}-core pool\n");
    let mut t = Table::new(vec![
        "strategy",
        "variant",
        "SLO",
        "fairness",
        "cost ($)",
        "makespan (h)",
        "deferred",
        "drained",
        "borrowed",
        "preempted",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    for strategy in STRATEGIES {
        for variant in VARIANTS {
            let r = h.run(spec(&base, &tenanted, strategy, variant));
            let slo = slo_attainment(r);
            let fairness = r.tenant_admission_fairness();
            let cost = r.cost(&rates, &model).total();
            let makespan_h = r.makespan.as_hours_f64();
            let c = &r.counters;
            t.row(vec![
                strategy.short_name().into(),
                variant.into(),
                format!("{:.1}%", slo * 100.0),
                format!("{fairness:.3}"),
                format!("{cost:.0}"),
                format!("{makespan_h:.2}"),
                format!("{}", c.tenant_deferred_jobs),
                format!("{}", c.tenant_drained_jobs),
                format!("{}", c.tenant_borrowed_admissions),
                format!("{}", c.tenant_preemptions),
            ]);
            rows.push(
                ObjectBuilder::new()
                    .set("strategy", strategy.short_name())
                    .set("variant", variant)
                    .set("digest", run_digest(r))
                    .set("slo", slo)
                    .set("fairness", fairness)
                    .set("cost", cost)
                    .set("makespan_h", makespan_h)
                    .set("deferred", c.tenant_deferred_jobs as f64)
                    .set("drained", c.tenant_drained_jobs as f64)
                    .set("borrowed", c.tenant_borrowed_admissions as f64)
                    .set("preempted", c.tenant_preemptions as f64)
                    .build(),
            );
        }
    }
    println!("{t}");
    println!("(the gate holds admissions to each tenant's weighted share, so the");
    println!(" tenanted runs trade queueing delay for proportional access; chaos");
    println!(" rides on top — preempted work re-enters the fault-requeue path");
    println!(" with its executed core-seconds carried over, never double-billed)");

    // Per-tenant drill-down on the tenanted hybrid run: the heaviest
    // tenants by admissions, with their own SLO attainment.
    let tenanted_hm = h.run(spec(
        &base,
        &tenanted,
        StrategyKind::HybridMixed,
        "tenanted",
    ));
    let mut stats = tenanted_hm.tenant_stats.clone();
    stats.sort_by(|a, b| b.admitted.cmp(&a.admitted).then(a.id.cmp(&b.id)));
    let mut per_tenant_slo: std::collections::BTreeMap<u64, (usize, usize)> =
        std::collections::BTreeMap::new();
    for o in &tenanted_hm.outcomes {
        if let Some(tid) = plan.tenant_of(o.id.0) {
            let e = per_tenant_slo.entry(tid.0).or_default();
            e.1 += 1;
            if o.normalized_perf >= SLO_THRESHOLD {
                e.0 += 1;
            }
        }
    }
    println!("\nHeaviest tenants (tenanted HM run):\n");
    let mut tt = Table::new(vec![
        "tenant",
        "weight",
        "guaranteed",
        "cap",
        "admitted",
        "deferred",
        "SLO",
        "mean wait (s)",
        "victims",
        "reclaims",
    ]);
    let mut tenant_rows: Vec<Value> = Vec::new();
    for s in stats.iter().take(8) {
        let (kept, ran) = per_tenant_slo.get(&s.id).copied().unwrap_or((0, 0));
        let slo = kept as f64 / ran.max(1) as f64;
        let mean_wait = s.total_queue_wait_secs / (s.drained.max(1) as f64);
        tt.row(vec![
            format!("{}", s.id),
            format!("{:.4}", s.weight),
            format!("{}", s.guaranteed_cores),
            format!("{}", s.cap_cores),
            format!("{}", s.admitted),
            format!("{}", s.deferred),
            format!("{:.1}%", slo * 100.0),
            format!("{mean_wait:.0}"),
            format!("{}", s.victims),
            format!("{}", s.reclaims),
        ]);
        tenant_rows.push(
            ObjectBuilder::new()
                .set("tenant", s.id as f64)
                .set("weight", s.weight)
                .set("guaranteed_cores", s.guaranteed_cores as f64)
                .set("admitted", s.admitted as f64)
                .set("deferred", s.deferred as f64)
                .set("slo", slo)
                .set("mean_wait_s", mean_wait)
                .build(),
        );
    }
    println!("{tt}");

    let doc = ObjectBuilder::new()
        .set("schema_version", artifacts::SCHEMA_VERSION)
        .set("bench", "ext_multi_tenant")
        .set("mode", if h.ctx().fast { "fast" } else { "full" })
        .set("seed", h.ctx().master_seed as f64)
        .set(
            "tenancy",
            ObjectBuilder::new()
                .set("tenants", tenants as f64)
                .set("zipf_skew", ZIPF_SKEW)
                .set("guarantee_frac", GUARANTEE_FRAC)
                .set("pool_cores", pool as f64)
                .build(),
        )
        .set("strategies", Value::Array(rows))
        .set(
            "identity",
            ObjectBuilder::new()
                .set("untenanted_digest", untenanted_digest.as_str())
                .set("empty_plan_digest", empty_digest.as_str())
                .set("identical", identical)
                .build(),
        )
        .set(
            "starvation",
            ObjectBuilder::new()
                .set("digest", demo_digest.as_str())
                .set("preemptions", demo.counters.tenant_preemptions as f64)
                .set("reclaims", reclaims as f64)
                .set("work_lost_core_secs", demo.counters.work_lost_core_secs)
                .build(),
        )
        .set("tenants_top", Value::Array(tenant_rows))
        .build();
    let path = std::path::Path::new("results").join("ext_multi_tenant.json");
    let ok = std::fs::create_dir_all("results").is_ok()
        && std::fs::write(&path, doc.to_pretty() + "\n").is_ok();
    if ok {
        artifacts::artifact_written(&path);
    } else {
        artifacts::artifact_failure(format!("write {}", path.display()), "io error");
    }
    h.finish("ext_multi_tenant")
}
