//! Figures 10 and 11: performance and cost of the hybrid strategies
//! against the statically reserved system.
//!
//! Figure 10: batch and memcached boxplots for SR, HF, HM with and
//! without profiling information. Figure 11: cost split into reserved and
//! on-demand components, normalized to the static scenario under SR.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG10_FIG11;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let strategies = [
        StrategyKind::StaticReserved,
        StrategyKind::HybridFull,
        StrategyKind::HybridMixed,
    ];
    let rates = Rates::default();
    let model = PricingModel::aws();

    // One plan covers the 3x3x2 figure grid plus the on-demand and
    // no-profiling runs the headline checks compare against.
    let mut plan = ExperimentPlan::new();
    for kind in ScenarioKind::ALL {
        for strategy in strategies {
            for profiling in [true, false] {
                plan.push(RunSpec::of(kind, strategy).profiling(profiling));
            }
        }
    }
    for strategy in StrategyKind::ALL {
        plan.push(RunSpec::of(ScenarioKind::HighVariability, strategy));
    }
    h.run_plan(plan);

    for (label, latency) in [
        ("Figure 10a: batch completion time (minutes)", false),
        ("Figure 10b: memcached p99 request latency (µs)", true),
    ] {
        println!("{label}\n");
        let mut t = Table::new(vec![
            "scenario",
            "strategy",
            "profiling",
            "p5",
            "p25",
            "mean",
            "p75",
            "p95",
        ]);
        let mut json: Vec<Vec<f64>> = Vec::new();
        for kind in ScenarioKind::ALL {
            for strategy in strategies {
                for profiling in [true, false] {
                    let r = h.run(RunSpec::of(kind, strategy).profiling(profiling));
                    let b = if latency {
                        r.lc_latency_boxplot()
                    } else {
                        r.batch_performance_boxplot()
                    }
                    .expect("jobs present");
                    let fmt = |v: f64| {
                        if latency {
                            format!("{v:.0}")
                        } else {
                            format!("{v:.1}")
                        }
                    };
                    t.row(vec![
                        kind.name().into(),
                        strategy.short_name().into(),
                        if profiling { "with" } else { "without" }.into(),
                        fmt(b.p5),
                        fmt(b.p25),
                        fmt(b.mean),
                        fmt(b.p75),
                        fmt(b.p95),
                    ]);
                    json.push(vec![
                        kind as u8 as f64,
                        strategy as u8 as f64,
                        profiling as u8 as f64,
                        b.p5,
                        b.p25,
                        b.mean,
                        b.p75,
                        b.p95,
                    ]);
                }
            }
        }
        println!("{t}");
        write_json(
            if latency {
                "fig10b_memcached"
            } else {
                "fig10a_batch"
            },
            &[
                "scenario",
                "strategy",
                "profiling",
                "p5",
                "p25",
                "mean",
                "p75",
                "p95",
            ],
            &json,
        );
    }

    println!("Figure 11: cost comparison SR / HF / HM (normalized to static SR)\n");
    let baseline = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &model)
        .total();
    let mut t = Table::new(vec![
        "scenario",
        "strategy",
        "reserved",
        "on-demand",
        "total",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        for strategy in strategies {
            let c = h.run(RunSpec::of(kind, strategy)).cost(&rates, &model);
            t.row(vec![
                kind.name().into(),
                strategy.short_name().into(),
                format!("{:.2}", c.reserved / baseline),
                format!("{:.2}", c.on_demand / baseline),
                format!("{:.2}", c.total() / baseline),
            ]);
            json.push(vec![
                kind as u8 as f64,
                strategy as u8 as f64,
                c.reserved / baseline,
                c.on_demand / baseline,
            ]);
        }
    }
    println!("{t}");
    write_json(
        "fig11_cost",
        &["scenario", "strategy", "reserved", "on_demand"],
        &json,
    );

    // Headline checks.
    let kind = ScenarioKind::HighVariability;
    let sr = h
        .run(RunSpec::of(kind, StrategyKind::StaticReserved))
        .mean_normalized_perf();
    let hf = h
        .run(RunSpec::of(kind, StrategyKind::HybridFull))
        .mean_normalized_perf();
    let hm = h
        .run(RunSpec::of(kind, StrategyKind::HybridMixed))
        .mean_normalized_perf();
    let odf = h
        .run(RunSpec::of(kind, StrategyKind::OnDemandFull))
        .mean_normalized_perf();
    let odm = h
        .run(RunSpec::of(kind, StrategyKind::OnDemandMixed))
        .mean_normalized_perf();
    println!("\nHeadline checks (high variability):");
    println!(
        "  HF within {:.1}% of SR, HM within {:.1}% of SR (paper: within 8%)",
        (1.0 - hf / sr) * 100.0,
        (1.0 - hm / sr) * 100.0
    );
    println!("  hybrid vs on-demand performance: HF/OdF {:.2}x, HM/OdM {:.2}x (paper: 2.1x avg incl. latency blowups)",
        hf / odf, hm / odm);
    let degs: Vec<f64> = StrategyKind::ALL
        .iter()
        .map(|&s| h.run(RunSpec::of(kind, s)).mean_degradation())
        .collect();
    println!(
        "  mean degradation factors: SR {:.2}x OdF {:.2}x OdM {:.2}x HF {:.2}x HM {:.2}x",
        degs[0], degs[1], degs[2], degs[3], degs[4]
    );
    println!(
        "  → hybrid-vs-on-demand degradation ratio: HM {:.2}x better than OdM (paper: 2.1x)",
        degs[2] / degs[4]
    );
    for s in [StrategyKind::HybridFull, StrategyKind::HybridMixed] {
        if let Some(u) = h.run(RunSpec::of(kind, s)).mean_reserved_utilization() {
            println!(
                "  {} mean reserved utilization {:.0}% (paper: ~80% in steady state)",
                s,
                u * 100.0
            );
        }
    }
    println!("  with/without profiling improvement (degradation ratio): HF {:.2}x, HM {:.2}x (paper: 2.4x / 2.77x)",
        h.run(RunSpec::of(kind, StrategyKind::HybridFull).profiling(false)).mean_degradation() / degs[3],
        h.run(RunSpec::of(kind, StrategyKind::HybridMixed).profiling(false)).mean_degradation() / degs[4]);
    h.finish("fig10_fig11")
}
