//! Section 5.2: provisioning overheads.
//!
//! Reports the simulated accounting (profiling runs, classifications,
//! reschedule rates, queued jobs) per strategy, plus wall-clock
//! measurements of the decision-path code (classification, mapping
//! decision, Q encoding). The Criterion bench `overheads` measures the
//! same paths with statistical rigor.

use std::time::Instant;

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{ExperimentPlan, Harness, RunSpec, Table};
use hcloud_interference::{resource_quality, ResourceVector};
use hcloud_quasar::{ProfilingEnvironment, QuasarConfig, QuasarEngine};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::SimTime;
use hcloud_workloads::{AppClass, JobId, JobKind, JobSpec, ScenarioKind};

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::TAB_OVERHEADS;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;

    let plan: ExperimentPlan = StrategyKind::ALL
        .iter()
        .map(|&s| RunSpec::of(kind, s))
        .collect();
    h.run_plan(plan);

    println!("Section 5.2: provisioning overheads\n");
    let mut t = Table::new(vec![
        "strategy",
        "profiled",
        "classified",
        "queued jobs",
        "reschedules",
        "resched rate %",
    ]);
    for strategy in StrategyKind::ALL {
        let r = h.run(RunSpec::of(kind, strategy));
        t.row(vec![
            strategy.short_name().into(),
            format!("{}", r.counters.profiled),
            format!("{}", r.counters.classified),
            format!("{}", r.counters.queued_jobs),
            format!("{}", r.counters.reschedules),
            format!("{:.1}", r.reschedule_rate() * 100.0),
        ]);
    }
    println!("{t}");
    println!("(paper: profiling 5-10 s, once per new job; classification ~20 ms;");
    println!(" decisions <20 ms; rescheduling infrequent except OdM, where it adds");
    println!(" ~6.1% to job execution time)\n");

    // Wall-clock of the actual decision-path code.
    let factory = RngFactory::new(7);
    let mut engine = QuasarEngine::new(QuasarConfig::default(), &factory);
    let mut rng = SimRng::from_seed_u64(9);
    let job = JobSpec {
        id: JobId(0),
        class: AppClass::Memcached,
        arrival: SimTime::ZERO,
        kind: JobKind::Batch {
            work_core_secs: 600.0,
        },
        cores: 4,
        sensitivity: AppClass::Memcached.sample_sensitivity(&mut rng),
    };
    let env = ProfilingEnvironment::clean();

    let n = 10_000;
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(engine.estimate(&job, &env));
    }
    let classify_us = t0.elapsed().as_secs_f64() / n as f64 * 1e6;

    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(resource_quality(&job.sensitivity));
    }
    let encode_ns = t0.elapsed().as_secs_f64() / n as f64 * 1e9;

    let t0 = Instant::now();
    let v = ResourceVector::uniform(0.4);
    for _ in 0..n {
        std::hint::black_box(
            hcloud_interference::SlowdownModel::default().slowdown(&job.sensitivity, &v),
        );
    }
    let slowdown_ns = t0.elapsed().as_secs_f64() / n as f64 * 1e9;

    let mut t = Table::new(vec!["operation", "measured", "paper budget"]);
    t.row(vec![
        "profile + classify (fold-in)".into(),
        format!("{classify_us:.1} µs"),
        "~20 ms".into(),
    ]);
    t.row(vec![
        "resource-quality Q encoding".into(),
        format!("{encode_ns:.0} ns"),
        "(part of decisions <20 ms)".into(),
    ]);
    t.row(vec![
        "slowdown-model evaluation".into(),
        format!("{slowdown_ns:.0} ns"),
        "(part of decisions <20 ms)".into(),
    ]);
    println!("{t}");
    println!("All decision-path operations sit orders of magnitude below the");
    println!("10-20 s spin-up overheads they are compared against in Section 4.2.");
    h.finish("tab_overheads")
}
