//! Fault-injection extension: SLO survival under deterministic chaos.
//!
//! Sweeps the `full-chaos` fault plan's intensity across all five
//! provisioning strategies and reports, per cell:
//!
//! * **SLO survival** — the fraction of jobs finishing with normalized
//!   performance ≥ 0.7 (the paper's "acceptable" band);
//! * **cost overhead** — total cost relative to the same strategy at
//!   intensity 0 (retries, replacement instances and lost work all cost
//!   money);
//! * **work lost** — batch core-seconds destroyed by preemptions;
//! * recovery-machinery counters (retries, storm preemptions).
//!
//! Spot is enabled so preemption storms have instances to kill. Every
//! schedule is drawn from its own seeded RNG stream, so the table is
//! bit-identical for any `HCLOUD_JOBS` value.

use hcloud::config::SpotPolicy;
use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_faults::FaultPlanId;
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// Jobs at or above this normalized performance kept their SLO.
const SLO_THRESHOLD: f64 = 0.7;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_FAULT_RESILIENCE;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    let rates = Rates::default();
    let model = PricingModel::aws();

    let intensities = [0.0, 0.5, 1.0, 2.0];
    let spec = |strategy, intensity: f64| {
        RunSpec::of(kind, strategy).map_config(move |c| {
            c.with_spot(SpotPolicy::default())
                .with_faults(FaultPlanId::FullChaos.plan().with_intensity(intensity))
        })
    };
    let mut plan = ExperimentPlan::new();
    for strategy in StrategyKind::ALL {
        for &intensity in &intensities {
            plan.push(spec(strategy, intensity));
        }
    }
    h.run_plan(plan);

    println!("Fault resilience: full-chaos intensity sweep (high variability)\n");
    let mut t = Table::new(vec![
        "strategy",
        "intensity",
        "SLO survival",
        "cost overhead",
        "work lost (core-s)",
        "retries",
        "storm preemptions",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for strategy in StrategyKind::ALL {
        let base_cost = h.run(spec(strategy, 0.0)).cost(&rates, &model).total();
        for &intensity in &intensities {
            let r = h.run(spec(strategy, intensity));
            let survival = {
                let perfs = r.normalized_perf(None);
                let kept = perfs.iter().filter(|&&p| p >= SLO_THRESHOLD).count();
                kept as f64 / perfs.len().max(1) as f64
            };
            let cost = r.cost(&rates, &model).total();
            let overhead = cost / base_cost.max(1e-9);
            t.row(vec![
                strategy.short_name().into(),
                format!("{intensity:.1}"),
                format!("{:.1}%", survival * 100.0),
                format!("{:.0}%", overhead * 100.0),
                format!("{:.0}", r.counters.work_lost_core_secs),
                format!("{}", r.counters.acquire_retries),
                format!("{}", r.counters.storm_preemptions),
            ]);
            json.push(vec![
                intensity,
                survival,
                overhead,
                r.counters.work_lost_core_secs,
                r.counters.acquire_retries as f64,
                r.counters.storm_preemptions as f64,
                r.counters.spot_terminations as f64,
                r.counters.degraded_instances as f64,
            ]);
        }
    }
    println!("{t}");
    println!("(hybrids ride out chaos best: the reserved pool is immune to every");
    println!(" injected fault class, so only their on-demand tail pays the storm");
    println!(" tax; fully on-demand strategies pay it on every job, and the");
    println!(" recovery machinery — retries, family fallback, requeueing —");
    println!(" converts outright failures into latency and cost instead)");
    write_json(
        "ext_fault_resilience",
        &[
            "intensity",
            "slo_survival",
            "cost_overhead",
            "work_lost_core_secs",
            "acquire_retries",
            "storm_preemptions",
            "spot_terminations",
            "degraded_instances",
        ],
        &json,
    );
    h.finish("ext_fault_resilience")
}
