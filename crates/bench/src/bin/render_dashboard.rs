//! Regenerates the paper-parity & perf-trajectory dashboard.
//!
//! Walks the experiment registry against `results/*.json`, the committed
//! goldens, and the repo-root `BENCH_*.json` perf records, then rewrites
//! `docs/alignment/STATUS.md` and `docs/alignment/PERF_TRAJECTORY.json`
//! in place. The output is a pure function of those inputs — no clocks,
//! no environment — so CI can regenerate it and fail on `git diff
//! --exit-code` when the committed dashboard is stale.
//!
//! ```text
//! cargo run -p hcloud-bench --bin render_dashboard
//! ```
//!
//! Run from the repo root (the same contract as the figure binaries and
//! `render_figures`).

use std::path::Path;
use std::process::ExitCode;

use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, dashboard};

const INFO: &ExperimentInfo = &registry::RENDER_DASHBOARD;

fn main() -> ExitCode {
    registry::announce(INFO);
    dashboard::write_dashboard(Path::new("."));
    artifacts::exit_code()
}
