//! Figure 9: the dynamic policy's internals.
//!
//! Left: the soft utilization limit adapting to queue pressure over the
//! high-variability run. Right: validation of the queueing-time
//! estimator — estimated vs measured waits per requested instance size.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{sparkline, write_json, Harness, RunSpec, Table};
use hcloud_sim::stats::Cdf;
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG09;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let r = h.run(RunSpec::of(
        ScenarioKind::HighVariability,
        StrategyKind::HybridMixed,
    ));

    println!("Figure 9 (left): soft utilization limit over time (HM, high variability)\n");
    let series: Vec<f64> = r.soft_limit_trace.iter().map(|&(_, v)| v * 100.0).collect();
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("  soft limit: {}", sparkline(&series));
    println!(
        "  range: {lo:.1}% .. {hi:.1}% over {} adjustments",
        series.len()
    );
    let json: Vec<Vec<f64>> = r
        .soft_limit_trace
        .iter()
        .map(|&(t, v)| vec![t.as_mins_f64(), v])
        .collect();
    write_json("fig09a_soft_limit", &["minute", "soft_limit"], &json);

    println!("\nFigure 9 (right): estimated vs measured queueing time\n");
    let mut t = Table::new(vec![
        "size (vCPUs)",
        "samples",
        "est p50 (s)",
        "meas p50 (s)",
        "est p99 (s)",
        "meas p99 (s)",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for size in [1u32, 2, 4, 8, 16] {
        let pairs: Vec<(f64, f64)> = r
            .wait_samples
            .iter()
            .filter(|w| w.size == size)
            .filter_map(|w| {
                w.estimated
                    .map(|e| (e.as_secs_f64(), w.actual.as_secs_f64()))
            })
            .collect();
        if pairs.len() < 5 {
            continue;
        }
        let est =
            Cdf::from_values(&pairs.iter().map(|p| p.0).collect::<Vec<_>>()).expect("non-empty");
        let meas =
            Cdf::from_values(&pairs.iter().map(|p| p.1).collect::<Vec<_>>()).expect("non-empty");
        t.row(vec![
            format!("{size}"),
            format!("{}", pairs.len()),
            format!("{:.1}", est.quantile(0.5)),
            format!("{:.1}", meas.quantile(0.5)),
            format!("{:.1}", est.quantile(0.99)),
            format!("{:.1}", meas.quantile(0.99)),
        ]);
        json.push(vec![
            size as f64,
            pairs.len() as f64,
            est.quantile(0.5),
            meas.quantile(0.5),
            est.quantile(0.99),
            meas.quantile(0.99),
        ]);
    }
    println!("{t}");
    println!("(paper: \"in all cases the deviation between estimated and measured");
    println!(" queueing time is minimal\" — the estimator is intentionally");
    println!(" conservative, so estimates bound the measured waits from above)");
    write_json(
        "fig09b_wait_validation",
        &[
            "size", "samples", "est_p50", "meas_p50", "est_p99", "meas_p99",
        ],
        &json,
    );
    h.finish("fig09")
}
