//! Theory-grounded autoscaling extension: the two post-paper registry
//! strategies head-to-head with the paper's hybrids.
//!
//! HCloud's HF/HM hybrids react to the instantaneous queue; the two
//! strategies this experiment stresses are grounded in later scheduling
//! theory instead:
//!
//! * **RA (`reservation-autoscale`)** — Psychas–Ghaderi blocking-
//!   threshold autoscaling: the soft limit steps down when admission
//!   blocking trips a threshold repeatedly and creeps back up while the
//!   queue stays clear (arXiv 2005.13744);
//! * **QC (`queueing-capacity`)** — Furman-style `M[x]/G/s` capacity
//!   planning: a utilization ceiling derived from a square-root
//!   safety-staffing rule over the observed batch-size mix
//!   (arXiv 2209.08820).
//!
//! Each strategy runs the high-variability scenario three ways —
//! `plain`, `chaos` (the full-chaos fault plan) and `tenant-zipf`
//! (a Zipf-weighted tenant population gating admissions: 2000 tenants
//! in full mode, 200 under `HCLOUD_FAST=1`) — and reports SLO
//! attainment (normalized performance ≥ 0.7), total cost, makespan and
//! the per-cell digest. `HCLOUD_STRATEGY` focuses the grid on one
//! registered strategy.
//!
//! CI diffs the fast-mode digests against the committed
//! `crates/bench/goldens/ext_theory_strategies_fast.json` and reruns
//! the binary under `HCLOUD_AUDIT=strict` to prove both new strategies
//! hold every conservation identity under chaos and tenancy.

use std::process::ExitCode;
use std::sync::Arc;

use hcloud::{RunResult, StrategyRef, StrategyRegistry};
use hcloud_bench::fleet::run_digest;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_faults::FaultPlanId;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::SimRng;
use hcloud_tenancy::TenancyPlan;
use hcloud_workloads::{JobKind, Scenario, ScenarioKind};

/// Jobs at or above this normalized performance kept their SLO.
const SLO_THRESHOLD: f64 = 0.7;

/// Zipf skew for the tenant weight distribution.
const ZIPF_SKEW: f64 = 1.1;

/// Fraction of the pool handed out as hard guarantees.
const GUARANTEE_FRAC: f64 = 0.5;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_THEORY_STRATEGIES;

/// The default grid: the paper's two hybrids as the baseline, then the
/// two theory-grounded newcomers.
const SHORT_NAMES: [&str; 4] = ["HF", "HM", "RA", "QC"];

/// Scenario variants per strategy.
const VARIANTS: [&str; 3] = ["plain", "chaos", "tenant-zipf"];

/// Sizes the shared pool to the scenario's mean concurrent core demand
/// (same sizing rule as `ext_multi_tenant`): tight enough that tenants
/// contend, wide enough that the largest job fits.
fn pool_for(scenario: &Scenario) -> u32 {
    let total: f64 = scenario
        .jobs()
        .iter()
        .map(|j| match j.kind {
            JobKind::Batch { work_core_secs } => work_core_secs,
            JobKind::LatencyCritical { lifetime, .. } => j.cores as f64 * lifetime.as_secs_f64(),
        })
        .sum();
    let window = scenario.config().duration.as_secs_f64().max(1.0);
    let avg = (total / window).ceil() as u32;
    let widest = scenario.jobs().iter().map(|j| j.cores).max().unwrap_or(1);
    avg.max(widest).max(8)
}

/// The Zipf-skewed tenant population with every scenario job assigned to
/// a tenant by weighted draw from one named RNG stream.
fn tenant_plan(scenario: &Scenario, tenants: usize, rng: &mut SimRng) -> TenancyPlan {
    let mut plan = TenancyPlan::zipf(tenants, ZIPF_SKEW, pool_for(scenario), GUARANTEE_FRAC);
    let ids: Vec<u64> = scenario.jobs().iter().map(|j| j.id.0).collect();
    plan.assign_jobs(&ids, rng);
    plan
}

/// The run spec for one (strategy, variant) cell.
fn spec(
    base: &Arc<Scenario>,
    tenanted: &Arc<Scenario>,
    strategy: &StrategyRef,
    variant: &str,
) -> RunSpec {
    let scenario = if variant == "tenant-zipf" {
        tenanted
    } else {
        base
    };
    let s = RunSpec::on(Arc::clone(scenario), strategy)
        .label(format!("{variant}/{}", strategy.short_name()));
    if variant == "chaos" {
        s.map_config(|c| c.with_faults(FaultPlanId::FullChaos.plan()))
    } else {
        s
    }
}

/// Fraction of `r`'s jobs that kept their SLO.
fn slo_attainment(r: &RunResult) -> f64 {
    let perfs = r.normalized_perf(None);
    let kept = perfs.iter().filter(|&&p| p >= SLO_THRESHOLD).count();
    kept as f64 / perfs.len().max(1) as f64
}

fn main() -> ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let model = PricingModel::aws();
    let tenants = if h.ctx().fast { 200 } else { 2000 };

    // HCLOUD_STRATEGY narrows the grid to one registered strategy; the
    // default grid is the paper hybrids plus the two newcomers.
    let strategies: Vec<StrategyRef> = match h.ctx().strategy {
        Some(id) => vec![id.resolve()],
        None => SHORT_NAMES
            .iter()
            .map(|s| {
                StrategyRegistry::builtin()
                    .get(s)
                    .expect("builtin strategy")
            })
            .collect(),
    };

    let base = Arc::new(h.scenario(ScenarioKind::HighVariability).clone());
    let plan = tenant_plan(&base, tenants, &mut h.factory().stream("tenant-assign"));
    if let Err(e) = plan.validate() {
        artifacts::artifact_failure("ext_theory_strategies plan", e);
        return artifacts::exit_code();
    }
    let pool = plan.pool_cores;
    let tenanted = Arc::new(base.as_ref().clone().with_tenancy(plan));
    eprintln!(
        "[ext_theory_strategies] {} jobs; variants plain/chaos/tenant-zipf \
         ({tenants} tenants, skew {ZIPF_SKEW}, pool {pool} cores); strategies: {}",
        base.jobs().len(),
        strategies
            .iter()
            .map(|s| s.short_name())
            .collect::<Vec<_>>()
            .join(" "),
    );

    let mut grid = ExperimentPlan::new();
    for strategy in &strategies {
        for variant in VARIANTS {
            grid.push(spec(&base, &tenanted, strategy, variant));
        }
    }
    h.run_plan(grid);

    println!("Theory-grounded autoscaling strategies vs the paper hybrids\n");
    let mut t = Table::new(vec![
        "strategy",
        "variant",
        "SLO",
        "perf",
        "cost ($)",
        "makespan (h)",
        "digest",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    for strategy in &strategies {
        for variant in VARIANTS {
            let r = h.run(spec(&base, &tenanted, strategy, variant));
            let slo = slo_attainment(r);
            let perf = r.mean_normalized_perf();
            let cost = r.cost(&rates, &model).total();
            let makespan_h = r.makespan.as_hours_f64();
            let digest = run_digest(r);
            t.row(vec![
                strategy.short_name().into(),
                variant.into(),
                format!("{:.1}%", slo * 100.0),
                format!("{:.1}%", perf * 100.0),
                format!("{cost:.0}"),
                format!("{makespan_h:.2}"),
                digest.clone(),
            ]);
            rows.push(
                ObjectBuilder::new()
                    .set("strategy", strategy.id())
                    .set("short", strategy.short_name())
                    .set("variant", variant)
                    .set("digest", digest)
                    .set("slo", slo)
                    .set("perf", perf)
                    .set("cost", cost)
                    .set("makespan_h", makespan_h)
                    .build(),
            );
        }
    }
    println!("{t}");
    println!("(RA trades reserved headroom against admission blocking — its soft");
    println!(" limit steps down on repeated blocking and creeps back while the");
    println!(" queue stays clear; QC caps instance utilization at a square-root");
    println!(" staffing ceiling fit to the observed batch-size mix)");

    let doc = ObjectBuilder::new()
        .set("schema_version", artifacts::SCHEMA_VERSION)
        .set("bench", "ext_theory_strategies")
        .set("mode", if h.ctx().fast { "fast" } else { "full" })
        .set("seed", h.ctx().master_seed as f64)
        .set(
            "tenancy",
            ObjectBuilder::new()
                .set("tenants", tenants as f64)
                .set("zipf_skew", ZIPF_SKEW)
                .set("guarantee_frac", GUARANTEE_FRAC)
                .set("pool_cores", pool as f64)
                .build(),
        )
        .set("strategies", Value::Array(rows))
        .build();
    let path = std::path::Path::new("results").join("ext_theory_strategies.json");
    let ok = std::fs::create_dir_all("results").is_ok()
        && std::fs::write(&path, doc.to_pretty() + "\n").is_ok();
    if ok {
        artifacts::artifact_written(&path);
    } else {
        artifacts::artifact_failure(format!("write {}", path.display()), "io error");
    }
    h.finish("ext_theory_strategies")
}
