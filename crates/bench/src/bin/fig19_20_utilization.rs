//! Figures 19 and 20: per-instance CPU utilization heatmaps for the five
//! strategies on the high-variability scenario.
//!
//! Figure 19 ranks servers from most- to least-utilized at each instant;
//! Figure 20 orders instances by acquisition, separating reserved
//! (bottom) from on-demand (top) for the hybrids.

use std::collections::BTreeMap;

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{heatmap_row, write_json, ExperimentPlan, Harness, RunSpec};
use hcloud_sim::SimTime;
use hcloud_workloads::ScenarioKind;

/// Heatmap columns (time buckets) and rows (instance buckets) for the
/// ASCII rendering.
const TIME_BUCKETS: usize = 60;
const ROW_BUCKETS: usize = 16;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG19_20;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    println!("Figures 19-20: per-instance utilization, high-variability scenario");
    println!("(rows: instances, bucketed; columns: time; shade = mean CPU utilization)\n");

    let util_spec =
        |strategy| RunSpec::of(kind, strategy).map_config(|c| c.with_record_utilization(true));
    let plan: ExperimentPlan = StrategyKind::ALL.iter().map(|&s| util_spec(s)).collect();
    h.run_plan(plan);

    for strategy in StrategyKind::ALL {
        let r = h.run(util_spec(strategy));
        let end_min = r.makespan.as_mins_f64().max(1.0);

        // Collect samples into (instance, time-bucket) means.
        let mut per_instance: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        let mut reserved_flags: BTreeMap<usize, bool> = BTreeMap::new();
        for s in &r.utilization_samples {
            let bucket = ((s.time.as_mins_f64() / end_min) * (TIME_BUCKETS as f64 - 1.0)) as usize;
            per_instance
                .entry(s.instance_index)
                .or_insert_with(|| vec![Vec::new(); TIME_BUCKETS])[bucket]
                .push(s.utilization);
            reserved_flags.insert(s.instance_index, s.reserved);
        }
        let grid: Vec<(bool, Vec<f64>)> = per_instance
            .iter()
            .map(|(idx, buckets)| {
                let row: Vec<f64> = buckets
                    .iter()
                    .map(|b| {
                        if b.is_empty() {
                            0.0
                        } else {
                            b.iter().sum::<f64>() / b.len() as f64
                        }
                    })
                    .collect();
                (reserved_flags[idx], row)
            })
            .collect();

        // Figure 20 ordering: acquisition order, reserved first.
        let mut ordered: Vec<&(bool, Vec<f64>)> = grid.iter().collect();
        ordered.sort_by_key(|(reserved, _)| !reserved);
        println!(
            "Strategy {}: {} instances ({} reserved)",
            strategy.short_name(),
            ordered.len(),
            ordered.iter().filter(|(res, _)| *res).count()
        );
        // Bucket instance rows so every strategy prints a fixed-height map.
        let rows = ordered.len().min(ROW_BUCKETS);
        for chunk_idx in (0..rows).rev() {
            let lo = chunk_idx * ordered.len() / rows;
            let hi = ((chunk_idx + 1) * ordered.len() / rows).max(lo + 1);
            let mut merged = vec![0.0; TIME_BUCKETS];
            for (_, row) in &ordered[lo..hi] {
                for (i, v) in row.iter().enumerate() {
                    merged[i] += v;
                }
            }
            for v in &mut merged {
                *v /= (hi - lo) as f64;
            }
            let marker = if ordered[lo].0 { "R" } else { "O" };
            println!("  {marker} |{}|", heatmap_row(&merged));
        }
        println!();

        // JSON export: mean utilization over time, split reserved/od.
        let mut json: Vec<Vec<f64>> = Vec::new();
        for b in 0..TIME_BUCKETS {
            let minute = b as f64 / TIME_BUCKETS as f64 * end_min;
            let mean_of = |want_reserved: bool| {
                let vals: Vec<f64> = grid
                    .iter()
                    .filter(|(res, _)| *res == want_reserved)
                    .map(|(_, row)| row[b])
                    .collect();
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            };
            json.push(vec![minute, mean_of(true), mean_of(false)]);
        }
        write_json(
            &format!("fig19_20_util_{}", strategy.short_name().to_lowercase()),
            &["minute", "reserved_mean_util", "od_mean_util"],
            &json,
        );
        let _ = SimTime::ZERO;
    }
    println!("(paper: SR's private cluster is mostly idle outside the demand hump;");
    println!(" OdM's many small instances run hot but churn; hybrids keep reserved");
    println!(" rows densely utilized with on-demand rows appearing during spikes)");
    h.finish("fig19_20")
}
