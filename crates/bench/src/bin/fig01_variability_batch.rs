//! Figure 1: performance unpredictability for a Hadoop (Mahout
//! recommender) job across instance types on EC2 and GCE.
//!
//! For each provider and instance type, the binary launches 40 instances,
//! runs an identical recommender job on each, and reports the completion
//! time distribution. Small instances share servers with fluctuating
//! external load, so their distributions spread out; 16-vCPU instances
//! occupy whole servers and stay tight. On EC2, a fraction of micro
//! instances get terminated by the provider's internal scheduler.

use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentCtx, Table};
use hcloud_cloud::{Cloud, CloudConfig, InstanceType, ProviderProfile};
use hcloud_interference::ResourceVector;
use hcloud_sim::rng::RngFactory;
use hcloud_sim::stats::Boxplot;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::AppClass;
use rand::Rng;

/// Effective work, in scaled core-seconds: ~35 minutes on an uncontended
/// 16-vCPU instance given the job's sublinear scaling.
const WORK_CORE_SECS: f64 = 8.0 * 35.0 * 60.0;
const INSTANCES_PER_TYPE: usize = 40;

/// Simulates the completion time of the recommender job on one instance,
/// integrating the interference-inflated progress in 10-second steps.
/// Returns `None` if the provider killed the instance (EC2 micro).
fn completion_minutes(
    cloud: &Cloud,
    id: hcloud_cloud::InstanceId,
    sensitivity: &ResourceVector,
    provider: &ProviderProfile,
    rng: &mut impl Rng,
) -> Option<f64> {
    let itype = cloud.instance(id).itype();
    if itype.is_micro() && rng.gen::<f64>() < provider.micro_kill_prob {
        return None;
    }
    // Micro's shared core runs at reduced effective speed.
    let speed = provider.batch_speed * if itype.is_micro() { 0.6 } else { 1.0 };
    // Data-parallel analytics scale sublinearly with cores (the paper's
    // m16:st1 completion ratio is ~4x, not 16x).
    let cores = (itype.vcpus() as f64).powf(0.75);
    let step = SimDuration::from_secs(10);
    let mut t = cloud.instance(id).ready_at();
    let mut remaining = WORK_CORE_SECS;
    let mut elapsed = 0.0;
    while remaining > 0.0 {
        let pressure = cloud.external_pressure(id, t);
        let slowdown = cloud.slowdown_model().slowdown(sensitivity, &pressure);
        let rate = cores * speed / slowdown;
        let dt = step.as_secs_f64();
        if remaining <= rate * dt {
            elapsed += remaining / rate;
            remaining = 0.0;
        } else {
            remaining -= rate * dt;
            elapsed += dt;
        }
        t += step;
    }
    Some(elapsed / 60.0)
}

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG01;

fn main() -> std::process::ExitCode {
    registry::announce(INFO);
    let factory = RngFactory::new(ExperimentCtx::from_env_or_exit().master_seed);
    let sensitivity = AppClass::HadoopRecommender.sensitivity_template();
    println!("Figure 1: Hadoop (Mahout recommender) completion time across instance types\n");
    let mut table = Table::new(vec![
        "provider", "type", "n_ok", "failed", "p5", "p25", "mean", "p75", "p95", "max",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for (pidx, provider) in [ProviderProfile::ec2(), ProviderProfile::gce()]
        .iter()
        .enumerate()
    {
        let config = CloudConfig {
            provider: provider.clone(),
            ..CloudConfig::default()
        };
        let mut cloud = Cloud::new(config, factory.child(provider.name));
        let mut rng = factory.child(provider.name).stream("kills");
        for (tidx, itype) in InstanceType::figure12_catalog().into_iter().enumerate() {
            let mut times = Vec::new();
            let mut failed = 0;
            for k in 0..INSTANCES_PER_TYPE {
                let id = cloud.acquire(itype, SimTime::from_secs((k as u64) * 30));
                match completion_minutes(&cloud, id, &sensitivity, provider, &mut rng) {
                    Some(m) => times.push(m),
                    None => failed += 1,
                }
            }
            let b = Boxplot::from_values(&times).expect("some jobs complete");
            table.row(vec![
                provider.name.into(),
                itype.to_string(),
                format!("{}", times.len()),
                format!("{failed}"),
                format!("{:.1}", b.p5),
                format!("{:.1}", b.p25),
                format!("{:.1}", b.mean),
                format!("{:.1}", b.p75),
                format!("{:.1}", b.p95),
                format!("{:.1}", b.max),
            ]);
            json.push(vec![
                pidx as f64,
                tidx as f64,
                b.p5,
                b.p25,
                b.mean,
                b.p75,
                b.p95,
                failed as f64,
            ]);
        }
    }
    println!("{table}");
    println!("(completion times in minutes; paper: small instances spread widely,");
    println!(" m16 tight; EC2 faster on average but heavier-tailed, micro jobs killed)");
    write_json(
        "fig01_variability_batch",
        &[
            "provider", "type", "p5", "p25", "mean", "p75", "p95", "failed",
        ],
        &json,
    );
    hcloud_bench::artifacts::exit_code()
}
