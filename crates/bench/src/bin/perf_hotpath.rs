//! Hot-path performance baseline: scheduler-heavy scenario wall clock.
//!
//! The paper's premise (Section 4) is that every provisioning decision —
//! P1–P8 mapping, Q90-vs-QT quality checks, retention expiry — is cheap
//! enough to run per-arrival at cloud scale. This binary measures that
//! claim end to end: it times a scheduler-heavy scenario (large arrival
//! count, thousands of instance acquisitions) across all five strategies
//! and writes `results/BENCH_hotpath.json`. The committed
//! `BENCH_hotpath.json` at the repo root records the pre-index baseline
//! next to the indexed numbers; CI re-runs this binary in fast mode and
//! fails when the result digests drift or the wall clock regresses.
//!
//! Timings go to stderr; the JSON artifact carries the numbers. Result
//! *digests* are deterministic (FNV-1a over every outcome's bits), so a
//! perf refactor that changes any simulation byte is caught here too.

use std::process::ExitCode;
use std::time::Instant;

use hcloud::monitor::QualityMonitor;
use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_bench::fleet::run_digest as digest;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, ExperimentCtx};
use hcloud_cloud::InstanceType;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

/// Timing repetitions per strategy; the minimum is reported.
const REPS: usize = 3;

/// Micro-benchmark of the quantile hot path exactly as the scheduler
/// drives it: the QoS monitor absorbs one delivered-quality sample and
/// answers one `Q90` query per tick. Pre-index this clones + sorts the
/// full 512-sample window per query; post-index it is an O(log n)
/// order-statistics read — the delta is the `QuantileSet` payoff.
fn quantile_churn_ms(samples: usize) -> f64 {
    let mut rng = hcloud_sim::rng::SimRng::from_seed_u64(42);
    use rand::Rng;
    let itype = InstanceType::standard(4);
    let values: Vec<f64> = (0..samples).map(|_| rng.gen::<f64>()).collect();
    let start = Instant::now();
    let mut monitor = QualityMonitor::default();
    let mut acc = 0.0;
    for &v in &values {
        monitor.record(itype, v);
        acc += monitor.q90(itype);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() * 1e3
}

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::PERF_HOTPATH;

fn main() -> ExitCode {
    registry::announce(INFO);
    let ctx = ExperimentCtx::from_env_or_exit();
    // Scheduler-heavy: high variability (most on-demand churn), scaled
    // well past the paper runs so placement/retention dominate.
    let (scale, minutes) = if ctx.fast { (0.25, 20) } else { (0.7, 45) };
    let scenario = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, scale, minutes),
        &RngFactory::new(ctx.master_seed),
    );
    eprintln!(
        "[perf_hotpath] scenario: high-variability x{scale} {minutes}min, {} jobs, seed {} ({} mode)",
        scenario.jobs().len(),
        ctx.master_seed,
        if ctx.fast { "fast" } else { "full" },
    );

    let mut strategy_rows: Vec<Value> = Vec::new();
    let mut total_ms = 0.0;
    for &strategy in &StrategyKind::ALL {
        let config = RunConfig::new(strategy);
        let mut best_ms = f64::INFINITY;
        let mut dig = String::new();
        let mut events = 0usize;
        let mut instances = 0usize;
        for _ in 0..REPS {
            let factory = RngFactory::new(ctx.master_seed);
            let start = Instant::now();
            let result = run_scenario(&scenario, &config, &RunCtx::new(&factory))
                .expect("no auditor attached");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
            events = result.counters.events_processed;
            instances = result.usage_records.len();
            dig = digest(&result);
        }
        total_ms += best_ms;
        eprintln!(
            "[perf_hotpath] {:<4} {:>9.1} ms  ({} events, {} instances, digest {})",
            strategy.short_name(),
            best_ms,
            events,
            instances,
            dig,
        );
        strategy_rows.push(
            ObjectBuilder::new()
                .set("strategy", strategy.short_name())
                .set("wall_ms", best_ms)
                .set("events", events as f64)
                .set("instances", instances as f64)
                .set("digest", dig.as_str())
                .build(),
        );
    }

    let churn = quantile_churn_ms(200_000);
    eprintln!("[perf_hotpath] quantile-churn(200k monitor records + q90 reads) {churn:.1} ms");
    eprintln!("[perf_hotpath] total {total_ms:.1} ms");

    let doc = ObjectBuilder::new()
        .set("schema_version", artifacts::SCHEMA_VERSION)
        .set("bench", "perf_hotpath")
        .set("mode", if ctx.fast { "fast" } else { "full" })
        .set("seed", ctx.master_seed as f64)
        .set(
            "scenario",
            ObjectBuilder::new()
                .set("kind", "high-variability")
                .set("scale", scale)
                .set("minutes", minutes as f64)
                .set("jobs", scenario.jobs().len() as f64)
                .build(),
        )
        .set("strategies", Value::Array(strategy_rows))
        .set("total_wall_ms", total_ms)
        .set("quantile_churn_ms", churn)
        .build();
    let path = std::path::Path::new("results").join("BENCH_hotpath.json");
    let ok = std::fs::create_dir_all("results").is_ok()
        && std::fs::write(&path, doc.to_pretty() + "\n").is_ok();
    if ok {
        artifacts::artifact_written(&path);
    } else {
        artifacts::artifact_failure(format!("write {}", path.display()), "io error");
    }
    artifacts::exit_code()
}
