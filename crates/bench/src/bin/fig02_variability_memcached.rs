//! Figure 2: performance unpredictability for memcached across instance
//! types on EC2 and GCE.
//!
//! The client load is scaled by the instance's vCPU count so every
//! instance operates at the same utilization (Section 1). Each instance
//! runs the service for an hour; the reported metric is the
//! time-averaged p99 request latency.

use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentCtx, Table};
use hcloud_cloud::{Cloud, CloudConfig, InstanceType, ProviderProfile};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::stats::Boxplot;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{AppClass, LatencyModel};

const INSTANCES_PER_TYPE: usize = 40;

/// The figure's load point: moderate utilization, so the violin spread
/// comes from interference rather than outright saturation (the paper's
/// y-axis tops out at 1.4 ms).
fn figure_latency_model() -> LatencyModel {
    LatencyModel {
        target_utilization: 0.35,
        ..LatencyModel::default()
    }
}

/// Mean p99 latency (µs) of an hour of service on one instance.
fn mean_p99_us(
    cloud: &Cloud,
    id: hcloud_cloud::InstanceId,
    latency: &LatencyModel,
    provider: &ProviderProfile,
) -> f64 {
    let itype = cloud.instance(id).itype();
    let sensitivity = AppClass::Memcached.sensitivity_template();
    // Load scaled by vCPUs so all instances see the same utilization.
    let cores = itype.vcpus();
    let offered = latency.offered_rps_for(cores);
    let speed_penalty = 1.0 / provider.latency_speed;
    let step = SimDuration::from_secs(10);
    let mut t = cloud.instance(id).ready_at();
    let end = t + SimDuration::from_hours(1);
    let mut sum = 0.0;
    let mut n = 0usize;
    while t < end {
        let pressure = cloud.external_pressure(id, t);
        let slowdown = cloud.slowdown_model().slowdown(&sensitivity, &pressure) * speed_penalty;
        sum += latency.p99_latency_us(offered, cores, slowdown);
        n += 1;
        t += step;
    }
    sum / n as f64
}

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG02;

fn main() -> std::process::ExitCode {
    registry::announce(INFO);
    let factory = RngFactory::new(ExperimentCtx::from_env_or_exit().master_seed);
    let latency = figure_latency_model();
    println!("Figure 2: memcached p99 latency across instance types\n");
    let mut table = Table::new(vec![
        "provider", "type", "p5", "p25", "mean", "p75", "p95", "max",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for (pidx, provider) in [ProviderProfile::ec2(), ProviderProfile::gce()]
        .iter()
        .enumerate()
    {
        let config = CloudConfig {
            provider: provider.clone(),
            ..CloudConfig::default()
        };
        let mut cloud = Cloud::new(config, factory.child(provider.name));
        for (tidx, itype) in InstanceType::figure12_catalog().into_iter().enumerate() {
            let values: Vec<f64> = (0..INSTANCES_PER_TYPE)
                .map(|k| {
                    let id = cloud.acquire(itype, SimTime::from_secs((k as u64) * 30));
                    mean_p99_us(&cloud, id, &latency, provider)
                })
                .collect();
            let b = Boxplot::from_values(&values).expect("non-empty");
            table.row(vec![
                provider.name.into(),
                itype.to_string(),
                format!("{:.0}", b.p5),
                format!("{:.0}", b.p25),
                format!("{:.0}", b.mean),
                format!("{:.0}", b.p75),
                format!("{:.0}", b.p95),
                format!("{:.0}", b.max),
            ]);
            json.push(vec![
                pidx as f64,
                tidx as f64,
                b.p5,
                b.p25,
                b.mean,
                b.p75,
                b.p95,
            ]);
        }
    }
    println!("{table}");
    println!("(p99 latencies in µs; paper: <8-vCPU instances vary wildly, m16 tight,");
    println!(" GCE better than EC2 on both average and tail for memcached)");
    write_json(
        "fig02_variability_memcached",
        &["provider", "type", "p5", "p25", "mean", "p75", "p95"],
        &json,
    );
    hcloud_bench::artifacts::exit_code()
}
