//! Long-horizon scenario-DSL extension: multi-week demand shapes with a
//! spot market layered on top.
//!
//! The paper's scenarios span a two-hour arrival window; its cost
//! arguments (reserved amortization, spot savings) play out over weeks.
//! This experiment drives the versioned scenario DSL
//! (`hcloud_workloads::dsl`) end to end: the three authored example
//! documents — a 14-day diurnal cycle with weekend damping, a 2-day
//! flash-crowd, and a 4-day batch-burst train — each compile to a demand
//! curve, generate a deterministic job stream, and run under HM two
//! ways: `plain` and `chaos` (the full-chaos fault plan). The diurnal
//! and flash-crowd documents carry a spot section, so their runs bid for
//! spot capacity, absorb price-spike preemptions through the
//! fault-requeue path, and report spot savings next to cost.
//!
//! Three identities ship with the numbers:
//!
//! * **round-trip** — every example document re-serializes
//!   byte-identically through the DSL codec before anything runs;
//! * **j1 vs j4** — the whole grid is digest-identical under
//!   `HCLOUD_JOBS=1` and `4`;
//! * **golden** — CI diffs the fast-mode digests against the committed
//!   `crates/bench/goldens/ext_long_horizon_fast.json`, reruns under
//!   `HCLOUD_AUDIT=strict` (the spot-billing partition must reconcile
//!   exactly), and checks `hcloud-cli validate` exits 2 on a malformed
//!   document.
//!
//! Fast mode keeps the full horizons (the 14-day diurnal stays 14 days)
//! but stretches arrivals 4x, so the smoke grid runs in seconds.

use std::process::ExitCode;
use std::sync::Arc;

use hcloud::config::SpotPolicy;
use hcloud::{RunResult, StrategyKind};
use hcloud_bench::fleet::run_digest;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, Engine, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_faults::FaultPlanId;
use hcloud_json::{ObjectBuilder, Value};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::dsl;
use hcloud_workloads::{Scenario, ScenarioDsl};

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_LONG_HORIZON;

/// Scenario variants per family.
const VARIANTS: [&str; 2] = ["plain", "chaos"];

/// Fast mode stretches mean inter-arrival by this factor: same horizons,
/// same demand shapes, a quarter of the jobs.
const FAST_INTERARRIVAL_MULT: u64 = 4;

/// The run spec for one (family, variant) cell: HM, the document's spot
/// section (when present), and the full-chaos plan on `chaos`.
fn spec(doc: &ScenarioDsl, scenario: &Arc<Scenario>, variant: &str) -> RunSpec {
    let spot = doc.spot.map(|s| SpotPolicy {
        bid_multiplier: s.bid_multiplier,
        max_quality: s.max_quality,
    });
    let chaos = variant == "chaos";
    RunSpec::on(Arc::clone(scenario), StrategyKind::HybridMixed)
        .label(format!("{}/{variant}", doc.name))
        .map_config(|mut c| {
            if let Some(policy) = spot {
                c = c.with_spot(policy);
            }
            if chaos {
                c = c.with_faults(FaultPlanId::FullChaos.plan());
            }
            c
        })
}

/// One result row for the table and the JSON artifact.
fn row(
    doc: &ScenarioDsl,
    variant: &str,
    r: &RunResult,
    rates: &Rates,
    model: &PricingModel,
) -> Value {
    ObjectBuilder::new()
        .set("family", doc.family.kind_name())
        .set("scenario", doc.name.as_str())
        .set("variant", variant)
        .set("digest", run_digest(r))
        .set("jobs", r.outcomes.len() as f64)
        .set("perf", r.mean_normalized_perf())
        .set("makespan_h", r.makespan.as_hours_f64())
        .set("cost", r.cost(rates, model).total())
        .set("spot_hours", r.spot_hours())
        .set("spot_savings", r.spot_savings(rates))
        .set("spot_acquired", r.counters.spot_acquired as f64)
        .set("spot_terminations", r.counters.spot_terminations as f64)
        .build()
}

fn main() -> ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let model = PricingModel::aws();

    let mut docs = dsl::examples();
    if h.ctx().fast {
        for doc in &mut docs {
            doc.mean_interarrival = doc.mean_interarrival * FAST_INTERARRIVAL_MULT;
        }
    }

    // Round-trip identity: every document survives render → parse →
    // render byte-identically before anything simulates.
    for doc in &docs {
        let text = doc.render();
        let back = match ScenarioDsl::parse(&text) {
            Ok(back) => back,
            Err(e) => {
                artifacts::artifact_failure(format!("ext_long_horizon parse '{}'", doc.name), e);
                return artifacts::exit_code();
            }
        };
        if back.render() != text {
            artifacts::artifact_failure(
                format!("ext_long_horizon round-trip '{}'", doc.name),
                "re-serialized document differs",
            );
            return artifacts::exit_code();
        }
    }

    let factory = h.factory();
    let scenarios: Vec<Arc<Scenario>> = docs
        .iter()
        .map(|doc| Arc::new(doc.generate(&factory)))
        .collect();
    eprintln!(
        "[ext_long_horizon] families: {}; variants plain/chaos; strategy HM",
        docs.iter()
            .map(|d| {
                format!(
                    "{} ({:.0}d{})",
                    d.family.kind_name(),
                    d.family.duration().as_hours_f64() / 24.0,
                    if d.spot.is_some() { ", spot" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );

    let mut grid = ExperimentPlan::new();
    for (doc, scenario) in docs.iter().zip(&scenarios) {
        for variant in VARIANTS {
            grid.push(spec(doc, scenario, variant));
        }
    }
    h.run_plan(grid.clone());

    println!("Long-horizon DSL families under HM, with and without chaos\n");
    let mut t = Table::new(vec![
        "family",
        "variant",
        "jobs",
        "perf",
        "cost ($)",
        "spot saved ($)",
        "evictions",
        "digest",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    for (doc, scenario) in docs.iter().zip(&scenarios) {
        for variant in VARIANTS {
            let r = h.run(spec(doc, scenario, variant));
            t.row(vec![
                doc.family.kind_name().into(),
                variant.into(),
                r.outcomes.len().to_string(),
                format!("{:.1}%", r.mean_normalized_perf() * 100.0),
                format!("{:.0}", r.cost(&rates, &model).total()),
                format!("{:.0}", r.spot_savings(&rates)),
                r.counters.spot_terminations.to_string(),
                run_digest(r),
            ]);
            rows.push(row(doc, variant, r, &rates, &model));
        }
    }
    println!("{t}");
    println!("(spot savings = spot hours billed below the on-demand rate; evictions");
    println!(" are price-spike preemptions recovered through the fault-requeue path)");

    // Worker identity: the same grid under 1 and 4 workers.
    let plan_digests: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let engine = Engine::new(h.ctx().with_jobs(jobs));
            let outcome = engine.run_plan(&grid);
            outcome.results.iter().map(run_digest).collect()
        })
        .collect();
    let workers_identical = plan_digests[0] == plan_digests[1];
    if !workers_identical {
        artifacts::artifact_failure(
            "ext_long_horizon worker identity",
            format!(
                "HCLOUD_JOBS=1 and 4 diverged: {:?} vs {:?}",
                plan_digests[0], plan_digests[1]
            ),
        );
        return artifacts::exit_code();
    }
    eprintln!("[ext_long_horizon] j1 vs j4: byte-identical across the grid");

    let families: Vec<Value> = docs
        .iter()
        .zip(&scenarios)
        .map(|(doc, scenario)| {
            ObjectBuilder::new()
                .set("name", doc.name.as_str())
                .set("family", doc.family.kind_name())
                .set("days", doc.family.duration().as_hours_f64() / 24.0)
                .set("jobs", scenario.jobs().len() as f64)
                .set("spot", doc.spot.is_some())
                .build()
        })
        .collect();
    let doc = ObjectBuilder::new()
        .set("schema_version", artifacts::SCHEMA_VERSION)
        .set("bench", "ext_long_horizon")
        .set("mode", if h.ctx().fast { "fast" } else { "full" })
        .set("seed", h.ctx().master_seed as f64)
        .set("dsl_schema_version", dsl::SCHEMA_VERSION as f64)
        .set("families", families)
        .set("runs", Value::Array(rows))
        .set(
            "workers",
            ObjectBuilder::new()
                .set(
                    "j1_digests",
                    Value::Array(
                        plan_digests[0]
                            .iter()
                            .map(|d| Value::from(d.as_str()))
                            .collect(),
                    ),
                )
                .set("identical_to_j4", workers_identical)
                .build(),
        )
        .build();
    let path = std::path::Path::new("results").join("ext_long_horizon.json");
    let ok = std::fs::create_dir_all("results").is_ok()
        && std::fs::write(&path, doc.to_pretty() + "\n").is_ok();
    if ok {
        artifacts::artifact_written(&path);
    } else {
        artifacts::artifact_failure(format!("write {}", path.display()), "io error");
    }
    h.finish("ext_long_horizon")
}
