//! Figure 17: sensitivity to the cloud pricing model.
//!
//! The same runs billed under three models: AWS-style reserved +
//! on-demand (the paper's default), Azure-style on-demand only, and
//! GCE-style on-demand with sustained-use discounts. Costs normalized to
//! static-SR under the reserved + on-demand model.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG17;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let models = [
        ("reserved+od (AWS)", PricingModel::aws()),
        ("od only (Azure)", PricingModel::azure()),
        ("od+discounts (GCE)", PricingModel::gce()),
    ];

    // All 15 simulations fan out once; each pricing model re-bills the
    // cached usage records.
    let mut plan = ExperimentPlan::new();
    for kind in ScenarioKind::ALL {
        for strategy in StrategyKind::ALL {
            plan.push(RunSpec::of(kind, strategy));
        }
    }
    h.run_plan(plan);

    let baseline = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &PricingModel::aws())
        .total();

    println!(
        "Figure 17: cost under different pricing models (normalized to static SR, AWS model)\n"
    );
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        println!("{} scenario:", kind.name());
        let mut t = Table::new(vec!["pricing model", "SR", "OdF", "OdM", "HF", "HM"]);
        for (midx, (name, model)) in models.iter().enumerate() {
            let costs: Vec<f64> = StrategyKind::ALL
                .iter()
                .map(|&s| h.run(RunSpec::of(kind, s)).cost(&rates, model).total() / baseline)
                .collect();
            t.row(
                std::iter::once(name.to_string())
                    .chain(costs.iter().map(|c| format!("{c:.2}")))
                    .collect(),
            );
            json.push(
                [kind as u8 as f64, midx as f64]
                    .into_iter()
                    .chain(costs)
                    .collect(),
            );
        }
        println!("{t}");
        // The paper's quoted comparison: HM vs OdF under Azure and GCE.
        let hm_azure = h
            .run(RunSpec::of(kind, StrategyKind::HybridMixed))
            .cost(&rates, &PricingModel::azure())
            .total();
        let odf_azure = h
            .run(RunSpec::of(kind, StrategyKind::OnDemandFull))
            .cost(&rates, &PricingModel::azure())
            .total();
        let hm_gce = h
            .run(RunSpec::of(kind, StrategyKind::HybridMixed))
            .cost(&rates, &PricingModel::gce())
            .total();
        let odf_gce = h
            .run(RunSpec::of(kind, StrategyKind::OnDemandFull))
            .cost(&rates, &PricingModel::gce())
            .total();
        println!(
            "HM saves {:.0}% vs OdF under Azure pricing, {:.0}% under GCE pricing\n",
            (1.0 - hm_azure / odf_azure) * 100.0,
            (1.0 - hm_gce / odf_gce) * 100.0
        );
    }
    println!("(paper: even without reserved resources the hybrid mapping +");
    println!(" preference-aware sizing saves cost — e.g. high variability: HM 32%");
    println!(" below OdF under Azure pricing and 30% under GCE with discounts)");
    write_json(
        "fig17_pricing_models",
        &["scenario", "model", "SR", "OdF", "OdM", "HF", "HM"],
        &json,
    );
    h.finish("fig17")
}
