//! Figure 15: performance and cost sensitivity to resource retention
//! time (high-variability scenario).
//!
//! Idle on-demand instances are retained for a multiple of their spin-up
//! overhead before release; the sweep covers 0–500×. Performance is p95
//! normalized to SR; cost is normalized to static-SR.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG15;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    let rates = Rates::default();
    let model = PricingModel::aws();
    let retentions = [0.0, 1.0, 10.0, 50.0, 100.0, 250.0, 500.0];
    let swept = [
        StrategyKind::OnDemandFull,
        StrategyKind::OnDemandMixed,
        StrategyKind::HybridFull,
        StrategyKind::HybridMixed,
    ];
    let retention_spec = |strategy, mult| {
        RunSpec::of(kind, strategy).map_config(move |c| c.with_retention_mult(mult))
    };

    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(
        ScenarioKind::Static,
        StrategyKind::StaticReserved,
    ));
    plan.push(RunSpec::of(kind, StrategyKind::StaticReserved));
    for &mult in &retentions {
        for strategy in swept {
            plan.push(retention_spec(strategy, mult));
        }
    }
    h.run_plan(plan);

    let baseline_cost = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &model)
        .total();
    let sr_p95 = h
        .run(RunSpec::of(kind, StrategyKind::StaticReserved))
        .p95_normalized_perf();
    println!("Figure 15: sensitivity to retention time (× spin-up overhead)\n");
    let mut perf_t = Table::new(vec!["retention x", "OdF", "OdM", "HF", "HM"]);
    let mut cost_t = Table::new(vec!["retention x", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for &mult in &retentions {
        let mut perf_row = vec![format!("{mult:.0}")];
        let mut cost_row = vec![format!("{mult:.0}"), "1.38".to_string()];
        let sr_cost = h
            .run(RunSpec::of(kind, StrategyKind::StaticReserved))
            .cost(&rates, &model)
            .total()
            / baseline_cost;
        cost_row[1] = format!("{sr_cost:.2}");
        let mut jrow = vec![mult, 100.0, sr_cost];
        for strategy in swept {
            let r = h.run(retention_spec(strategy, mult));
            let p = r.p95_normalized_perf() / sr_p95 * 100.0;
            let c = r.cost(&rates, &model).total() / baseline_cost;
            perf_row.push(format!("{p:.0}"));
            cost_row.push(format!("{c:.2}"));
            jrow.push(p);
            jrow.push(c);
        }
        perf_t.row(perf_row);
        cost_t.row(cost_row);
        json.push(jrow);
    }
    println!("p95 performance normalized to SR (%):\n{perf_t}");
    println!("cost normalized to static-SR:\n{cost_t}");
    println!("(paper: releasing instances immediately hurts performance — fresh");
    println!(" spin-ups on every load change; longer retention raises cost for the");
    println!(" on-demand strategies while SR is unaffected; excessive retention can");
    println!(" slightly hurt OdM/HM because retained instances' quality degrades)");
    write_json(
        "fig15_retention",
        &[
            "retention_mult",
            "SR_perf",
            "SR_cost",
            "OdF_perf",
            "OdF_cost",
            "OdM_perf",
            "OdM_cost",
            "HF_perf",
            "HF_cost",
            "HM_perf",
            "HM_cost",
        ],
        &json,
    );
    h.finish("fig15")
}
