//! Figure 13: sensitivity of provisioning cost to deployment duration.
//!
//! The workload pattern of each scenario repeats for 1–60 weeks. Reserved
//! capacity pays whole 1-year terms upfront (doubling past 52 weeks);
//! on-demand spend scales with the duration. Absolute dollars, like the
//! paper.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{commitment_cost, Rates, ReservedOnDemandPricing};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG13;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let pricing = ReservedOnDemandPricing::default();
    let weeks = [1u64, 5, 10, 15, 18, 20, 25, 30, 40, 50, 52, 60];

    // All 15 scenario x strategy simulations fan out once; the duration
    // sweep below only re-bills cached usage records.
    let mut plan = ExperimentPlan::new();
    for kind in ScenarioKind::ALL {
        for strategy in StrategyKind::ALL {
            plan.push(RunSpec::of(kind, strategy));
        }
    }
    h.run_plan(plan);

    println!("Figure 13: absolute cost ($1000s) vs deployment duration (weeks)\n");
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        println!("{} scenario:", kind.name());
        let mut t = Table::new(vec!["weeks", "SR", "OdF", "OdM", "HF", "HM"]);
        let mut best_changes: Vec<(u64, &'static str)> = Vec::new();
        let mut last_best = "";
        for &w in &weeks {
            let duration = SimDuration::from_hours(w * 7 * 24);
            let mut costs = Vec::new();
            for &s in &StrategyKind::ALL {
                let r = h.run(RunSpec::of(kind, s));
                let run_len = r.makespan.saturating_since(SimTime::ZERO);
                let c = commitment_cost(&r.usage_records, &rates, &pricing, run_len, duration);
                costs.push(c.total() / 1000.0);
            }
            let best_idx = costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            let best = StrategyKind::ALL[best_idx].short_name();
            if best != last_best {
                best_changes.push((w, best));
                last_best = best;
            }
            t.row(
                std::iter::once(format!("{w}"))
                    .chain(costs.iter().map(|c| format!("{c:.1}")))
                    .collect(),
            );
            json.push(
                std::iter::once(kind as u8 as f64)
                    .chain(std::iter::once(w as f64))
                    .chain(costs)
                    .collect(),
            );
        }
        println!("{t}");
        let schedule: Vec<String> = best_changes
            .iter()
            .map(|(w, s)| format!("{s} from week {w}"))
            .collect();
        println!("cheapest strategy: {}\n", schedule.join(", "));
    }
    println!("(paper: on-demand cheapest for short deployments; SR only wins for");
    println!(" long static deployments; under high variability HM wins beyond ~18");
    println!(" weeks and the overprovisioned SR is never optimal; SR charge doubles");
    println!(" past the 52-week mark)");
    write_json(
        "fig13_duration",
        &["scenario", "weeks", "SR", "OdF", "OdM", "HF", "HM"],
        &json,
    );
    h.finish("fig13")
}
