//! Figure 12: sensitivity of provisioning cost to the
//! on-demand:reserved price ratio.
//!
//! Each strategy runs once per scenario; the same usage records are then
//! re-billed under ratios in [0.01, 4] (the paper scales the price of
//! reserved resources). Costs are normalized to the static scenario
//! under SR at the default 2.74 ratio.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates, ReservedOnDemandPricing};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG12;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let rates = Rates::default();
    let ratios = [0.01, 0.25, 0.5, 1.0, 1.5, 2.0, 2.74, 3.0, 3.5, 4.0];

    // All 15 scenario x strategy simulations fan out once; the ratio
    // sweep below only re-bills cached usage records.
    let mut plan = ExperimentPlan::new();
    for kind in ScenarioKind::ALL {
        for strategy in StrategyKind::ALL {
            plan.push(RunSpec::of(kind, strategy));
        }
    }
    h.run_plan(plan);

    let baseline = h
        .run(RunSpec::of(
            ScenarioKind::Static,
            StrategyKind::StaticReserved,
        ))
        .cost(&rates, &PricingModel::aws())
        .total();

    println!("Figure 12: cost vs on-demand:reserved price ratio (normalized to static SR @2.74)\n");
    let mut json: Vec<Vec<f64>> = Vec::new();
    for kind in ScenarioKind::ALL {
        println!("{} scenario:", kind.name());
        let mut t = Table::new(vec!["ratio", "SR", "OdF", "OdM", "HF", "HM"]);
        let mut crossover: Option<f64> = None;
        for &ratio in &ratios {
            let model = PricingModel::ReservedOnDemand(ReservedOnDemandPricing::with_ratio(ratio));
            let costs: Vec<f64> = StrategyKind::ALL
                .iter()
                .map(|&s| h.run(RunSpec::of(kind, s)).cost(&rates, &model).total() / baseline)
                .collect();
            if kind == ScenarioKind::HighVariability && crossover.is_none() && costs[0] <= costs[4]
            {
                crossover = Some(ratio);
            }
            t.row(
                std::iter::once(format!("{ratio:.2}"))
                    .chain(costs.iter().map(|c| format!("{c:.2}")))
                    .collect(),
            );
            json.push(
                std::iter::once(kind as u8 as f64)
                    .chain(std::iter::once(ratio))
                    .chain(costs)
                    .collect(),
            );
        }
        println!("{t}");
        if let Some(r) = crossover {
            println!(
                "SR becomes cheaper than HM at ratio ≈ {r:.2} (paper: ~3 for high variability)\n"
            );
        }
    }
    println!("(paper: on-demand strategies win at low ratios; per scenario there is a");
    println!(" ratio beyond which SR wins, growing with variability; hybrids cheapest");
    println!(" per-hour over extended ratio ranges)");
    write_json(
        "fig12_price_ratio",
        &["scenario", "ratio", "SR", "OdF", "OdM", "HF", "HM"],
        &json,
    );
    h.finish("fig12")
}
