//! Figure 21: breakdown of the low-variability allocation by application
//! type under HM, split between reserved and on-demand resources.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{sparkline, write_json, Harness, RunSpec};
use hcloud_sim::series::StepSeries;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{AppClass, ScenarioKind};

/// The paper's three application groups.
fn group(class: AppClass) -> usize {
    match class {
        AppClass::HadoopRecommender | AppClass::HadoopSvm | AppClass::HadoopMatrixFactorization => {
            0
        }
        AppClass::SparkBatch | AppClass::SparkRealtime => 1,
        AppClass::Memcached => 2,
    }
}

const GROUPS: [&str; 3] = ["Hadoop", "Spark", "memcached"];

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG21;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let r = h
        .run(RunSpec::of(
            ScenarioKind::LowVariability,
            StrategyKind::HybridMixed,
        ))
        .clone();

    // Build per-(side, group) allocated-core series from job outcomes.
    let mut series: Vec<Vec<StepSeries>> = (0..2)
        .map(|_| (0..3).map(|_| StepSeries::new(0.0)).collect())
        .collect();
    let mut events: Vec<(SimTime, usize, usize, f64)> = Vec::new();
    for o in &r.outcomes {
        let side = usize::from(!o.on_reserved);
        let g = group(o.class);
        events.push((o.started, side, g, o.cores as f64));
        events.push((o.finished, side, g, -(o.cores as f64)));
    }
    events.sort_by_key(|&(t, _, _, _)| t);
    for (t, side, g, delta) in events {
        series[side][g].record_delta(t, delta);
    }

    println!("Figure 21: allocation breakdown by application type (HM, low variability)\n");
    let step = SimDuration::from_mins(4);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for (side, side_name) in [(0usize, "Reserved resources"), (1, "On-demand resources")] {
        println!("{side_name}:");
        for (g, name) in GROUPS.iter().enumerate() {
            let mut vals = Vec::new();
            let mut t = SimTime::ZERO;
            while t <= r.makespan {
                vals.push(series[side][g].value_at(t));
                t += step;
            }
            let peak = vals.iter().copied().fold(0.0, f64::max);
            println!("  {name:>10} {} (peak {peak:.0} cores)", sparkline(&vals));
        }
        println!();
    }
    let mut t = SimTime::ZERO;
    while t <= r.makespan {
        let mut row = vec![t.as_mins_f64()];
        for side in &series {
            for group_series in side {
                row.push(group_series.value_at(t));
            }
        }
        json.push(row);
        t += step;
    }
    println!("(paper: reserved resources fill with all types until the soft limit;");
    println!(" past it the interference-sensitive memcached occupies most of the");
    println!(" reserved pool while batch work overflows to on-demand; when the");
    println!(" memcached surge exceeds reserved capacity part of it is served by");
    println!(" larger on-demand instances)");
    write_json(
        "fig21_breakdown",
        &[
            "minute",
            "res_hadoop",
            "res_spark",
            "res_memcached",
            "od_hadoop",
            "od_spark",
            "od_memcached",
        ],
        &json,
    );
    h.finish("fig21")
}
