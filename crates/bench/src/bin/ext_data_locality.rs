//! Section 5.5 extension: data management across a private facility and
//! the public cloud.
//!
//! "In our current infrastructure both reserved and on-demand resources
//! reside in the same physical cluster. When reserved resources are
//! deployed as a private facility, provisioning must also consider how to
//! minimize data transfers and replication across the two clusters."
//!
//! This binary gives each job a dataset that deterministically lives on
//! one side, charges cross-cluster transfers at the inter-cluster link
//! bandwidth, and compares locality-oblivious placement against the
//! data-aware mitigation (prefer the data's side when the transfer would
//! dominate the job).

use hcloud::config::DataLocalityModel;
use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::EXT_DATA_LOCALITY;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;

    println!("Extension C: data locality across private/public clusters (HM, high variability)\n");
    let data_spec = |frac, gbps, aware| {
        RunSpec::of(kind, StrategyKind::HybridMixed).map_config(move |c| {
            c.with_data(DataLocalityModel {
                private_data_fraction: frac,
                bandwidth_gbps: gbps,
                data_aware_placement: aware,
            })
        })
    };
    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(kind, StrategyKind::HybridMixed));
    for frac in [0.0, 0.5, 0.7, 1.0] {
        for aware in [false, true] {
            plan.push(data_spec(frac, 10.0, aware));
        }
    }
    for gbps in [1.0, 10.0, 40.0, 100.0] {
        plan.push(data_spec(0.7, gbps, true));
    }
    h.run_plan(plan);

    let base = h.run(RunSpec::of(kind, StrategyKind::HybridMixed));
    println!(
        "same-cluster baseline (the paper's setup): perf {:.3}, no transfers\n",
        base.mean_normalized_perf()
    );

    let mut t = Table::new(vec![
        "private data %",
        "placement",
        "perf",
        "transfers",
        "TB moved",
        "batch mean (min)",
    ]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for frac in [0.0, 0.5, 0.7, 1.0] {
        for aware in [false, true] {
            let r = h.run(data_spec(frac, 10.0, aware));
            let batch = r.batch_performance_boxplot().expect("batch jobs");
            t.row(vec![
                format!("{:.0}", frac * 100.0),
                if aware { "data-aware" } else { "oblivious" }.into(),
                format!("{:.3}", r.mean_normalized_perf()),
                format!("{}", r.counters.data_transfers),
                format!("{:.1}", r.counters.data_transferred_gb / 1000.0),
                format!("{:.1}", batch.mean),
            ]);
            json.push(vec![
                frac,
                aware as u8 as f64,
                r.mean_normalized_perf(),
                r.counters.data_transfers as f64,
                r.counters.data_transferred_gb,
                batch.mean,
            ]);
        }
    }
    println!("{t}");

    println!("Sensitivity to the inter-cluster link (70% private data, data-aware):\n");
    let mut t = Table::new(vec![
        "link (Gbit/s)",
        "perf",
        "TB moved",
        "batch mean (min)",
    ]);
    for gbps in [1.0, 10.0, 40.0, 100.0] {
        let r = h.run(data_spec(0.7, gbps, true));
        let batch = r.batch_performance_boxplot().expect("batch jobs");
        t.row(vec![
            format!("{gbps:.0}"),
            format!("{:.3}", r.mean_normalized_perf()),
            format!("{:.1}", r.counters.data_transferred_gb / 1000.0),
            format!("{:.1}", batch.mean),
        ]);
    }
    println!("{t}");
    println!("(splitting the clusters costs performance in proportion to the data");
    println!(" gravity on the wrong side; data-aware placement claws back most of");
    println!(" it by keeping heavy-transfer jobs with their datasets)");
    write_json(
        "ext_data_locality",
        &[
            "private_frac",
            "aware",
            "perf",
            "transfers",
            "gb_moved",
            "batch_mean",
        ],
        &json,
    );
    h.finish("ext_data_locality")
}
