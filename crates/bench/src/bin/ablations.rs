//! Ablations of HCloud's design choices (beyond the paper's sweeps).
//!
//! Each ablation removes or perturbs one mechanism of the dynamic policy
//! and measures what it was buying, on the high-variability scenario
//! under HM:
//!
//! 1. **soft/hard utilization limits** — a grid over the starting soft
//!    limit and the hard limit;
//! 2. **Q90 vs QT quality matching** — replace the dynamic policy with
//!    the static policies that drop one ingredient;
//! 3. **classification fidelity** — shrink the Quasar corpus and rank and
//!    watch placement quality erode;
//! 4. **retention quality gate** — disable the "release poorly-performing
//!    instances immediately" rule.

use hcloud::{MappingPolicy, StrategyKind};
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::ABLATIONS;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;
    let rates = Rates::default();
    let model = PricingModel::aws();

    // All four ablation grids fan out as one plan up front; each section
    // below reads its cached runs.
    let limits = [
        (0.35, 0.55),
        (0.50, 0.70),
        (0.65, 0.85),
        (0.75, 0.95),
        (0.30, 0.95),
    ];
    let limit_spec = |soft, hard| {
        RunSpec::of(kind, StrategyKind::HybridMixed)
            .map_config(move |c| c.with_dynamic_limits(soft, hard))
    };
    let policies = [
        ("dynamic (full)", MappingPolicy::Dynamic),
        (
            "drop Q-matching (P6: load<70%)",
            MappingPolicy::UtilizationLimit(0.7),
        ),
        (
            "drop load-awareness (P2: Q>80%)",
            MappingPolicy::QualityThreshold(0.8),
        ),
        ("drop both (P1: random)", MappingPolicy::Random),
    ];
    let quasar_grid = [(240usize, 4usize), (60, 4), (24, 2), (12, 1)];
    let quasar_spec = |corpus, rank| {
        RunSpec::of(kind, StrategyKind::HybridMixed).map_config(move |c| {
            let mut quasar = c.quasar.clone();
            quasar.corpus_size = corpus;
            quasar.rank = rank;
            c.with_quasar(quasar)
        })
    };
    let gates = [("on (q<0.75 released)", 0.75), ("off", 0.0)];
    let gate_spec = |threshold| {
        RunSpec::of(kind, StrategyKind::OnDemandMixed)
            .map_config(move |c| c.with_quality_retention_threshold(threshold))
    };

    let mut plan = ExperimentPlan::new();
    for (soft, hard) in limits {
        plan.push(limit_spec(soft, hard));
    }
    for (_, policy) in policies {
        plan.push(RunSpec::of(kind, StrategyKind::HybridMixed).policy(policy));
    }
    for (corpus, rank) in quasar_grid {
        plan.push(quasar_spec(corpus, rank));
    }
    for (_, threshold) in gates {
        plan.push(gate_spec(threshold));
    }
    h.run_plan(plan);

    // ------------------------------------------------------------------
    println!("Ablation 1: soft/hard utilization limits (HM, high variability)\n");
    println!("The paper sets the soft limit experimentally at 60-65% and the hard");
    println!("limit near 80%. The defaults (0.65/0.85) sit in the flat optimum:\n");
    let mut t = Table::new(vec!["soft", "hard", "perf", "res util%", "queued", "cost"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for (soft, hard) in limits {
        let r = h.run(limit_spec(soft, hard));
        let cost = r.cost(&rates, &model).total();
        t.row(vec![
            format!("{soft:.2}"),
            format!("{hard:.2}"),
            format!("{:.3}", r.mean_normalized_perf()),
            format!(
                "{:.0}",
                r.mean_reserved_utilization().unwrap_or(0.0) * 100.0
            ),
            format!("{}", r.counters.queued_jobs),
            format!("{cost:.1}$"),
        ]);
        json.push(vec![
            soft,
            hard,
            r.mean_normalized_perf(),
            r.mean_reserved_utilization().unwrap_or(0.0),
            r.counters.queued_jobs as f64,
            cost,
        ]);
    }
    println!("{t}");
    write_json(
        "ablation_limits",
        &["soft", "hard", "perf", "util", "queued", "cost"],
        &json,
    );

    // ------------------------------------------------------------------
    println!("Ablation 2: what each ingredient of the dynamic policy buys\n");
    let mut t = Table::new(vec!["policy", "perf", "res util%", "cost"]);
    for (label, policy) in policies {
        let r = h.run(RunSpec::of(kind, StrategyKind::HybridMixed).policy(policy));
        t.row(vec![
            label.into(),
            format!("{:.3}", r.mean_normalized_perf()),
            format!(
                "{:.0}",
                r.mean_reserved_utilization().unwrap_or(0.0) * 100.0
            ),
            format!("{:.1}$", r.cost(&rates, &model).total()),
        ]);
    }
    println!("{t}");

    // ------------------------------------------------------------------
    println!("Ablation 3: classification fidelity (corpus size × rank)\n");
    let mut t = Table::new(vec!["corpus", "rank", "perf", "lc mean (µs)"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for (corpus, rank) in quasar_grid {
        let r = h.run(quasar_spec(corpus, rank));
        let lc = r.lc_latency_boxplot().expect("LC jobs");
        t.row(vec![
            format!("{corpus}"),
            format!("{rank}"),
            format!("{:.3}", r.mean_normalized_perf()),
            format!("{:.0}", lc.mean),
        ]);
        json.push(vec![
            corpus as f64,
            rank as f64,
            r.mean_normalized_perf(),
            lc.mean,
        ]);
    }
    println!("{t}");
    println!("(a starved classifier misjudges Q, sending sensitive jobs to shared");
    println!(" instances — the quality matching is only as good as Quasar's signal)\n");
    write_json(
        "ablation_quasar",
        &["corpus", "rank", "perf", "lc_mean"],
        &json,
    );

    // ------------------------------------------------------------------
    println!("Ablation 4: retention quality gate (OdM, high variability)\n");
    let mut t = Table::new(vec!["gate", "perf", "lc mean (µs)", "imm. released"]);
    for (label, threshold) in gates {
        let r = h.run(gate_spec(threshold));
        let lc = r.lc_latency_boxplot().expect("LC jobs");
        t.row(vec![
            label.into(),
            format!("{:.3}", r.mean_normalized_perf()),
            format!("{:.0}", lc.mean),
            format!("{}", r.counters.od_released_immediately),
        ]);
    }
    println!("{t}");
    println!("(Section 3.2: \"Only instances that provide predictably high");
    println!(" performance are retained past the completion of their jobs\")");
    h.finish("ablations")
}
